"""Tests for repro.core.baseline (naive full scan and TA-style baseline)."""

from __future__ import annotations

import pytest

from repro.core.baseline import NaiveFullScan, ThresholdAlgorithmBaseline
from repro.core.consensus import AVERAGE_PREFERENCE, LEAST_MISERY, make_consensus
from repro.core.greca import Greca, GrecaIndex
from repro.exceptions import AlgorithmError

APREFS = {
    1: {item: float(5 - (item % 5)) for item in range(20)},
    2: {item: float(1 + (item % 5)) for item in range(20)},
    3: {item: float(1 + ((item * 3) % 5)) for item in range(20)},
}
STATIC = {(1, 2): 0.6, (1, 3): 0.2, (2, 3): 0.8}
PERIODIC = {0: {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.5}}


@pytest.fixture()
def index() -> GrecaIndex:
    return GrecaIndex(
        members=[1, 2, 3],
        aprefs=APREFS,
        static=STATIC,
        periodic=PERIODIC,
        max_apref=5.0,
    )


class TestNaiveFullScan:
    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            NaiveFullScan(AVERAGE_PREFERENCE, k=0)

    def test_scans_every_entry(self, index):
        result = NaiveFullScan(AVERAGE_PREFERENCE, k=5).run(index)
        assert result.sequential_accesses == index.total_index_entries()
        assert result.random_accesses == 0
        assert result.percent_sequential_accesses == pytest.approx(100.0)
        assert result.percent_total_accesses == pytest.approx(100.0)

    def test_returns_exact_top_k(self, index):
        result = NaiveFullScan(AVERAGE_PREFERENCE, k=4).run(index)
        exact = index.exact_scores(AVERAGE_PREFERENCE)
        expected = sorted(exact.values(), reverse=True)[:4]
        assert sorted(result.scores.values(), reverse=True) == pytest.approx(expected)

    def test_k_capped_at_catalogue(self, index):
        result = NaiveFullScan(AVERAGE_PREFERENCE, k=100).run(index)
        assert result.k == len(index.items)

    def test_top_k_scores_oracle(self, index):
        scores = NaiveFullScan(LEAST_MISERY, k=1).top_k_scores(index)
        assert set(scores) == set(index.items)


class TestThresholdAlgorithmBaseline:
    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            ThresholdAlgorithmBaseline(AVERAGE_PREFERENCE, k=0)

    def test_matches_exact_top_k(self, index):
        for name in ("AP", "MO", "PD"):
            consensus = make_consensus(name)
            result = ThresholdAlgorithmBaseline(consensus, k=3).run(index)
            exact = index.exact_scores(consensus)
            expected = sorted(exact.values(), reverse=True)[:3]
            assert sorted(result.scores.values(), reverse=True) == pytest.approx(expected, abs=1e-9)

    def test_uses_random_accesses(self, index):
        result = ThresholdAlgorithmBaseline(AVERAGE_PREFERENCE, k=3).run(index)
        assert result.random_accesses > 0

    def test_greca_needs_no_random_accesses_unlike_ta(self, index):
        """Section 3.1: GRECA avoids the RAs that a TA-style approach incurs."""
        ta = ThresholdAlgorithmBaseline(AVERAGE_PREFERENCE, k=3).run(index)
        greca = Greca(AVERAGE_PREFERENCE, k=3, check_interval=1).run(index)
        assert greca.random_accesses == 0
        assert ta.random_accesses > 0
        exact = index.exact_scores(AVERAGE_PREFERENCE)
        assert sorted(exact[item] for item in greca.items) == pytest.approx(
            sorted(ta.scores.values()), abs=1e-9
        )
