"""Tests for repro.core.timeline."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.timeline import (
    GRANULARITIES,
    SECONDS_PER_DAY,
    Period,
    Timeline,
    count_periods,
    discretize,
    merge_timelines,
    one_year_timeline,
    uniform_timeline,
)
from repro.exceptions import TimelineError


class TestPeriod:
    def test_length_is_at_least_one(self):
        assert Period(5, 5).length == 1
        assert Period(0, 99).length == 99

    def test_invalid_period_rejected(self):
        with pytest.raises(TimelineError):
            Period(10, 5)

    def test_contains_boundaries(self):
        period = Period(10, 20)
        assert period.contains(10)
        assert period.contains(20)
        assert not period.contains(9)
        assert not period.contains(21)

    def test_precedes_matches_paper_definition(self):
        early = Period(0, 9)
        late = Period(10, 19)
        assert early.precedes(late)
        assert not late.precedes(early)
        assert early.precedes(early)

    def test_overlap_detection(self):
        assert Period(0, 10).overlaps(Period(5, 15))
        assert not Period(0, 10).overlaps(Period(11, 20))

    def test_periods_order_chronologically(self):
        assert Period(0, 5) < Period(6, 10)


class TestTimeline:
    def test_requires_at_least_one_period(self):
        with pytest.raises(TimelineError):
            Timeline([])

    def test_rejects_overlapping_periods(self):
        with pytest.raises(TimelineError):
            Timeline([Period(0, 10), Period(5, 20)])

    def test_rejects_out_of_order_periods(self):
        with pytest.raises(TimelineError):
            Timeline([Period(10, 20), Period(0, 9)])

    def test_basic_accessors(self, short_timeline):
        assert len(short_timeline) == 3
        assert short_timeline.beginning == 0
        assert short_timeline.end == 299
        assert short_timeline.current == Period(200, 299)
        assert short_timeline[1] == Period(100, 199)

    def test_index_of_and_membership(self, short_timeline):
        assert short_timeline.index_of(Period(100, 199)) == 1
        with pytest.raises(TimelineError):
            short_timeline.index_of(Period(0, 50))

    def test_period_of_timestamp(self, short_timeline):
        assert short_timeline.period_of(150) == Period(100, 199)
        assert short_timeline.period_of(5000) is None

    def test_periods_until_includes_query_period(self, short_timeline):
        until = short_timeline.periods_until(Period(100, 199))
        assert until == (Period(0, 99), Period(100, 199))

    def test_elapsed_is_relative_to_beginning(self, short_timeline):
        assert short_timeline.elapsed(Period(100, 199)) == 199

    def test_equality(self):
        a = uniform_timeline(0, 2, 10)
        b = uniform_timeline(0, 2, 10)
        assert a == b
        assert a != uniform_timeline(0, 3, 10)


class TestDiscretize:
    def test_one_year_two_month_has_six_periods(self):
        timeline = one_year_timeline(granularity="two-month")
        assert len(timeline) == 6

    def test_figure4_period_counts(self):
        """The period counts of the paper's Figure 4 for a one-year history."""
        expected = {"week": 53, "month": 12, "two-month": 6, "season": 4, "half-year": 2}
        for granularity, count in expected.items():
            assert count_periods(granularity) == count
            assert len(one_year_timeline(granularity=granularity)) == count

    def test_unknown_granularity_rejected(self):
        with pytest.raises(TimelineError):
            discretize(0, 1000, "decade")
        with pytest.raises(TimelineError):
            count_periods("decade")

    def test_end_before_start_rejected(self):
        with pytest.raises(TimelineError):
            discretize(100, 100, "week")

    def test_covers_exact_span(self):
        end = 365 * SECONDS_PER_DAY - 1
        timeline = discretize(0, end, "two-month")
        assert timeline.beginning == 0
        assert timeline.end == end

    def test_periods_are_contiguous(self):
        timeline = discretize(0, 10_000_000, "month")
        for earlier, later in zip(timeline, list(timeline)[1:]):
            assert later.start == earlier.end + 1


class TestUniformTimeline:
    def test_period_lengths(self):
        timeline = uniform_timeline(50, 4, 25)
        assert [p.length for p in timeline] == [24, 24, 24, 24]
        assert timeline.beginning == 50
        assert timeline.end == 50 + 4 * 25 - 1

    def test_invalid_arguments(self):
        with pytest.raises(TimelineError):
            uniform_timeline(0, 0, 10)
        with pytest.raises(TimelineError):
            uniform_timeline(0, 5, 0)

    def test_merge_timelines(self):
        first = uniform_timeline(0, 2, 10)
        second = uniform_timeline(20, 2, 10)
        merged = merge_timelines([first, second])
        assert len(merged) == 4
        assert merged.end == 39

    def test_merge_rejects_overlap(self):
        first = uniform_timeline(0, 2, 10)
        with pytest.raises(TimelineError):
            merge_timelines([first, first])


@given(
    n_periods=st.integers(min_value=1, max_value=30),
    period_length=st.integers(min_value=1, max_value=5_000),
    start=st.integers(min_value=0, max_value=10_000),
)
def test_uniform_timeline_properties(n_periods, period_length, start):
    """Every timestamp inside the span belongs to exactly one period."""
    timeline = uniform_timeline(start, n_periods, period_length)
    assert len(timeline) == n_periods
    assert timeline.end - timeline.beginning + 1 == n_periods * period_length
    probe = start + (n_periods * period_length) // 2
    period = timeline.period_of(probe)
    assert period is not None and period.contains(probe)
    # periods_until of the last period returns the whole timeline
    assert timeline.periods_until(timeline.current) == timeline.periods


@given(granularity=st.sampled_from(GRANULARITIES), span_days=st.integers(min_value=30, max_value=720))
def test_discretize_period_count_matches_count_periods(granularity, span_days):
    timeline = discretize(0, span_days * SECONDS_PER_DAY - 1, granularity)
    assert len(timeline) == count_periods(granularity, span_days)
