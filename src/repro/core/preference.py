"""User-item preference models (Section 2.2 of the paper).

A group member's preference for an item combines two components:

* **Absolute preference** ``apref(u, i)`` — how much ``u`` likes ``i``
  regardless of company, produced by any single-user recommender (the
  collaborative-filtering substrate in :mod:`repro.cf`).
* **Relative preference** ``rpref(u, i, G, p)`` — how much the *company*
  makes ``u`` like ``i``: the affinity-weighted sum of the other members'
  absolute preferences,

  ``rpref(u, i, G, p) = sum_{u' != u in G} aff(u, u', p) * apref(u', i)``.

The overall (time-aware) preference is ``pref = apref + rpref``.

:class:`PreferenceModel` binds an ``apref`` source and an affinity model
together and exposes the three quantities.  It caches absolute preferences
per user because GRECA, the consensus functions and the quality experiments
all query them repeatedly for the same group.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.cf.predictors import RatingPredictor
from repro.core.affinity import AffinityModel, NoAffinityModel
from repro.core.timeline import Period
from repro.exceptions import GroupError


class AbsolutePreferenceSource:
    """Adapter exposing ``apref(u, i)`` from different backends.

    Accepted backends:

    * a fitted :class:`~repro.cf.predictors.RatingPredictor`,
    * a mapping ``{user_id: {item_id: score}}``,
    * a callable ``(user_id, item_id) -> float``.
    """

    def __init__(
        self,
        source: RatingPredictor | Mapping[int, Mapping[int, float]] | Callable[[int, int], float],
        items: Iterable[int] | None = None,
    ) -> None:
        self._predictor: RatingPredictor | None = None
        self._table: dict[int, dict[int, float]] | None = None
        self._function: Callable[[int, int], float] | None = None
        self._items = tuple(items) if items is not None else None

        if isinstance(source, RatingPredictor):
            self._predictor = source
        elif callable(source):
            self._function = source  # type: ignore[assignment]
        else:
            self._table = {user: dict(prefs) for user, prefs in source.items()}

    @property
    def items(self) -> tuple[int, ...]:
        """The item universe, if it can be derived from the backend."""
        if self._items is not None:
            return self._items
        if self._predictor is not None:
            return self._predictor.matrix.items
        if self._table is not None:
            all_items: set[int] = set()
            for prefs in self._table.values():
                all_items.update(prefs)
            return tuple(sorted(all_items))
        raise GroupError("item universe unknown: pass items= explicitly for callable sources")

    def apref(self, user_id: int, item_id: int) -> float:
        """Absolute preference of ``user_id`` for ``item_id`` (0 when unknown)."""
        if self._predictor is not None:
            return self._predictor.predict(user_id, item_id)
        if self._table is not None:
            return self._table.get(user_id, {}).get(item_id, 0.0)
        assert self._function is not None
        return float(self._function(user_id, item_id))

    def all_aprefs(self, user_id: int) -> dict[int, float]:
        """Absolute preferences of ``user_id`` for every item."""
        if self._predictor is not None:
            return self._predictor.predict_all(user_id)
        return {item: self.apref(user_id, item) for item in self.items}


class PreferenceModel:
    """Time-aware, affinity-aware user-item preferences for a group.

    Parameters
    ----------
    absolute:
        The ``apref`` source (see :class:`AbsolutePreferenceSource`).
    affinity:
        The affinity model; defaults to the affinity-agnostic model, in which
        case ``pref == apref``.
    """

    def __init__(
        self,
        absolute: AbsolutePreferenceSource | RatingPredictor | Mapping[int, Mapping[int, float]],
        affinity: AffinityModel | None = None,
    ) -> None:
        if isinstance(absolute, AbsolutePreferenceSource):
            self.absolute = absolute
        else:
            self.absolute = AbsolutePreferenceSource(absolute)
        self.affinity = affinity if affinity is not None else NoAffinityModel()
        self._apref_cache: dict[int, dict[int, float]] = {}

    # -- component accessors --------------------------------------------------------

    def apref(self, user_id: int, item_id: int) -> float:
        """Absolute preference ``apref(u, i)``."""
        cached = self._apref_cache.get(user_id)
        if cached is not None and item_id in cached:
            return cached[item_id]
        return self.absolute.apref(user_id, item_id)

    def aprefs_of(self, user_id: int) -> dict[int, float]:
        """All absolute preferences of a user (cached)."""
        if user_id not in self._apref_cache:
            self._apref_cache[user_id] = self.absolute.all_aprefs(user_id)
        return self._apref_cache[user_id]

    def rpref(
        self,
        user_id: int,
        item_id: int,
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """Relative preference ``rpref(u, i, G, p)``."""
        _validate_group(group, user_id)
        total = 0.0
        for other in group:
            if other == user_id:
                continue
            total += self.affinity.affinity(user_id, other, period) * self.apref(other, item_id)
        return total

    def pref(
        self,
        user_id: int,
        item_id: int,
        group: Sequence[int],
        period: Period | None = None,
    ) -> float:
        """Overall preference ``pref(u, i, G, p) = apref + rpref``."""
        return self.apref(user_id, item_id) + self.rpref(user_id, item_id, group, period)

    # -- group-level helpers ----------------------------------------------------------

    def group_prefs(
        self,
        item_id: int,
        group: Sequence[int],
        period: Period | None = None,
    ) -> dict[int, float]:
        """``{user: pref(u, i, G, p)}`` for every member of the group."""
        _validate_group(group)
        return {user: self.pref(user, item_id, group, period) for user in group}

    def max_possible_pref(self, group: Sequence[int], max_apref: float = 5.0) -> float:
        """Upper bound on any member preference given the group size.

        With affinities in [0, 1] and ``apref`` bounded by ``max_apref``, a
        member's preference cannot exceed ``max_apref * |G|``.  Consensus
        functions use this to map scores onto a [0, 1] scale.
        """
        _validate_group(group)
        return max_apref * len(group)


def _validate_group(group: Sequence[int], member: int | None = None) -> None:
    """Common group validation: non-empty, no duplicates, membership check."""
    if not group:
        raise GroupError("the group is empty")
    if len(set(group)) != len(group):
        raise GroupError(f"the group contains duplicate members: {list(group)}")
    if member is not None and member not in group:
        raise GroupError(f"user {member} is not a member of the group {list(group)}")
