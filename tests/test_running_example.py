"""The paper's running example (Section 3.1, Tables 1-4).

Three users, three items, two six-month periods.  The absolute preference
lists, static affinity lists and periodic affinity lists are copied verbatim
from Tables 1-4; the paper states that GRECA returns ``i1`` as the top-1 item
for the group.
"""

from __future__ import annotations

import pytest

from repro.core.baseline import NaiveFullScan
from repro.core.consensus import AVERAGE_PREFERENCE, LEAST_MISERY, PAIRWISE_DISAGREEMENT
from repro.core.greca import Greca, GrecaIndex

#: Table 1 — absolute preference lists of u1, u2, u3.
APREFS = {
    1: {"i1": 5.0, "i2": 1.0, "i3": 1.0},
    2: {"i1": 5.0, "i2": 1.0, "i3": 0.5},
    3: {"i3": 2.0, "i1": 2.0, "i2": 1.0},
}

#: Table 2 — static affinity lists.
STATIC = {(1, 2): 1.0, (1, 3): 0.2, (2, 3): 0.3}

#: Tables 3 and 4 — periodic affinity lists for p1 and p2.
PERIODIC = {
    0: {(1, 2): 0.8, (1, 3): 0.1, (2, 3): 0.2},
    1: {(1, 2): 0.7, (1, 3): 0.1, (2, 3): 0.1},
}


@pytest.fixture()
def index() -> GrecaIndex:
    return GrecaIndex(
        members=[1, 2, 3],
        aprefs=APREFS,
        static=STATIC,
        periodic=PERIODIC,
        time_model="discrete",
        max_apref=5.0,
    )


class TestRunningExampleIndex:
    def test_item_universe(self, index):
        assert index.items == ("i1", "i2", "i3")

    def test_total_entries(self, index):
        # 3 preference lists x 3 items + 3 pairs x (1 static + 2 periodic) lists
        assert index.total_index_entries() == 9 + 3 * 3

    def test_affinity_of_u1_u2_reflects_decreasing_page_likes(self, index):
        """The paper notes the (u1, u2) affinity decreased between p1 and p2."""
        assert PERIODIC[1][(1, 2)] < PERIODIC[0][(1, 2)]
        # The combined affinity is still the strongest of the group.
        assert index.affinity(1, 2) >= index.affinity(1, 3)
        assert index.affinity(1, 2) >= index.affinity(2, 3)

    def test_exact_scores_rank_i1_first(self, index):
        scores = index.exact_scores(AVERAGE_PREFERENCE)
        assert max(scores, key=lambda item: scores[item]) == "i1"


class TestRunningExampleGreca:
    @pytest.mark.parametrize(
        "consensus", [AVERAGE_PREFERENCE, LEAST_MISERY, PAIRWISE_DISAGREEMENT]
    )
    def test_top1_is_i1(self, index, consensus):
        """GRECA returns i1 as the top-1 recommendation (Section 3.2)."""
        result = Greca(consensus, k=1, check_interval=1).run(index)
        assert result.items == ("i1",)

    def test_greca_matches_naive_top1(self, index):
        greca = Greca(AVERAGE_PREFERENCE, k=1, check_interval=1).run(index)
        naive = NaiveFullScan(AVERAGE_PREFERENCE, k=1).run(index)
        assert greca.items == naive.items == ("i1",)

    def test_naive_reads_every_entry(self, index):
        naive = NaiveFullScan(AVERAGE_PREFERENCE, k=1).run(index)
        assert naive.sequential_accesses == index.total_index_entries()
        assert naive.percent_sequential_accesses == pytest.approx(100.0)

    def test_greca_terminates_before_exhausting_the_lists(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=1, check_interval=1).run(index)
        assert result.sequential_accesses <= result.total_entries
        assert result.stopping in ("buffer", "threshold", "exhausted")

    def test_top2_contains_i1(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=2, check_interval=1).run(index)
        assert "i1" in result.items
        assert len(result.items) == 2

    def test_bounds_bracket_exact_scores(self, index):
        result = Greca(AVERAGE_PREFERENCE, k=2, check_interval=1).run(index)
        exact = index.exact_scores(AVERAGE_PREFERENCE)
        for item, (lower, upper) in result.bounds.items():
            assert lower - 1e-9 <= exact[item] <= upper + 1e-9

    def test_continuous_model_also_ranks_i1_first(self):
        index = GrecaIndex(
            members=[1, 2, 3],
            aprefs=APREFS,
            static=STATIC,
            periodic=PERIODIC,
            time_model="continuous",
            max_apref=5.0,
        )
        result = Greca(AVERAGE_PREFERENCE, k=1, check_interval=1).run(index)
        assert result.items == ("i1",)
