"""Assembled environment for the quality (user-study) experiments.

Pulls together everything the Figures 1-3 reproductions need: the study
cohort (participants, ratings, social graph), a fitted
:class:`~repro.core.recommender.GroupRecommender` trained on the *visible*
part of the ratings, the satisfaction oracle built on the *full* ratings, and
the eight study groups labelled by size, cohesiveness and affinity strength.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.recommender import GroupRecommender
from repro.core.timeline import Period, Timeline, one_year_timeline
from repro.data.movielens import MovieLensConfig, generate_movielens_like
from repro.data.ratings import RatingsDataset
from repro.data.study_cohort import StudyCohort, StudyConfig, build_study_cohort
from repro.exceptions import ConfigurationError
from repro.groups.formation import GroupFormer, GroupProfile
from repro.study.satisfaction import OracleConfig, SatisfactionOracle

#: The six group characteristics reported on the x-axis of Figures 1-3.
CHARACTERISTICS = ("Sim", "Diss", "Small", "Large", "High Aff", "Low Aff")


@dataclass(frozen=True)
class StudyGroup:
    """A study group together with the characteristics it contributes to."""

    members: tuple[int, ...]
    characteristics: tuple[str, ...]

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)


@dataclass
class StudyEnvironment:
    """Everything needed to run the quality experiments."""

    cohort: StudyCohort
    timeline: Timeline
    recommender: GroupRecommender
    oracle: SatisfactionOracle
    groups: tuple[StudyGroup, ...]

    @property
    def period(self) -> Period:
        """The query period (the most recent period of the timeline)."""
        return self.timeline.current

    def groups_with(self, characteristic: str) -> list[StudyGroup]:
        """All study groups contributing to one characteristic."""
        if characteristic not in CHARACTERISTICS:
            raise ConfigurationError(
                f"unknown characteristic {characteristic!r}; expected one of {CHARACTERISTICS}"
            )
        return [group for group in self.groups if characteristic in group.characteristics]


def _profile_characteristics(profile: GroupProfile, small: int) -> tuple[str, ...]:
    """Map a :class:`GroupProfile` onto the paper's characteristic labels."""
    labels = ["Small" if profile.size <= small else "Large"]
    if profile.cohesiveness_label == "similar":
        labels.append("Sim")
    elif profile.cohesiveness_label == "dissimilar":
        labels.append("Diss")
    if profile.affinity_label == "high-affinity":
        labels.append("High Aff")
    elif profile.affinity_label == "low-affinity":
        labels.append("Low Aff")
    return tuple(labels)


def build_study_environment(
    base_ratings: RatingsDataset | None = None,
    timeline: Timeline | None = None,
    study_config: StudyConfig | None = None,
    oracle_config: OracleConfig | None = None,
    holdout_fraction: float = 0.2,
    small_size: int = 3,
    large_size: int = 6,
    seed: int = 5,
) -> StudyEnvironment:
    """Build the full quality-experiment environment.

    Parameters
    ----------
    base_ratings:
        The MovieLens(-like) dataset the study movies are drawn from; a small
        synthetic dataset is generated when omitted.
    timeline:
        Observation timeline; defaults to one year of two-month periods (the
        paper's choice after Figure 4).
    study_config:
        Cohort-generation configuration.
    oracle_config:
        Satisfaction-oracle configuration.
    holdout_fraction:
        Fraction of each participant's ratings hidden from the recommender
        but visible to the oracle (the "ground truth" the methods compete to
        anticipate).
    small_size / large_size:
        Group sizes for the small/large study groups.
    seed:
        Seed for dataset generation and group formation.
    """
    if base_ratings is None:
        base_ratings = generate_movielens_like(
            MovieLensConfig(n_users=300, n_items=400, n_ratings=15000, seed=seed)
        )
    if timeline is None:
        timeline = one_year_timeline(granularity="two-month")
    if study_config is None:
        # Defaults tuned so that the synthetic cohort exhibits the contrasts
        # the paper's study relies on: distinct taste circles, a wide enough
        # questionnaire for recommendation lists to differ, and page-like
        # behaviour that actually drifts over the year (see DESIGN.md §5).
        from repro.data.social import SocialConfig

        study_config = StudyConfig(
            popular_set_size=90,
            diversity_set_size=45,
            diversity_popularity_rank=250,
            min_ratings_per_user=55,
            taste_noise=0.5,
            social=SocialConfig(
                intra_friend_prob=0.75,
                inter_friend_prob=0.02,
                likes_per_period=8.0,
                like_activity_drop=0.25,
                categories_per_community=15,
                drift_strength=1.4,
            ),
        )
    if oracle_config is None:
        oracle_config = OracleConfig(personal_weight=0.5, social_weight=0.5, noise=0.15)

    cohort = build_study_cohort(base_ratings, timeline, study_config)

    visible, _held_out = cohort.ratings.leave_out_split(holdout_fraction, seed=seed)
    recommender = GroupRecommender(
        ratings=visible,
        social=cohort.social,
        timeline=timeline,
        affinity_universe=cohort.participants,
    ).fit()

    # Ground-truth affinity for the oracle: the discrete temporal model over
    # the real (synthetic) social data — i.e. what actually drives who enjoys
    # what in whose company.
    truth_affinity = recommender.affinity_model("discrete")
    oracle = SatisfactionOracle(cohort.ratings, truth_affinity, oracle_config)

    former = GroupFormer(cohort.ratings, candidates=cohort.participants, seed=seed)
    profiles = former.study_groups(
        truth_affinity, period=timeline.current, small=small_size, large=large_size
    )
    groups = tuple(
        StudyGroup(members=profile.members, characteristics=_profile_characteristics(profile, small_size))
        for profile in profiles
    )

    return StudyEnvironment(
        cohort=cohort,
        timeline=timeline,
        recommender=recommender,
        oracle=oracle,
        groups=groups,
    )
