"""Generic Fagin-style top-k substrate (TA and NRA)."""

from repro.topk.nra import AggregationFn, NoRandomAccessAlgorithm, TopKResult
from repro.topk.ta import ThresholdAlgorithm

__all__ = [
    "AggregationFn",
    "NoRandomAccessAlgorithm",
    "ThresholdAlgorithm",
    "TopKResult",
]
