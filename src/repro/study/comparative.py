"""Comparative evaluation protocol (Section 4.1.4, Figures 2 and 3).

In the comparative evaluation participants are shown two (or three) lists at
a time and must pick exactly one (closed-world assumption).  The paper
reports three pairwise comparisons (Figure 3):

* **A** — affinity-aware vs affinity-agnostic recommendations,
* **B** — time-aware vs time-agnostic recommendations,
* **C** — continuous vs discrete time model,

and one three-way comparison between the consensus functions AP, MO and PD
(Figure 2).  Each participant's forced choice is simulated with the
satisfaction oracle; results are reported per group characteristic as the
percentage of choices won by the first list (Figure 3) or by each consensus
function (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.study.environment import CHARACTERISTICS, StudyEnvironment, StudyGroup

#: The two configurations compared in each chart of Figure 3.
FIGURE3_COMPARISONS: dict[str, tuple[dict[str, str], dict[str, str]]] = {
    "A (Affinity-aware vs Affinity-agnostic)": (
        {"affinity": "discrete", "consensus": "AP"},
        {"affinity": "none", "consensus": "AP"},
    ),
    "B (Time-aware vs Time-agnostic)": (
        {"affinity": "discrete", "consensus": "AP"},
        {"affinity": "time-agnostic", "consensus": "AP"},
    ),
    "C (Continuous vs Discrete)": (
        {"affinity": "continuous", "consensus": "AP"},
        {"affinity": "discrete", "consensus": "AP"},
    ),
}

#: The consensus functions compared in Figure 2.
FIGURE2_FUNCTIONS = ("AP", "MO", "PD")


@dataclass(frozen=True)
class ComparativeChart:
    """One chart of Figure 3: per-characteristic win percentage of the first list."""

    label: str
    first: Mapping[str, str]
    second: Mapping[str, str]
    preference_percent: Mapping[str, float]

    def overall(self) -> float:
        """Mean win percentage across characteristics."""
        values = list(self.preference_percent.values())
        return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class ConsensusComparison:
    """Figure 2: per-characteristic share of votes won by each consensus function."""

    preference_percent: Mapping[str, Mapping[str, float]]

    def winner(self, characteristic: str) -> str:
        """The consensus function preferred for one characteristic."""
        shares = self.preference_percent[characteristic]
        return max(shares, key=lambda name: shares[name])


class ComparativeEvaluation:
    """Run the comparative evaluations over the study environment."""

    def __init__(self, environment: StudyEnvironment, k: int = 5) -> None:
        self.environment = environment
        self.k = k
        self._list_cache: dict[tuple[tuple[int, ...], str, str], tuple[int, ...]] = {}

    # -- helpers --------------------------------------------------------------------------------

    def _recommend(self, group: StudyGroup, affinity: str, consensus: str) -> tuple[int, ...]:
        key = (group.members, affinity, consensus)
        if key not in self._list_cache:
            env = self.environment
            recommendation = env.recommender.recommend(
                list(group.members),
                k=self.k,
                period=env.period,
                consensus=consensus,
                affinity=affinity,
                algorithm="naive",
                exclude_rated=False,
            )
            self._list_cache[key] = recommendation.items
        return self._list_cache[key]

    # -- Figure 3 --------------------------------------------------------------------------------

    def compare_pair(
        self,
        first: Mapping[str, str],
        second: Mapping[str, str],
        label: str = "",
    ) -> ComparativeChart:
        """Pairwise forced-choice comparison of two configurations."""
        env = self.environment
        per_characteristic: dict[str, float] = {}
        for characteristic in CHARACTERISTICS:
            wins = 0
            votes = 0
            for group in env.groups_with(characteristic):
                first_list = self._recommend(group, first["affinity"], first["consensus"])
                second_list = self._recommend(group, second["affinity"], second["consensus"])
                for member in group.members:
                    votes += 1
                    if first_list == second_list:
                        # Identical lists: the choice carries no signal; split the vote.
                        wins += 0.5
                    elif env.oracle.member_prefers(
                        member, first_list, second_list, list(group.members), env.period
                    ):
                        wins += 1
            per_characteristic[characteristic] = 100.0 * wins / votes if votes else 0.0
        return ComparativeChart(
            label=label or "comparison",
            first=dict(first),
            second=dict(second),
            preference_percent=per_characteristic,
        )

    def run_figure3(self) -> dict[str, ComparativeChart]:
        """All three pairwise comparisons of Figure 3."""
        charts = {}
        for label, (first, second) in FIGURE3_COMPARISONS.items():
            charts[label] = self.compare_pair(first, second, label=label)
        return charts

    # -- Figure 2 --------------------------------------------------------------------------------

    def compare_consensus_functions(
        self, functions: Sequence[str] = FIGURE2_FUNCTIONS, affinity: str = "discrete"
    ) -> ConsensusComparison:
        """Three-way comparison of consensus functions under temporal affinities."""
        env = self.environment
        results: dict[str, dict[str, float]] = {}
        for characteristic in CHARACTERISTICS:
            votes = {name: 0.0 for name in functions}
            total = 0
            for group in env.groups_with(characteristic):
                lists = {
                    name: self._recommend(group, affinity, name) for name in functions
                }
                for member in group.members:
                    total += 1
                    utilities = {
                        name: env.oracle.list_utility(
                            member, items, list(group.members), env.period
                        )
                        for name, items in lists.items()
                    }
                    best = max(utilities, key=lambda name: utilities[name])
                    votes[best] += 1
            results[characteristic] = {
                name: (100.0 * count / total if total else 0.0) for name, count in votes.items()
            }
        return ConsensusComparison(preference_percent=results)
