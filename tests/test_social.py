"""Tests for repro.data.social (friendships, page likes, generator)."""

from __future__ import annotations

import pytest

from repro.core.timeline import Period, uniform_timeline
from repro.data.social import (
    N_PAGE_CATEGORIES,
    PageLike,
    SocialConfig,
    SocialNetwork,
    SocialNetworkGenerator,
)
from repro.exceptions import ConfigurationError, DataError


class TestPageLike:
    def test_valid_category(self):
        assert PageLike(1, 0, 5).category == 0
        assert PageLike(1, N_PAGE_CATEGORIES - 1, 5).category == N_PAGE_CATEGORIES - 1

    @pytest.mark.parametrize("category", [-1, N_PAGE_CATEGORIES])
    def test_invalid_category(self, category):
        with pytest.raises(DataError):
            PageLike(1, category, 5)


class TestSocialNetwork:
    def test_friendship_is_symmetric(self, tiny_social):
        assert tiny_social.are_friends(1, 2)
        assert tiny_social.are_friends(2, 1)
        assert not tiny_social.are_friends(1, 4)

    def test_self_friendship_rejected(self):
        with pytest.raises(DataError):
            SocialNetwork([1, 2], [(1, 1)])

    def test_friendship_with_unknown_user_rejected(self):
        with pytest.raises(DataError):
            SocialNetwork([1, 2], [(1, 3)])

    def test_like_with_unknown_user_rejected(self):
        with pytest.raises(DataError):
            SocialNetwork([1, 2], [], [PageLike(7, 3, 10)])

    def test_common_friends_counts_paper_static_affinity(self, tiny_social):
        # friends(1) = {2, 3}, friends(2) = {1, 3} -> common = {3}
        assert tiny_social.common_friends(1, 2) == 1
        # friends(1) = {2, 3}, friends(4) = {3} -> common = {3}
        assert tiny_social.common_friends(1, 4) == 1
        assert tiny_social.common_friends(2, 4) == 1

    def test_unknown_user_in_friends_query(self, tiny_social):
        with pytest.raises(DataError):
            tiny_social.friends(99)

    def test_likes_of_with_and_without_period(self, tiny_social, short_timeline):
        assert len(tiny_social.likes_of(1)) == 4
        assert len(tiny_social.likes_of(1, short_timeline[0])) == 2

    def test_liked_categories_per_period(self, tiny_social, short_timeline):
        assert tiny_social.liked_categories(1, short_timeline[0]) == frozenset({5, 6})
        assert tiny_social.liked_categories(1, short_timeline[2]) == frozenset({2})

    def test_common_category_likes_matches_paper_periodic_affinity(self, tiny_social, short_timeline):
        assert tiny_social.common_category_likes(1, 2, short_timeline[0]) == 2
        assert tiny_social.common_category_likes(1, 2, short_timeline[1]) == 1
        assert tiny_social.common_category_likes(1, 2, short_timeline[2]) == 0
        assert tiny_social.common_category_likes(3, 4, short_timeline[2]) == 1

    def test_non_empty_period_fraction(self, tiny_social, short_timeline):
        # user 1: periods 0,1,2 active; user 2: 0,1; user 3: 0,1,2; user 4: 1,2
        fraction = tiny_social.non_empty_period_fraction(short_timeline)
        assert fraction == pytest.approx(10 / 12)

    def test_restrict_keeps_internal_edges_only(self, tiny_social):
        sub = tiny_social.restrict([1, 2, 4])
        assert sub.users == (1, 2, 4)
        assert sub.are_friends(1, 2)
        assert not sub.are_friends(1, 4)
        assert all(like.user_id in {1, 2, 4} for like in sub.page_likes)


class TestSocialConfig:
    def test_defaults_valid(self):
        SocialConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_communities": 0},
            {"intra_friend_prob": 1.5},
            {"inter_friend_prob": -0.1},
            {"likes_per_period": -1.0},
            {"categories_per_community": 0},
            {"categories_per_community": 500},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            SocialConfig(**kwargs)


class TestGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        timeline = uniform_timeline(0, 6, 1000)
        users = list(range(1, 25))
        return SocialNetworkGenerator(SocialConfig(seed=7)).generate(users, timeline), timeline

    def test_covers_all_users(self, generated):
        network, _ = generated
        assert len(network.users) == 24

    def test_intra_community_friendships_denser(self, generated):
        network, _ = generated
        users = network.users
        # Round-robin community assignment over 4 communities:
        same = [(a, b) for i, a in enumerate(users) for b in users[i + 1 :] if (i % 4) == (users.index(b) % 4)]
        diff = [(a, b) for i, a in enumerate(users) for b in users[i + 1 :] if (i % 4) != (users.index(b) % 4)]
        same_rate = sum(network.are_friends(a, b) for a, b in same) / len(same)
        diff_rate = sum(network.are_friends(a, b) for a, b in diff) / len(diff)
        assert same_rate > diff_rate

    def test_likes_have_valid_categories_and_timestamps(self, generated):
        network, timeline = generated
        for like in network.page_likes:
            assert 0 <= like.category < N_PAGE_CATEGORIES
            assert timeline.beginning <= like.timestamp <= timeline.end

    def test_requires_two_users(self):
        timeline = uniform_timeline(0, 2, 100)
        with pytest.raises(ConfigurationError):
            SocialNetworkGenerator().generate([1], timeline)

    def test_deterministic_for_seed(self):
        timeline = uniform_timeline(0, 3, 500)
        users = list(range(1, 13))
        first = SocialNetworkGenerator(SocialConfig(seed=9)).generate(users, timeline)
        second = SocialNetworkGenerator(SocialConfig(seed=9)).generate(users, timeline)
        assert [(l.user_id, l.category, l.timestamp) for l in first.page_likes] == [
            (l.user_id, l.category, l.timestamp) for l in second.page_likes
        ]
