"""Benchmark regenerating Figure 8 (%SA per consensus function)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure8


def test_figure8_consensus_functions(benchmark, scalability_env):
    """Compare GRECA's access cost under AR (AP), MO, PD V1 and PD V2."""
    result = run_once(benchmark, figure8.run, environment=scalability_env)
    print()
    print(result.format_table())
    rows = {row["consensus"]: row for row in result.rows()}
    assert set(rows) == {"AR", "MO", "PD V1", "PD V2"}
    for row in rows.values():
        assert 0.0 < row["mean_percent_sa"] <= 100.0
    # AR (average preference) achieves substantial savings, as in the paper.
    assert rows["AR"]["saveup"] > 50.0
