"""Tests for the generic Fagin-style substrate (repro.topk)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lists import KIND_PREFERENCE, AccessCounter, SortedAccessList
from repro.exceptions import AlgorithmError
from repro.topk.nra import NoRandomAccessAlgorithm
from repro.topk.ta import ThresholdAlgorithm


def _make_lists(scores_per_list, counter=None):
    counter = counter or AccessCounter()
    return [
        SortedAccessList(f"L{i}", KIND_PREFERENCE, scores.items(), counter)
        for i, scores in enumerate(scores_per_list)
    ], counter


def _exact_top_k(scores_per_list, aggregation, k):
    keys = set().union(*[set(scores) for scores in scores_per_list])
    totals = {
        key: aggregation([scores.get(key, 0.0) for scores in scores_per_list]) for key in keys
    }
    return sorted(totals.values(), reverse=True)[:k], totals


SIMPLE_LISTS = [
    {"a": 0.9, "b": 0.8, "c": 0.1, "d": 0.05},
    {"a": 0.7, "b": 0.2, "c": 0.9, "d": 0.1},
    {"a": 0.5, "b": 0.6, "c": 0.2, "d": 0.9},
]


class TestNRA:
    def test_requires_lists_and_valid_k(self):
        with pytest.raises(AlgorithmError):
            NoRandomAccessAlgorithm(sum, k=0)
        with pytest.raises(AlgorithmError):
            NoRandomAccessAlgorithm(sum, k=1).run([])

    def test_lists_must_share_counter(self):
        lists, _ = _make_lists(SIMPLE_LISTS[:1])
        other, _ = _make_lists(SIMPLE_LISTS[1:2])
        with pytest.raises(AlgorithmError):
            NoRandomAccessAlgorithm(sum, k=1).run(lists + other)

    def test_finds_exact_top_k(self):
        lists, counter = _make_lists(SIMPLE_LISTS)
        result = NoRandomAccessAlgorithm(sum, k=2).run(lists)
        expected, totals = _exact_top_k(SIMPLE_LISTS, sum, 2)
        assert sorted((totals[item] for item in result.items), reverse=True) == pytest.approx(expected)
        assert result.sequential_accesses == counter.sequential
        assert result.random_accesses == 0

    def test_makes_no_random_accesses(self):
        lists, counter = _make_lists(SIMPLE_LISTS)
        NoRandomAccessAlgorithm(sum, k=1).run(lists)
        assert counter.random == 0

    def test_can_stop_early_on_separated_scores(self):
        lists_data = [
            {"top": 1.0, **{f"x{i}": 0.01 for i in range(30)}},
            {"top": 1.0, **{f"x{i}": 0.01 for i in range(30)}},
        ]
        lists, _ = _make_lists(lists_data)
        result = NoRandomAccessAlgorithm(sum, k=1).run(lists)
        assert result.items == ("top",)
        assert result.sequential_accesses < result.total_entries


class TestTA:
    def test_requires_lists_and_valid_k(self):
        with pytest.raises(AlgorithmError):
            ThresholdAlgorithm(sum, k=0)
        with pytest.raises(AlgorithmError):
            ThresholdAlgorithm(sum, k=1).run([])

    def test_finds_exact_top_k_with_exact_scores(self):
        lists, _ = _make_lists(SIMPLE_LISTS)
        result = ThresholdAlgorithm(sum, k=2).run(lists)
        expected, totals = _exact_top_k(SIMPLE_LISTS, sum, 2)
        assert sorted(result.lower_bounds.values(), reverse=True) == pytest.approx(expected)
        # TA resolves exact scores, so lower and upper bounds coincide.
        assert result.lower_bounds == result.upper_bounds

    def test_uses_random_accesses(self):
        lists, counter = _make_lists(SIMPLE_LISTS)
        ThresholdAlgorithm(sum, k=1).run(lists)
        assert counter.random > 0


@given(
    n_lists=st.integers(min_value=1, max_value=4),
    n_items=st.integers(min_value=1, max_value=20),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=9999),
    aggregation_name=st.sampled_from(["sum", "min", "mean"]),
)
@settings(max_examples=40, deadline=None)
def test_nra_and_ta_agree_with_exhaustive_oracle(n_lists, n_items, k, seed, aggregation_name):
    """Both algorithms return the exact top-k scores for random monotone instances."""
    rng = random.Random(seed)
    aggregation = {
        "sum": sum,
        "min": min,
        "mean": lambda values: sum(values) / len(values),
    }[aggregation_name]
    data = [
        {f"item{j}": round(rng.uniform(0, 1), 3) for j in range(n_items)} for _ in range(n_lists)
    ]
    k = min(k, n_items)
    expected, _ = _exact_top_k(data, aggregation, k)

    nra_lists, _ = _make_lists(data)
    nra = NoRandomAccessAlgorithm(aggregation, k=k).run(nra_lists)
    _, totals = _exact_top_k(data, aggregation, k)
    assert sorted((totals[i] for i in nra.items), reverse=True) == pytest.approx(expected)

    ta_lists, _ = _make_lists(data)
    ta = ThresholdAlgorithm(aggregation, k=k).run(ta_lists)
    assert sorted(ta.lower_bounds.values(), reverse=True) == pytest.approx(expected)
