"""Benchmark regenerating Figure 2 (consensus-function comparison)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure2
from repro.study.environment import CHARACTERISTICS


def test_figure2_consensus_function_preferences(benchmark, study_env):
    """Three-way forced choice between AP, MO and PD recommendation lists."""
    result = run_once(benchmark, figure2.run, environment=study_env)
    print()
    print(result.format_table())
    for characteristic in CHARACTERISTICS:
        shares = result.comparison.preference_percent[characteristic]
        assert abs(sum(shares.values()) - 100.0) < 1e-6
