"""MovieLens 1M loader and a statistically matched synthetic generator.

The paper's scalability study (Section 4.2) uses the MovieLens 1M dataset:
6,040 users, 3,952 movies and 1,000,209 ratings on a 1-5 scale (Table 5).
This module provides two ways to obtain such a dataset:

* :func:`load_movielens` reads the original ``ratings.dat`` /``movies.dat``
  files (``UserID::MovieID::Rating::Timestamp``) if a local copy is available.
* :func:`generate_movielens_like` synthesises a dataset with the same shape:
  long-tailed user activity and item popularity, a realistic 1-5 rating
  distribution driven by a latent-factor model, and timestamps spread over a
  configurable history window.

The synthetic generator is the substitution documented in DESIGN.md §5: the
algorithms only consume ``(user, item, rating, timestamp)`` tuples, so
matching scale and skew preserves the score distributions that drive GRECA's
pruning behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.data.ratings import MAX_RATING, MIN_RATING, Rating, RatingsDataset
from repro.exceptions import ConfigurationError, DataError

#: Real MovieLens 1M headline statistics (the paper's Table 5).
MOVIELENS_1M_USERS = 6_040
MOVIELENS_1M_MOVIES = 3_952
MOVIELENS_1M_RATINGS = 1_000_209

#: One year expressed in seconds; the default history window of the generator.
ONE_YEAR_SECONDS = 365 * 86_400


@dataclass(frozen=True)
class MovieLensConfig:
    """Configuration of the synthetic MovieLens-like generator.

    The defaults produce a laptop-friendly slice whose *relative* shape
    (activity skew, rating distribution) matches MovieLens 1M; pass
    ``n_users=6040, n_items=3952, n_ratings=1_000_209`` to generate the full
    scale of Table 5.
    """

    n_users: int = 600
    n_items: int = 400
    n_ratings: int = 20_000
    n_factors: int = 8
    start_timestamp: int = 0
    history_seconds: int = ONE_YEAR_SECONDS
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_users <= 1 or self.n_items <= 1:
            raise ConfigurationError("need at least two users and two items")
        if self.n_ratings < self.n_users:
            raise ConfigurationError("need at least one rating per user")
        max_possible = self.n_users * self.n_items
        if self.n_ratings > max_possible:
            raise ConfigurationError(
                f"cannot place {self.n_ratings} distinct ratings in a "
                f"{self.n_users}x{self.n_items} matrix"
            )
        if self.n_factors <= 0:
            raise ConfigurationError("n_factors must be positive")
        if self.history_seconds <= 0:
            raise ConfigurationError("history_seconds must be positive")


def load_movielens(path: str, name: str = "movielens-1m") -> RatingsDataset:
    """Load ratings from a MovieLens ``ratings.dat`` file.

    The expected record format is ``UserID::MovieID::Rating::Timestamp`` (the
    MovieLens 1M distribution format).  ``.csv`` files with a
    ``userId,movieId,rating,timestamp`` header (the 20M/25M format) are also
    accepted.

    Parameters
    ----------
    path:
        Path to ``ratings.dat`` or ``ratings.csv``.
    name:
        Name to attach to the resulting dataset.
    """
    if not os.path.exists(path):
        raise DataError(f"MovieLens ratings file not found: {path}")

    ratings: list[Rating] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if "::" in line:
                parts = line.split("::")
            else:
                parts = line.split(",")
                if line_number == 1 and not parts[0].isdigit():
                    continue  # header row of the csv format
            if len(parts) < 4:
                raise DataError(f"{path}:{line_number}: malformed rating record {line!r}")
            user_id, item_id, value, timestamp = parts[:4]
            ratings.append(
                Rating(int(user_id), int(item_id), float(value), int(float(timestamp)))
            )
    if not ratings:
        raise DataError(f"{path} contains no ratings")
    return RatingsDataset(ratings, name=name)


def _zipf_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Long-tailed popularity weights with a little noise, normalised to sum 1."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    weights *= rng.uniform(0.8, 1.2, size=n)
    return weights / weights.sum()


def generate_movielens_like(config: MovieLensConfig | None = None) -> RatingsDataset:
    """Generate a synthetic dataset with MovieLens-like structure.

    The generator draws user and item latent factors, biases and long-tailed
    activity/popularity weights, then samples ``n_ratings`` distinct
    (user, item) pairs.  Each rating is the clipped, rounded latent score,
    which yields the familiar J-shaped 1-5 distribution centred around 3.5-4.

    Returns
    -------
    RatingsDataset
        A dataset whose :meth:`~repro.data.ratings.RatingsDataset.stats` match
        the requested scale.
    """
    config = config or MovieLensConfig()
    rng = np.random.default_rng(config.seed)

    user_ids = np.arange(1, config.n_users + 1)
    item_ids = np.arange(1, config.n_items + 1)

    user_factors = rng.normal(0.0, 0.45, size=(config.n_users, config.n_factors))
    item_factors = rng.normal(0.0, 0.45, size=(config.n_items, config.n_factors))
    user_bias = rng.normal(0.0, 0.35, size=config.n_users)
    item_bias = rng.normal(0.0, 0.45, size=config.n_items)
    global_mean = 3.55

    user_activity = _zipf_weights(config.n_users, exponent=1.1, rng=rng)
    item_popularity = _zipf_weights(config.n_items, exponent=0.9, rng=rng)

    # Ensure every user has at least one rating by reserving one draw per user.
    seen: set[tuple[int, int]] = set()
    pairs: list[tuple[int, int]] = []
    for user_index in range(config.n_users):
        item_index = int(rng.choice(config.n_items, p=item_popularity))
        pairs.append((user_index, item_index))
        seen.add((user_index, item_index))

    remaining = config.n_ratings - len(pairs)
    batch = max(1024, remaining)
    while remaining > 0:
        users = rng.choice(config.n_users, size=batch, p=user_activity)
        items = rng.choice(config.n_items, size=batch, p=item_popularity)
        for user_index, item_index in zip(users, items):
            key = (int(user_index), int(item_index))
            if key in seen:
                continue
            seen.add(key)
            pairs.append(key)
            remaining -= 1
            if remaining == 0:
                break

    noise = rng.normal(0.0, 0.4, size=len(pairs))
    timestamps = rng.integers(
        config.start_timestamp,
        config.start_timestamp + config.history_seconds,
        size=len(pairs),
    )

    ratings: list[Rating] = []
    for index, (user_index, item_index) in enumerate(pairs):
        score = (
            global_mean
            + user_bias[user_index]
            + item_bias[item_index]
            + float(user_factors[user_index] @ item_factors[item_index])
            + noise[index]
        )
        value = float(np.clip(round(score * 2) / 2.0, MIN_RATING, MAX_RATING))
        # MovieLens 1M uses whole-star ratings; round to the nearest integer star.
        value = float(np.clip(round(value), MIN_RATING, MAX_RATING))
        ratings.append(
            Rating(
                user_id=int(user_ids[user_index]),
                item_id=int(item_ids[item_index]),
                value=value,
                timestamp=int(timestamps[index]),
            )
        )
    return RatingsDataset(ratings, name=f"movielens-like-{config.n_users}x{config.n_items}")


def movielens_1m_config(seed: int = 7) -> MovieLensConfig:
    """The full-scale configuration matching Table 5 of the paper.

    Generating the full one million ratings takes a couple of minutes in pure
    Python; experiments default to smaller, shape-preserving slices.
    """
    return MovieLensConfig(
        n_users=MOVIELENS_1M_USERS,
        n_items=MOVIELENS_1M_MOVIES,
        n_ratings=MOVIELENS_1M_RATINGS,
        seed=seed,
    )
