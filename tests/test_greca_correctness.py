"""Property-based correctness of GRECA against the exhaustive oracle.

Lemma 2 of the paper states that GRECA returns the correct top-k itemset.
These tests generate random problem instances (absolute preferences, static
and periodic affinities, both time models, every consensus function) and
check that the scores of GRECA's returned itemset match the scores of the
exact top-k computed by the naive full scan (set equality up to score ties),
and that the reported bounds are sound.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baseline import NaiveFullScan
from repro.core.consensus import make_consensus
from repro.core.greca import Greca, GrecaIndex

CONSENSUS_NAMES = ("AP", "MO", "PD", "PD V2")


def _instances():
    """Strategy generating random GRECA problem instances."""
    return st.builds(
        dict,
        n_members=st.integers(min_value=2, max_value=4),
        n_items=st.integers(min_value=3, max_value=14),
        n_periods=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        time_model=st.sampled_from(["discrete", "continuous"]),
    )


def _build_index(spec: dict) -> GrecaIndex:
    import random

    rng = random.Random(spec["seed"])
    members = list(range(1, spec["n_members"] + 1))
    items = list(range(100, 100 + spec["n_items"]))
    aprefs = {
        member: {item: round(rng.uniform(0.0, 5.0), 2) for item in items} for member in members
    }
    pairs = [(a, b) for i, a in enumerate(members) for b in members[i + 1 :]]
    static = {pair: round(rng.uniform(0.0, 1.0), 2) for pair in pairs}
    periodic = {
        period: {pair: round(rng.uniform(0.0, 1.0), 2) for pair in pairs}
        for period in range(spec["n_periods"])
    }
    averages = {period: round(rng.uniform(0.0, 0.5), 2) for period in range(spec["n_periods"])}
    return GrecaIndex(
        members=members,
        aprefs=aprefs,
        static=static,
        periodic=periodic,
        averages=averages,
        time_model=spec["time_model"],
        max_apref=5.0,
    )


@pytest.mark.parametrize("consensus_name", CONSENSUS_NAMES)
@given(spec=_instances(), k=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_greca_top_k_scores_match_exact_top_k(consensus_name, spec, k):
    """GRECA's itemset has exactly the k highest consensus scores (up to ties)."""
    index = _build_index(spec)
    consensus = make_consensus(consensus_name)
    k = min(k, len(index.items))

    result = Greca(consensus, k=k, check_interval=1).run(index)
    exact = index.exact_scores(consensus)
    expected_scores = sorted(exact.values(), reverse=True)[:k]
    returned_scores = sorted((exact[item] for item in result.items), reverse=True)

    assert len(result.items) == k
    assert returned_scores == pytest.approx(expected_scores, abs=1e-9)


@given(spec=_instances(), k=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_greca_bounds_are_sound(spec, k):
    """Every reported [lower, upper] interval contains the item's exact score."""
    index = _build_index(spec)
    consensus = make_consensus("AP")
    result = Greca(consensus, k=min(k, len(index.items)), check_interval=1).run(index)
    exact = index.exact_scores(consensus)
    for item, (lower, upper) in result.bounds.items():
        assert lower - 1e-9 <= exact[item] <= upper + 1e-9


@given(spec=_instances())
@settings(max_examples=15, deadline=None)
def test_greca_never_exceeds_naive_accesses(spec):
    """GRECA's sequential accesses never exceed the naive full scan's."""
    index = _build_index(spec)
    consensus = make_consensus("AP")
    greca = Greca(consensus, k=2, check_interval=1).run(index)
    naive = NaiveFullScan(consensus, k=2).run(index)
    assert greca.sequential_accesses <= naive.sequential_accesses
    assert naive.sequential_accesses == index.total_index_entries()


@given(spec=_instances())
@settings(max_examples=15, deadline=None)
def test_greca_agrees_with_naive_for_every_consensus(spec):
    index = _build_index(spec)
    for consensus_name in CONSENSUS_NAMES:
        consensus = make_consensus(consensus_name)
        greca = Greca(consensus, k=3, check_interval=1).run(index)
        naive = NaiveFullScan(consensus, k=3).run(index)
        exact = index.exact_scores(consensus)
        assert sorted(exact[item] for item in greca.items) == pytest.approx(
            sorted(naive.scores.values()), abs=1e-9
        )
