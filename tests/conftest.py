"""Shared fixtures for the test suite.

The fixtures build one small, deterministic world reused across many tests:
a MovieLens-like ratings dataset, a one-year two-month timeline, a social
network over a subset of users and a fitted group recommender.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout even when the package has
# not been pip-installed (e.g. on a machine without editable-install support).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.recommender import GroupRecommender  # noqa: E402
from repro.core.timeline import one_year_timeline, uniform_timeline  # noqa: E402
from repro.data.movielens import MovieLensConfig, generate_movielens_like  # noqa: E402
from repro.data.ratings import Rating, RatingsDataset  # noqa: E402
from repro.data.social import PageLike, SocialConfig, SocialNetwork, SocialNetworkGenerator  # noqa: E402

#: Environment variable opting into the slow (minutes-scale) tests.
RUN_SLOW_ENV = "REPRO_RUN_SLOW"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: minutes-scale test (paper-scale substrates); "
        f"skipped unless {RUN_SLOW_ENV}=1 (see `make test-slow`)",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get(RUN_SLOW_ENV) == "1":
        return
    skip_slow = pytest.mark.skip(
        reason=f"slow test: opt in with {RUN_SLOW_ENV}=1 (make test-slow)"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def small_ratings() -> RatingsDataset:
    """A small synthetic MovieLens-like dataset (80 users x 120 items)."""
    return generate_movielens_like(
        MovieLensConfig(n_users=80, n_items=120, n_ratings=2_600, seed=1)
    )


@pytest.fixture(scope="session")
def timeline():
    """One year discretised into two-month periods (the paper's default)."""
    return one_year_timeline(granularity="two-month")


@pytest.fixture(scope="session")
def short_timeline():
    """A tiny 3-period timeline for hand-computed tests."""
    return uniform_timeline(start=0, n_periods=3, period_length=100)


@pytest.fixture(scope="session")
def social_users(small_ratings) -> tuple[int, ...]:
    """The users participating in the social network."""
    return tuple(small_ratings.users[:30])


@pytest.fixture(scope="session")
def social(small_ratings, timeline, social_users) -> SocialNetwork:
    """A community-structured social network over 30 users."""
    return SocialNetworkGenerator(SocialConfig(seed=3)).generate(list(social_users), timeline)


@pytest.fixture(scope="session")
def recommender(small_ratings, social, timeline, social_users) -> GroupRecommender:
    """A fitted group recommender over the shared world."""
    return GroupRecommender(
        ratings=small_ratings,
        social=social,
        timeline=timeline,
        affinity_universe=social_users,
    ).fit()


@pytest.fixture()
def toy_ratings() -> RatingsDataset:
    """A tiny hand-written dataset used where exact values matter."""
    rows = [
        Rating(1, 10, 5.0, 100),
        Rating(1, 11, 3.0, 200),
        Rating(1, 12, 1.0, 300),
        Rating(2, 10, 5.0, 150),
        Rating(2, 11, 3.0, 250),
        Rating(2, 13, 4.0, 350),
        Rating(3, 10, 1.0, 120),
        Rating(3, 12, 5.0, 220),
        Rating(3, 13, 2.0, 320),
        Rating(4, 11, 4.0, 130),
        Rating(4, 12, 4.0, 230),
        Rating(4, 13, 4.0, 330),
    ]
    return RatingsDataset(rows, name="toy")


@pytest.fixture()
def tiny_social(short_timeline) -> SocialNetwork:
    """A hand-written social network of four users over three periods."""
    users = [1, 2, 3, 4]
    friendships = [(1, 2), (1, 3), (2, 3), (3, 4)]
    likes = [
        # Period 0 ([0, 99]): users 1 and 2 share categories 5 and 6.
        PageLike(1, 5, 10),
        PageLike(1, 6, 20),
        PageLike(2, 5, 30),
        PageLike(2, 6, 40),
        PageLike(3, 7, 50),
        # Period 1 ([100, 199]): 1 and 2 share one category; 3 and 4 share one.
        PageLike(1, 5, 110),
        PageLike(2, 5, 120),
        PageLike(3, 8, 130),
        PageLike(4, 8, 140),
        # Period 2 ([200, 299]): only 3 and 4 share a category.
        PageLike(3, 9, 210),
        PageLike(4, 9, 220),
        PageLike(1, 2, 230),
    ]
    return SocialNetwork(users, friendships, likes)
