"""Property-based / metamorphic equivalence tests for the batched engine.

The golden grid (``tests/test_engine_equivalence.py``) freezes a fixed set of
instances; this module complements it with *randomized* substrates (seeded,
hand-rolled generators — no extra dependencies) and asserts structural
properties that must hold on every instance:

* the batched baselines report the same items, scores and SA/RA counts as
  the retained per-entry reference interpreters;
* GRECA's top-k scores match the :class:`NaiveFullScan` exact oracle;
* access metrics are invariant under permutations of the member order and of
  the dictionary insertion orders (the engine may not depend on incidental
  input ordering);
* the naive scan's %SA is exactly 100;
* indexes derived through the reuse layer (:class:`GrecaIndexFactory`,
  shared or column-sliced substrate) produce bit-identical GRECA runs to
  fresh per-point construction.
"""

from __future__ import annotations

import random

import pytest

from repro.core.baseline import NaiveFullScan, ThresholdAlgorithmBaseline
from repro.core.consensus import make_consensus
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory

#: One case per seed; >= 50 randomized cases as required by the harness.
SEEDS = tuple(range(56))

CONSENSUS_NAMES = ("AP", "MO", "PD", "PD V1", "PD V2")
TIME_MODELS = ("discrete", "continuous")

#: Pinned normalisation constant (aprefs are drawn from [0, 5]) so that
#: restricted indexes share the scale of fresh per-subset construction.
MAX_APREF = 5.0


def random_case(seed: int) -> dict:
    """Raw inputs of one randomized GRECA instance (deterministic per seed)."""
    rng = random.Random(987_000 + seed)
    n_members = rng.randint(2, 6)
    n_items = rng.randint(5, 60)
    n_periods = rng.randint(0, 4)
    members = rng.sample(range(1, 60), n_members)
    items = rng.sample(range(100, 500), n_items)
    aprefs = {
        member: {item: round(rng.uniform(0.0, 5.0), 3) for item in items}
        for member in members
    }
    pairs = [(left, right) for i, left in enumerate(members) for right in members[i + 1 :]]
    return dict(
        members=members,
        items=items,
        aprefs=aprefs,
        static={pair: round(rng.uniform(0.0, 1.0), 3) for pair in pairs},
        periodic={
            period: {pair: round(rng.uniform(0.0, 1.0), 3) for pair in pairs}
            for period in range(n_periods)
        },
        averages={period: round(rng.uniform(0.0, 0.5), 3) for period in range(n_periods)},
        time_model=rng.choice(TIME_MODELS),
        consensus=rng.choice(CONSENSUS_NAMES),
        k=rng.randint(1, n_items),
    )


def build_index(case: dict, max_apref: float | None = MAX_APREF) -> GrecaIndex:
    """Materialise the index of one randomized case."""
    return GrecaIndex(
        members=case["members"],
        aprefs=case["aprefs"],
        static=case["static"],
        periodic=case["periodic"],
        averages=case["averages"],
        time_model=case["time_model"],
        max_apref=max_apref,
    )


def assert_baseline_results_equal(batched, reference) -> None:
    """Batched and per-entry baseline runs must be observationally identical."""
    assert batched.items == reference.items
    assert batched.sequential_accesses == reference.sequential_accesses
    assert batched.random_accesses == reference.random_accesses
    assert batched.total_entries == reference.total_entries
    assert batched.k == reference.k
    assert set(batched.scores) == set(reference.scores)
    for item, score in batched.scores.items():
        assert score == pytest.approx(reference.scores[item], abs=1e-9)


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_naive_matches_per_entry_reference(seed):
    """NaiveFullScan: bulk drains report exactly what the per-entry loop did."""
    case = random_case(seed)
    index = build_index(case)
    consensus = make_consensus(case["consensus"])
    batched = NaiveFullScan(consensus, k=case["k"], batched=True).run(index)
    reference = NaiveFullScan(consensus, k=case["k"], batched=False).run(index)
    assert_baseline_results_equal(batched, reference)


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_ta_matches_per_entry_reference(seed):
    """TA baseline: the analytic replay equals the per-entry interpreter."""
    case = random_case(seed)
    index = build_index(case)
    consensus = make_consensus(case["consensus"])
    batched = ThresholdAlgorithmBaseline(consensus, k=case["k"], batched=True).run(index)
    reference = ThresholdAlgorithmBaseline(consensus, k=case["k"], batched=False).run(index)
    assert_baseline_results_equal(batched, reference)


@pytest.mark.parametrize("seed", SEEDS)
def test_greca_topk_matches_naive_oracle(seed):
    """GRECA's top-k exact scores equal the naive full-scan oracle's top-k."""
    case = random_case(seed)
    index = build_index(case)
    consensus = make_consensus(case["consensus"])
    k = case["k"]
    greca = Greca(consensus, k=k).run(index)
    oracle = NaiveFullScan(consensus, k=k).run(index)
    assert len(greca.items) == oracle.k == k
    greca_scores = sorted(greca.exact_scores[item] for item in greca.items)
    oracle_scores = sorted(oracle.scores.values())
    assert greca_scores == pytest.approx(oracle_scores, abs=1e-9)


@pytest.mark.parametrize("seed", SEEDS)
def test_naive_percent_sa_is_exactly_100(seed):
    """The naive scan reads every entry: %SA must be *exactly* 100.0."""
    case = random_case(seed)
    index = build_index(case)
    result = NaiveFullScan(make_consensus(case["consensus"]), k=case["k"]).run(index)
    assert result.sequential_accesses == result.total_entries == index.total_index_entries()
    assert result.random_accesses == 0
    assert result.percent_sequential_accesses == 100.0


def permuted_case(case: dict, seed: int) -> dict:
    """The same instance with shuffled member order and dict insertion orders."""
    rng = random.Random(555_000 + seed)
    members = list(case["members"])
    rng.shuffle(members)

    def shuffled(mapping: dict) -> dict:
        keys = list(mapping)
        rng.shuffle(keys)
        return {key: mapping[key] for key in keys}

    return dict(
        case,
        members=members,
        aprefs={member: shuffled(case["aprefs"][member]) for member in members},
        static=shuffled(case["static"]),
        periodic={period: shuffled(values) for period, values in case["periodic"].items()},
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_access_metrics_invariant_under_member_permutation(seed):
    """%SA (and RA counts) may not depend on member order or dict ordering.

    The round-robin advances every list in lockstep and all consensus
    aggregations are symmetric across members, so permuting the group (or
    the incidental insertion order of the input dictionaries) must leave the
    access accounting — the paper's headline metric — unchanged.
    """
    case = random_case(seed)
    twisted = permuted_case(case, seed)
    consensus = make_consensus(case["consensus"])
    k = case["k"]

    greca = Greca(consensus, k=k).run(build_index(case))
    greca_twisted = Greca(consensus, k=k).run(build_index(twisted))
    assert greca.sequential_accesses == greca_twisted.sequential_accesses
    assert greca.random_accesses == greca_twisted.random_accesses
    assert greca.total_entries == greca_twisted.total_entries
    assert greca.percent_sequential_accesses == greca_twisted.percent_sequential_accesses
    assert greca.items == greca_twisted.items

    ta = ThresholdAlgorithmBaseline(consensus, k=k).run(build_index(case))
    ta_twisted = ThresholdAlgorithmBaseline(consensus, k=k).run(build_index(twisted))
    assert ta.sequential_accesses == ta_twisted.sequential_accesses
    assert ta.random_accesses == ta_twisted.random_accesses
    assert ta.items == ta_twisted.items


def assert_greca_results_identical(left, right) -> None:
    """Two GRECA runs must agree on every observable, bit for bit."""
    assert left.items == right.items
    assert left.bounds == right.bounds
    assert left.exact_scores == right.exact_scores
    assert left.sequential_accesses == right.sequential_accesses
    assert left.random_accesses == right.random_accesses
    assert left.total_entries == right.total_entries
    assert left.rounds == right.rounds
    assert left.stopping == right.stopping
    assert left.k == right.k


@pytest.mark.parametrize("seed", SEEDS)
def test_index_factory_reuse_is_bit_identical(seed):
    """Factory-derived indexes behave exactly like fresh per-point construction."""
    case = random_case(seed)
    consensus = make_consensus(case["consensus"])
    algorithm = Greca(consensus, k=case["k"])
    factory = GrecaIndexFactory(case["members"], case["aprefs"], max_apref=MAX_APREF)

    fresh = algorithm.run(build_index(case))
    derived = algorithm.run(
        factory.build(
            case["static"],
            periodic=case["periodic"],
            averages=case["averages"],
            time_model=case["time_model"],
        )
    )
    assert_greca_results_identical(fresh, derived)

    # Column-sliced substrate: restriction to a random item subset.
    rng = random.Random(314_000 + seed)
    n_subset = max(case["k"], (len(case["items"]) + 1) // 2)
    subset = rng.sample(case["items"], min(n_subset, len(case["items"])))
    sub_case = dict(
        case,
        items=subset,
        aprefs={
            member: {item: prefs[item] for item in subset}
            for member, prefs in case["aprefs"].items()
        },
    )
    fresh_subset = algorithm.run(build_index(sub_case))
    derived_subset = algorithm.run(
        factory.build(
            case["static"],
            periodic=case["periodic"],
            averages=case["averages"],
            time_model=case["time_model"],
            items=subset,
        )
    )
    assert_greca_results_identical(fresh_subset, derived_subset)
