"""Service-level equivalence and concurrency suite (:mod:`repro.service`).

The serving layer's contract, pinned end to end:

* **bit-identical responses**: whatever N concurrent clients submit, and
  however the coalescer batches it, every response's record equals the
  serial ``task_for`` + ``run_task`` reference for that query;
* **honest fault reporting**: a FaultPlan crash mid-request recovers
  transparently and the response carries the :class:`DispatchReport` that
  says so;
* **bounded coalescing**: no dispatched batch ever exceeds the configured
  ``max_batch_size`` — and under concurrent load batching actually happens;
* **drain semantics**: ``stop()`` answers every already-accepted query and
  rejects new ones with :class:`ServiceError`.

All tests drive the service through ``asyncio.run`` so the suite has no
plugin dependencies.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ConfigurationError, ServiceError
from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment
from repro.parallel import FaultPlan, FaultSpec
from repro.service import (
    GrecaService,
    GroupQuery,
    ServiceConfig,
    default_queries,
    percentile,
    run_load,
    summarise_latencies,
)


@pytest.fixture(scope="module")
def environment():
    env = ScalabilityEnvironment(
        ScalabilityConfig(
            n_users=40,
            n_items=300,
            n_ratings=3_000,
            n_participants=12,
            n_groups=2,
            group_size=3,
        )
    )
    yield env
    env.close()


def serve(environment, coroutine_factory, config=None, fault_plan=None):
    """Run one service session: start, hand the service to the coroutine, stop."""

    async def session():
        service = GrecaService(
            environment=environment, config=config, fault_plan=fault_plan
        )
        async with service:
            return await coroutine_factory(service)

    return asyncio.run(session())


@pytest.mark.parametrize("executor", ["supervised", "persistent", None])
def test_concurrent_clients_get_bit_identical_responses(environment, executor):
    """N concurrent clients, every response equal to the serial reference."""
    config = ServiceConfig(n_workers=2, executor=executor, max_batch_delay=0.01)

    async def load(service):
        clients = default_queries(environment, n_clients=4, n_queries=3, seed=23)
        responses, wall_seconds = await run_load(service, clients)
        return service, responses, wall_seconds

    service, responses, wall_seconds = serve(environment, load, config=config)
    assert len(responses) == 12
    for response in responses:
        assert response.record == service.reference_record(response.query)
        assert response.latency.total_seconds >= response.latency.dispatch_seconds
        assert response.latency.batch_size >= 1
    summary = summarise_latencies(
        [response.latency for response in responses], wall_seconds, n_clients=4
    )
    assert summary.n_queries == 12
    assert summary.p50_ms <= summary.p95_ms <= summary.p99_ms
    assert summary.max_batch == max(service.batch_sizes)


def test_crash_mid_request_recovers_with_honest_report(environment):
    """A planned worker crash is absorbed; the response's report admits it."""
    crash = FaultPlan((FaultSpec(shard=0, position=0, mode="crash", fires=1),))
    config = ServiceConfig(n_workers=2, executor="supervised")

    async def load(service):
        queries = [
            GroupQuery(group=tuple(group), k=k)
            for group in environment.random_groups()
            for k in (3, 5)
        ]
        responses = await asyncio.gather(
            *(service.submit(query) for query in queries)
        )
        return service, responses

    service, responses = serve(environment, load, config=config, fault_plan=crash)
    for response in responses:
        assert response.record == service.reference_record(response.query)
        assert response.report is not None
        assert response.report.ok  # recovered, and says exactly how
    assert any(
        response.report.rebuilds >= 1 and response.report.retries >= 1
        for response in responses
    )


def test_coalescing_respects_the_configured_batch_cap(environment):
    """Concurrent submissions coalesce, but never past max_batch_size."""
    config = ServiceConfig(
        n_workers=2, executor="persistent", max_batch_size=3, max_batch_delay=0.2
    )

    async def load(service):
        queries = [
            GroupQuery(group=tuple(environment.random_groups(1)[0]), k=k)
            for k in range(2, 12)
        ]
        responses = await asyncio.gather(
            *(service.submit(query) for query in queries)
        )
        return service, responses

    service, responses = serve(environment, load, config=config)
    assert len(responses) == 10
    assert service.batch_sizes, "no batches were dispatched"
    assert max(service.batch_sizes) <= 3
    assert max(service.batch_sizes) > 1, "concurrent load never coalesced"
    assert sum(service.batch_sizes) == 10
    for response in responses:
        assert response.record == service.reference_record(response.query)


def test_stop_drains_accepted_queries_and_rejects_new_ones(environment):
    config = ServiceConfig(n_workers=2, executor="persistent", max_batch_delay=0.05)

    async def session():
        service = GrecaService(environment=environment, config=config)
        await service.start()
        group = tuple(environment.random_groups(1)[0])
        pending = [
            asyncio.create_task(service.submit(GroupQuery(group=group, k=k)))
            for k in (3, 4, 5)
        ]
        await asyncio.sleep(0)  # let the submissions enqueue
        await service.stop()  # drain: the three accepted queries still answer
        responses = await asyncio.gather(*pending)
        with pytest.raises(ServiceError):
            await service.submit(GroupQuery(group=group))
        return service, responses

    service, responses = asyncio.run(session())
    assert len(responses) == 3
    for response in responses:
        assert response.record == service.reference_record(response.query)


def test_service_config_rejects_bad_knobs():
    with pytest.raises(ValueError):
        ServiceConfig(executor="no-such-backend")
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_batch_delay=-0.1)
    with pytest.raises(ConfigurationError):
        GroupQuery(group=())


def test_query_period_index_is_validated(environment):
    config = ServiceConfig(executor=None)

    async def bad_period(service):
        query = GroupQuery(
            group=tuple(environment.random_groups(1)[0]), period_index=99
        )
        with pytest.raises(ConfigurationError):
            await service.submit(query)
        return True

    assert serve(environment, bad_period, config=config)


def test_percentile_interpolates():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    with pytest.raises(ConfigurationError):
        percentile([], 50)
