"""High-level group recommendation facade.

:class:`GroupRecommender` wires the substrates together — ratings dataset,
collaborative-filtering predictor, social network, timeline and affinity
models — and exposes a single :meth:`~GroupRecommender.recommend` call that
answers the paper's problem statement (Section 2.4): given an ad-hoc group
``G``, a consensus function ``F``, a period ``p`` and an integer ``k``,
return the best ``k`` itemset for the group, accounting for temporal
affinities.

Typical usage::

    recommender = GroupRecommender(ratings, social, timeline).fit()
    result = recommender.recommend(group=[12, 57, 101], k=10,
                                   consensus="PD", affinity="discrete")
    print(result.items, result.saveup)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cf.predictors import RatingPredictor, UserBasedCF
from repro.core.affinity import (
    AffinityModel,
    ComputedAffinities,
    ContinuousAffinityModel,
    DiscreteAffinityModel,
    NoAffinityModel,
    TimeAgnosticAffinityModel,
)
from repro.core.baseline import NaiveFullScan, ThresholdAlgorithmBaseline
from repro.core.consensus import ConsensusFunction, make_consensus
from repro.core.greca import (
    Greca,
    GrecaIndex,
    GrecaIndexFactory,
    TIME_MODEL_CONTINUOUS,
    TIME_MODEL_DISCRETE,
)
from repro.core.preference import PreferenceModel
from repro.core.timeline import Period, Timeline
from repro.data.ratings import MAX_RATING, RatingsDataset
from repro.data.social import SocialNetwork
from repro.exceptions import AlgorithmError, ConfigurationError, GroupError

#: Affinity configuration names accepted by :meth:`GroupRecommender.recommend`.
AFFINITY_DISCRETE = "discrete"
AFFINITY_CONTINUOUS = "continuous"
AFFINITY_TIME_AGNOSTIC = "time-agnostic"
AFFINITY_NONE = "none"
AFFINITY_CHOICES = (
    AFFINITY_DISCRETE,
    AFFINITY_CONTINUOUS,
    AFFINITY_TIME_AGNOSTIC,
    AFFINITY_NONE,
)

#: Algorithm names accepted by :meth:`GroupRecommender.recommend`.
ALGORITHM_GRECA = "greca"
ALGORITHM_NAIVE = "naive"
ALGORITHM_TA = "ta"


@dataclass(frozen=True)
class GroupRecommendation:
    """A ranked itemset recommended to a group, with provenance metadata."""

    group: tuple[int, ...]
    items: tuple[int, ...]
    scores: Mapping[int, float]
    consensus: str
    affinity: str
    algorithm: str
    k: int
    sequential_accesses: int = 0
    random_accesses: int = 0
    total_entries: int = 0
    stopping: str = ""

    @property
    def percent_sequential_accesses(self) -> float:
        """Percentage of list entries read sequentially (``%SA``)."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries

    @property
    def saveup(self) -> float:
        """Percentage of accesses avoided compared to a full scan."""
        return 100.0 - self.percent_sequential_accesses

    def ranked(self) -> list[tuple[int, float]]:
        """``(item, score)`` pairs in recommendation order."""
        return [(item, self.scores.get(item, 0.0)) for item in self.items]


class GroupRecommender:
    """Compute temporal-affinity-aware recommendations for ad-hoc groups.

    Parameters
    ----------
    ratings:
        Collaborative rating dataset feeding the ``apref`` predictor.
    social:
        Social network providing friendships and page likes.  Optional: when
        absent only the ``"none"`` affinity configuration is available.
    timeline:
        Period discretisation of the observation history; required for the
        temporal affinity configurations.
    predictor:
        Single-user recommender producing ``apref``; defaults to user-based
        collaborative filtering with cosine similarity (the paper's choice).
    affinity_universe:
        Users over which population averages are computed; defaults to every
        user of the social network.
    """

    def __init__(
        self,
        ratings: RatingsDataset,
        social: SocialNetwork | None = None,
        timeline: Timeline | None = None,
        predictor: RatingPredictor | None = None,
        affinity_universe: Sequence[int] | None = None,
    ) -> None:
        self.ratings = ratings
        self.social = social
        self.timeline = timeline
        self.predictor = predictor if predictor is not None else UserBasedCF()
        self.affinity_universe = tuple(affinity_universe) if affinity_universe else None
        self._computed: ComputedAffinities | None = None
        self._apref_cache: dict[int, dict[int, float]] = {}

    # -- fitting --------------------------------------------------------------------------

    def fit(self) -> "GroupRecommender":
        """Fit the ``apref`` predictor and pre-compute social affinities."""
        if not self.predictor.is_fitted:
            self.predictor.fit(self.ratings)
        if self.social is not None and self.timeline is not None:
            universe = self.affinity_universe or self.social.users
            self._computed = ComputedAffinities(self.social, self.timeline, universe)
        return self

    @property
    def is_fitted(self) -> bool:
        """``True`` once :meth:`fit` has been called."""
        return self.predictor.is_fitted

    @property
    def computed_affinities(self) -> ComputedAffinities:
        """The pre-computed affinity components (requires social + timeline)."""
        if self._computed is None:
            raise ConfigurationError(
                "no affinity data available: provide a social network and a timeline, "
                "then call fit()"
            )
        return self._computed

    # -- affinity models --------------------------------------------------------------------

    def affinity_model(self, affinity: str = AFFINITY_DISCRETE) -> AffinityModel:
        """Build the affinity model named by ``affinity`` (see AFFINITY_CHOICES)."""
        if affinity == AFFINITY_NONE:
            return NoAffinityModel()
        computed = self.computed_affinities
        if affinity == AFFINITY_DISCRETE:
            return DiscreteAffinityModel(computed)
        if affinity == AFFINITY_CONTINUOUS:
            return ContinuousAffinityModel(computed)
        if affinity == AFFINITY_TIME_AGNOSTIC:
            return TimeAgnosticAffinityModel(computed)
        raise ConfigurationError(
            f"unknown affinity configuration {affinity!r}; expected one of {AFFINITY_CHOICES}"
        )

    def preference_model(self, affinity: str = AFFINITY_DISCRETE) -> PreferenceModel:
        """A :class:`PreferenceModel` bound to this recommender's ``apref`` source."""
        self._require_fitted()
        return PreferenceModel(self.predictor, self.affinity_model(affinity))

    # -- apref access -------------------------------------------------------------------------

    def aprefs_of(self, user_id: int) -> dict[int, float]:
        """Cached absolute preferences of one user over all items."""
        self._require_fitted()
        if user_id not in self._apref_cache:
            self._apref_cache[user_id] = self.predictor.predict_all(user_id)
        return self._apref_cache[user_id]

    # -- incremental refresh ------------------------------------------------------

    def refresh_aprefs(self, touched_users: Sequence[int]) -> set[int]:
        """Patch the apref cache after an in-place predictor refresh.

        Call after the predictor's matrix has been updated and
        :meth:`~repro.cf.predictors.RatingPredictor.partial_refit` has run.
        Touched users — and cached users the predictor cannot patch
        item-wise — are fully recomputed; every other cached user is patched
        only on the predictor's stale items, which is bit-identical to the
        full recomputation by the shared per-item code path.  Returns the
        ids of cached users whose apref values actually changed, so callers
        can invalidate only the groups containing one of them.
        """
        self._require_fitted()
        if not self._apref_cache:
            return set()
        touched = set(touched_users)
        stale_items = self.predictor.stale_prediction_items(touched)
        patchable = self.predictor.patchable_users(set(self._apref_cache) - touched)
        changed: set[int] = set()
        for user in list(self._apref_cache):
            cached = self._apref_cache[user]
            if user in touched or user not in patchable:
                fresh = self.predictor.predict_all(user)
            else:
                fresh = dict(cached)
                fresh.update(self.predictor.predict_for_items(user, stale_items))
            if fresh != cached:
                changed.add(user)
                self._apref_cache[user] = fresh
        return changed

    def invalidate_aprefs(self) -> set[int]:
        """Drop every cached apref vector; returns the users that were cached.

        The full-rebuild companion of :meth:`refresh_aprefs`: after a
        predictor re-fit every cached vector is suspect, so callers treat
        the returned set as "changed".
        """
        dropped = set(self._apref_cache)
        self._apref_cache.clear()
        return dropped

    def refresh_affinities(
        self,
        social: SocialNetwork,
        timeline: Timeline,
        touched_users: Sequence[int] = (),
    ) -> None:
        """Adopt an extended social network / timeline without a full re-fit.

        ``social`` must extend the current network by page likes only (same
        users, same friendships) and ``timeline`` must keep existing periods
        unchanged; the pre-computed affinities are then extended in place of
        a full rescan (see :meth:`ComputedAffinities.extended`), which is
        bit-identical to re-fitting on the merged history.
        """
        self.social = social
        self.timeline = timeline
        if self._computed is not None:
            self._computed = self._computed.extended(social, timeline, touched_users)
        elif self.social is not None and self.timeline is not None:
            universe = self.affinity_universe or self.social.users
            self._computed = ComputedAffinities(self.social, self.timeline, universe)

    # -- index construction ----------------------------------------------------------------------

    def affinity_components(
        self,
        group: Sequence[int],
        period: Period | None = None,
        affinity: str = AFFINITY_DISCRETE,
    ) -> tuple[
        dict[tuple[int, int], float],
        dict[int, dict[tuple[int, int], float]],
        dict[int, float],
        str,
    ]:
        """The ``(static, periodic, averages, time_model)`` inputs of a GRECA index.

        These are the per-(group, period) affinity dictionaries — cheap to
        rebuild at every sweep point, unlike the preference substrate that
        :meth:`index_factory` shares across points.
        """
        if affinity not in AFFINITY_CHOICES:
            raise ConfigurationError(
                f"unknown affinity configuration {affinity!r}; expected one of {AFFINITY_CHOICES}"
            )
        group = list(group)
        if affinity == AFFINITY_NONE:
            return {}, {}, {}, TIME_MODEL_DISCRETE

        computed = self.computed_affinities
        if period is None:
            if self.timeline is None:
                raise ConfigurationError("a timeline is required for temporal affinities")
            period = self.timeline.current
        static: dict[tuple[int, int], float] = {}
        for index, left in enumerate(group):
            for right in group[index + 1 :]:
                static[(left, right)] = computed.static_normalized(left, right)
        periodic: dict[int, dict[tuple[int, int], float]] = {}
        averages: dict[int, float] = {}
        if affinity in (AFFINITY_DISCRETE, AFFINITY_CONTINUOUS):
            for period_index, past in enumerate(computed.timeline.periods_until(period)):
                values = {}
                for index, left in enumerate(group):
                    for right in group[index + 1 :]:
                        values[(left, right)] = computed.periodic_normalized(left, right, past)
                periodic[period_index] = values
                averages[period_index] = computed.population_average_normalized(past)
            time_model = (
                TIME_MODEL_CONTINUOUS
                if affinity == AFFINITY_CONTINUOUS
                else TIME_MODEL_DISCRETE
            )
        else:  # time-agnostic: half static + half overall likes, no drift
            model = TimeAgnosticAffinityModel(computed)
            static = {}
            for index, left in enumerate(group):
                for right in group[index + 1 :]:
                    static[(left, right)] = model.affinity(left, right)
            time_model = TIME_MODEL_DISCRETE
        return static, periodic, averages, time_model

    def index_factory(
        self,
        group: Sequence[int],
        exclude_rated: bool = True,
        items: Sequence[int] | None = None,
    ) -> GrecaIndexFactory:
        """A :class:`GrecaIndexFactory` for one group's candidate universe.

        The factory pays the apref-dictionary-to-matrix conversion once;
        combining it with :meth:`affinity_components` yields per-period /
        per-item-subset indexes without per-point substrate construction.
        The normalisation constant is pinned to the rating-scale maximum, so
        factory-derived indexes are bit-identical to :meth:`build_index`.
        """
        self._require_fitted()
        group = list(group)
        if len(group) < 2:
            raise GroupError("group recommendation requires at least two members")

        candidates = list(items) if items is not None else list(self.ratings.items)
        if exclude_rated:
            rated: set[int] = set()
            for member in group:
                if self.ratings.has_user(member):
                    rated.update(self.ratings.user_ratings(member))
            candidates = [item for item in candidates if item not in rated]
        if not candidates:
            raise AlgorithmError("no candidate items remain after exclusions")

        aprefs: dict[int, dict[int, float]] = {}
        for member in group:
            predictions = self.aprefs_of(member)
            aprefs[member] = {item: predictions.get(item, 0.0) for item in candidates}
        return GrecaIndexFactory(members=group, aprefs=aprefs, max_apref=MAX_RATING)

    def build_index(
        self,
        group: Sequence[int],
        period: Period | None = None,
        affinity: str = AFFINITY_DISCRETE,
        exclude_rated: bool = True,
        items: Sequence[int] | None = None,
    ) -> GrecaIndex:
        """Build the GRECA index (lists) for a group at a period.

        One-shot composition of :meth:`index_factory` and
        :meth:`affinity_components`; hold the factory instead when building
        many indexes for the same group (sweeps over periods, item subsets,
        ``k`` or consensus functions).

        Parameters
        ----------
        group:
            Ad-hoc group members.
        period:
            Query period; defaults to the most recent period of the timeline.
        affinity:
            Affinity configuration (discrete / continuous / time-agnostic / none).
        exclude_rated:
            Drop items already rated by any group member (the problem
            definition excludes items already consumed individually).
        items:
            Optional explicit candidate item universe.
        """
        static, periodic, averages, time_model = self.affinity_components(
            group, period=period, affinity=affinity
        )
        factory = self.index_factory(group, exclude_rated=exclude_rated, items=items)
        return factory.build(
            static, periodic=periodic, averages=averages, time_model=time_model
        )

    # -- recommendation ------------------------------------------------------------------------------

    def recommend(
        self,
        group: Sequence[int],
        k: int = 10,
        period: Period | None = None,
        consensus: str | ConsensusFunction = "AP",
        affinity: str = AFFINITY_DISCRETE,
        algorithm: str = ALGORITHM_GRECA,
        exclude_rated: bool = True,
        items: Sequence[int] | None = None,
    ) -> GroupRecommendation:
        """Recommend the best ``k`` itemset to ``group`` during ``period``.

        Parameters
        ----------
        group, k, period:
            The problem inputs of Section 2.4.
        consensus:
            Consensus function name (``"AP"``, ``"MO"``, ``"PD"``, ``"PD V1"``,
            ``"PD V2"``) or an explicit :class:`ConsensusFunction`.
        affinity:
            Affinity configuration (discrete / continuous / time-agnostic / none).
        algorithm:
            ``"greca"`` (default), ``"naive"`` or ``"ta"``.
        exclude_rated:
            Exclude items already rated by a group member.
        items:
            Optional explicit candidate item universe.
        """
        if algorithm not in (ALGORITHM_GRECA, ALGORITHM_NAIVE, ALGORITHM_TA):
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; expected 'greca', 'naive' or 'ta'"
            )
        consensus_fn = consensus if isinstance(consensus, ConsensusFunction) else make_consensus(consensus)
        index = self.build_index(
            group, period=period, affinity=affinity, exclude_rated=exclude_rated, items=items
        )

        if algorithm == ALGORITHM_GRECA:
            result = Greca(consensus_fn, k=k).run(index)
            return GroupRecommendation(
                group=tuple(group),
                items=result.items,
                scores=dict(result.exact_scores),
                consensus=consensus_fn.name,
                affinity=affinity,
                algorithm=algorithm,
                k=result.k,
                sequential_accesses=result.sequential_accesses,
                random_accesses=result.random_accesses,
                total_entries=result.total_entries,
                stopping=result.stopping,
            )
        if algorithm == ALGORITHM_NAIVE:
            naive = NaiveFullScan(consensus_fn, k=k).run(index)
            return GroupRecommendation(
                group=tuple(group),
                items=naive.items,
                scores=dict(naive.scores),
                consensus=consensus_fn.name,
                affinity=affinity,
                algorithm=algorithm,
                k=naive.k,
                sequential_accesses=naive.sequential_accesses,
                random_accesses=naive.random_accesses,
                total_entries=naive.total_entries,
                stopping="exhausted",
            )
        if algorithm == ALGORITHM_TA:
            ta = ThresholdAlgorithmBaseline(consensus_fn, k=k).run(index)
            return GroupRecommendation(
                group=tuple(group),
                items=ta.items,
                scores=dict(ta.scores),
                consensus=consensus_fn.name,
                affinity=affinity,
                algorithm=algorithm,
                k=ta.k,
                sequential_accesses=ta.sequential_accesses,
                random_accesses=ta.random_accesses,
                total_entries=ta.total_entries,
                stopping="threshold",
            )
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected 'greca', 'naive' or 'ta'"
        )

    # -- internals ---------------------------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self.predictor.is_fitted:
            raise ConfigurationError("the recommender is not fitted; call fit() first")
