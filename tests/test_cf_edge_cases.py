"""Edge cases of the CF substrate: cold starts, singleton items, empty overlap.

`repro.cf.predictors` and `repro.cf.similarity` carry a lattice of fallback
paths — no raters, no co-rated items, zero-norm vectors, zero similarity
mass — that the main CF tests only exercise incidentally.  This module pins
each path down with hand-built datasets where the expected value is
computable by inspection:

* **cold-start user** — a user whose ratings overlap with nobody: every
  similarity metric must report 0 against every peer, and predictions must
  fall back to the user's own mean (never crash, never leave the 1-5 scale);
* **single-rating item** — an item rated by exactly one user: the
  neighbourhood contains at most that rater, and when the rater is
  dissimilar the prediction degrades to the baseline;
* **empty overlap** — disjoint rating profiles: cosine/pearson/jaccard all
  return exactly 0 (pearson also for the <2 co-rated case), and predictors
  treat such neighbours as absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cf.matrix import RatingMatrix
from repro.cf.predictors import ItemBasedCF, MeanPredictor, UserBasedCF
from repro.cf.similarity import (
    cosine_similarity_matrix,
    jaccard_similarity_matrix,
    pairwise_user_similarity,
    pearson_similarity_matrix,
)
from repro.data.ratings import MAX_RATING, MIN_RATING, dataset_from_tuples

#: Two overlapping mainstream users (1, 2), one cold-start user (3) whose
#: single rating touches an item nobody else rated, and a singleton item 30.
DISJOINT_ROWS = [
    (1, 10, 5.0),
    (1, 11, 3.0),
    (2, 10, 4.0),
    (2, 11, 2.0),
    (2, 20, 1.0),
    (3, 30, 2.0),  # cold-start: item 30 is user 3's private island
]


@pytest.fixture()
def disjoint_dataset():
    return dataset_from_tuples(DISJOINT_ROWS, name="disjoint")


# -- similarity ---------------------------------------------------------------------------------


def test_empty_overlap_is_zero_for_every_metric(disjoint_dataset):
    """User 3 shares no rated item with anyone: similarity must be exactly 0."""
    matrix = RatingMatrix(disjoint_dataset)
    for metric in ("cosine", "pearson", "jaccard"):
        assert pairwise_user_similarity(matrix, 1, 3, metric=metric) == 0.0
        assert pairwise_user_similarity(matrix, 2, 3, metric=metric) == 0.0
        # The overlapping pair stays strictly positive for contrast.
        assert pairwise_user_similarity(matrix, 1, 2, metric=metric) > 0.0


def test_pearson_needs_two_corated_items():
    """A single co-rated item cannot anchor a correlation: pearson says 0."""
    vectors = np.array(
        [
            [4.0, 0.0, 2.0],
            [3.0, 5.0, 0.0],  # exactly one co-rated column with each peer
            [0.0, 1.0, 0.0],
        ]
    )
    sims = pearson_similarity_matrix(vectors)
    assert sims[0, 1] == 0.0
    assert sims[1, 2] == 0.0
    np.testing.assert_allclose(sims, sims.T)


def test_zero_norm_rows_zero_everywhere_including_diagonal():
    """All-zero rating vectors (no ratings at all) never claim similarity 1."""
    vectors = np.array([[0.0, 0.0], [1.0, 2.0]])
    sims = cosine_similarity_matrix(vectors)
    assert sims[0, 0] == 0.0
    assert sims[0, 1] == 0.0 and sims[1, 0] == 0.0
    assert sims[1, 1] == pytest.approx(1.0)


def test_jaccard_extremes():
    """Jaccard: 0 on disjoint sets, 1 on identical sets, 0 for empty rows."""
    vectors = np.array(
        [
            [5.0, 3.0, 0.0],
            [1.0, 2.0, 0.0],  # same *set* as row 0, different values
            [0.0, 0.0, 4.0],  # disjoint from rows 0-1
            [0.0, 0.0, 0.0],  # nothing rated
        ]
    )
    sims = jaccard_similarity_matrix(vectors)
    assert sims[0, 1] == pytest.approx(1.0)
    assert sims[0, 2] == 0.0
    assert sims[3, 0] == 0.0 and sims[3, 3] == 0.0


# -- user-based CF ------------------------------------------------------------------------------


def test_user_based_cold_start_falls_back_to_own_mean(disjoint_dataset):
    """No similar rater anywhere: predict the cold-start user's own mean."""
    predictor = UserBasedCF().fit(disjoint_dataset)
    # Item 20 was rated only by user 2, whose similarity to user 3 is 0.
    assert predictor.predict(3, 20) == pytest.approx(2.0)
    # Symmetrically, nobody can lean on user 3's island item.
    assert predictor.predict(1, 30) == pytest.approx(4.0)  # user 1's mean


def test_user_based_single_rater_item(disjoint_dataset):
    """An item with one rater: that rater is the entire neighbourhood."""
    predictor = UserBasedCF().fit(disjoint_dataset)
    # Item 20's only rater is user 2 (mean 7/3); user 1 is similar to user 2,
    # so the prediction is user 1's mean shifted by user 2's centred rating.
    matrix = predictor.matrix
    expected = 4.0 + (1.0 - 7.0 / 3.0)  # baseline + (rating - rater mean)
    assert predictor.predict(1, 20) == pytest.approx(expected)
    assert MIN_RATING <= predictor.predict(1, 20) <= MAX_RATING
    assert matrix.rating(1, 20) == 0.0  # genuinely unobserved


def test_user_based_observed_ratings_pass_through(disjoint_dataset):
    """Already-rated cells return the observed rating, not a prediction."""
    predictor = UserBasedCF().fit(disjoint_dataset)
    assert predictor.predict(3, 30) == 2.0
    assert predictor.predict_all(3)[30] == 2.0


def test_user_based_predict_all_matches_predict_on_edges(disjoint_dataset):
    """The vectorised path agrees with per-item prediction on every edge case."""
    predictor = UserBasedCF().fit(disjoint_dataset)
    for user in disjoint_dataset.users:
        dense = predictor.predict_all(user)
        for item in disjoint_dataset.items:
            assert dense[item] == pytest.approx(predictor.predict(user, item))


def test_user_based_min_similarity_can_empty_the_neighbourhood(disjoint_dataset):
    """A high similarity floor removes every neighbour → baseline fallback."""
    predictor = UserBasedCF(min_similarity=0.999).fit(disjoint_dataset)
    assert predictor.predict(1, 20) == pytest.approx(4.0)  # user 1's own mean


# -- item-based CF ------------------------------------------------------------------------------


def test_item_based_cold_start_user_falls_back_to_item_mean(disjoint_dataset):
    """User 3's only rated item has no similarity to item 10 → item mean."""
    predictor = ItemBasedCF().fit(disjoint_dataset)
    assert predictor.predict(3, 10) == pytest.approx(4.5)  # mean(5, 4)


def test_item_based_single_rating_item_prediction(disjoint_dataset):
    """Predicting the singleton item 30 for a disjoint user → its own mean."""
    predictor = ItemBasedCF().fit(disjoint_dataset)
    # Item 30 shares no rater with items 10/11/20, so user 1's profile
    # contributes nothing and the item mean (2.0, its single rating) wins.
    assert predictor.predict(1, 30) == pytest.approx(2.0)


# -- mean predictor -----------------------------------------------------------------------------


def test_mean_predictor_fallback_chain(disjoint_dataset):
    """Item mean first, then (for unrated items) the chain stays in range."""
    predictor = MeanPredictor().fit(disjoint_dataset)
    assert predictor.predict(3, 20) == pytest.approx(1.0)  # item 20's mean
    assert predictor.predict(1, 30) == pytest.approx(2.0)  # singleton item mean
    for user in disjoint_dataset.users:
        for item in disjoint_dataset.items:
            assert MIN_RATING <= predictor.predict(user, item) <= MAX_RATING
