"""Scalability study: GRECA vs the naive full scan and a TA-style baseline.

Reproduces the flavour of the paper's Section 4.2 on a laptop-scale
substrate: for a handful of random groups it runs GRECA, the naive full scan
and the TA-style baseline under several consensus functions and reports the
access accounting (the paper's %SA metric), verifying that all three agree on
the recommended itemset.

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core import Greca, NaiveFullScan, ThresholdAlgorithmBaseline, make_consensus
from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment


def main() -> None:
    environment = ScalabilityEnvironment(
        ScalabilityConfig(n_users=120, n_items=1_500, n_ratings=35_000, n_participants=36, n_groups=4)
    )
    print(f"substrate: {len(environment.ratings.items)} candidate items, "
          f"{len(environment.participants)} participants, "
          f"{len(environment.timeline)} two-month periods")

    groups = environment.random_groups(4, 6)
    for consensus_name in ("AP", "MO", "PD V1"):
        consensus = make_consensus(consensus_name)
        print(f"\n=== consensus {consensus_name} ===")
        for group in groups:
            index = environment.recommender.build_index(group, affinity="discrete", exclude_rated=False)
            greca = Greca(consensus, k=10).run(index)
            naive = NaiveFullScan(consensus, k=10).run(index)
            ta = ThresholdAlgorithmBaseline(consensus, k=10).run(index)

            greca_scores = sorted(index.exact_scores(consensus)[item] for item in greca.items)
            naive_scores = sorted(naive.scores.values())
            agree = all(abs(a - b) < 1e-9 for a, b in zip(greca_scores, naive_scores))

            print(f"group {group}")
            print(f"  naive : {naive.sequential_accesses:>7} sequential accesses (100.0% of the index)")
            print(f"  TA    : {ta.sequential_accesses:>7} SAs + {ta.random_accesses} RAs "
                  f"({ta.percent_total_accesses:.1f}% of the index, counting both)")
            print(f"  GRECA : {greca.sequential_accesses:>7} SAs "
                  f"({greca.percent_sequential_accesses:.1f}% of the index, "
                  f"saveup {greca.saveup:.1f}%, stopped by {greca.stopping})")
            print(f"  top-k agrees with the naive oracle: {agree}")


if __name__ == "__main__":
    main()
