"""Shard executors: where (and how) shard payloads actually run.

Three concrete executors share one tiny interface — a list of
:class:`~repro.parallel.worker.ShardPayload` values in, one record tuple per
shard out, *in shard order*:

* :class:`SerialShardExecutor` runs every shard in-process.  It exercises the
  full shard/merge machinery without any pickling or process management,
  which makes it the deterministic harness the shard-plan-invariance tests
  drive (and a useful debugging backend: drop-in, single-threaded,
  breakpoint-friendly).
* :class:`ProcessShardExecutor` fans shards out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Payloads are pickled to
  the workers (large factory arrays travel as shared-memory descriptors
  under the default ``shm`` shipment, see :mod:`repro.parallel.shm`);
  records are pickled back.  Results are collected in submission order, so
  shard order — and therefore the merged task order — never depends on
  worker scheduling.  The pool is created per invocation, so no worker
  processes linger between figure runs.
* :class:`PersistentShardExecutor` (``executor="persistent"``) keeps one
  warm ``ProcessPoolExecutor`` alive across calls.  A
  :class:`~repro.experiments.scalability.ScalabilityEnvironment` holds one
  instance per worker count, so the figure 4–8 drivers pay worker spawn —
  and, combined with shm shipment plus the worker-side factory cache, the
  substrate shipment — once per environment instead of once per driver.
  ``shutdown()`` (or the context manager, or
  ``ScalabilityEnvironment.close``) releases the workers; a pool broken by
  a dead worker is discarded so the next call starts a fresh one.

``executor=`` strings are validated in exactly one place:
:func:`validate_executor_name`, which raises :class:`ValueError` listing the
valid backends.  That list is *derived* from the executor registry
(:func:`register_executor` / :func:`executor_names`) rather than maintained
by hand, so backends contributed by other modules — the ``supervised``
fault-tolerant wrapper of :mod:`repro.parallel.resilience` registers itself
on import — appear in the error text automatically and can never drift out
of it.  Both :func:`resolve_executor` (the library path) and the runner's
``--executor`` flag go through it, so an unknown name fails at the choice
point instead of deep inside ``evaluate_tasks``.

The same registry pattern is mirrored by two sibling choice points:
``storage=`` strings validate through
:func:`repro.parallel.storage.validate_storage_name` (``"shm"`` /
``"mmap"`` column-store backends), and the whole knob bundle — workers,
executor, shipment, supervision, columnar, storage — resolves through
:func:`repro.parallel.policy.resolve_policy` into one frozen
:class:`~repro.parallel.policy.ExecutionPolicy`.

The context-managed shared-memory registry that guarantees segment unlink on
exit/failure lives in :mod:`repro.parallel.shm` and is re-exported here as
:class:`SharedArrayRegistry` — the executors and the registry are the two
halves of the persistent zero-copy setup.
"""

from __future__ import annotations

import abc
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import ConfigurationError
from repro.parallel.shm import SharedArrayRegistry  # noqa: F401  (re-export)
from repro.parallel.worker import GroupRunRecord, ShardPayload, run_shard

#: Executor spellings accepted by the ``executor=`` knobs.
EXECUTOR_SERIAL = "serial"
EXECUTOR_PROCESS = "process"
EXECUTOR_PERSISTENT = "persistent"


@dataclass(frozen=True)
class _ExecutorEntry:
    """One registered backend: how to build it and whether it fans out."""

    builder: Callable[[int | None], "ShardExecutor"]
    needs_workers: bool


#: The single registry behind ``executor=`` strings.  Registration order is
#: presentation order in the :class:`ValueError` text, so the built-in
#: backends register at the bottom of this module and extensions append.
_EXECUTOR_BUILDERS: "dict[str, _ExecutorEntry]" = {}


def register_executor(
    name: str,
    builder: Callable[[int | None], "ShardExecutor"],
    *,
    needs_workers: bool,
) -> None:
    """Register an ``executor=`` spelling with the single validation choice point.

    ``builder`` receives the caller's ``n_workers`` (``None`` allowed only
    when ``needs_workers`` is false) and returns a fresh executor instance.
    Registering is what puts a backend into :func:`executor_names` — and
    therefore into the :class:`ValueError` message — so new modes cannot
    drift out of the error text.
    """
    _EXECUTOR_BUILDERS[name] = _ExecutorEntry(builder=builder, needs_workers=needs_workers)


def executor_names() -> tuple[str, ...]:
    """Every registered ``executor=`` spelling, in registration order."""
    return tuple(_EXECUTOR_BUILDERS)


def __getattr__(name: str):  # pragma: no cover - thin compatibility shim
    # ``VALID_EXECUTORS`` predates the registry; keep the import working but
    # always reflect the *current* registrations (resilience.py registers
    # "supervised" when it is imported).
    if name == "VALID_EXECUTORS":
        return executor_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def available_cpus() -> int:
    """The number of CPUs this process may actually use.

    Affinity-mask aware where the platform exposes it (containers and CI
    runners often grant fewer cores than ``os.cpu_count`` reports), falling
    back to the raw count.  Every speedup record in ``BENCH_engine.json``
    stores this single source of truth, so the paper-scale and shipment
    benches can never disagree about the host they measured on.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def validate_executor_name(name: str) -> str:
    """The single choice point for ``executor=`` strings.

    Raises :class:`ValueError` naming the valid backends — derived from the
    executor registry, never hand-maintained; both :func:`resolve_executor`
    and ``runner.py --executor`` route through here, so an unknown spelling
    never reaches ``evaluate_tasks``.
    """
    if name not in _EXECUTOR_BUILDERS:
        raise ValueError(
            f"unknown executor {name!r}: valid backends are "
            + ", ".join(repr(valid) for valid in executor_names())
        )
    return name


class ShardExecutor(abc.ABC):
    """Runs shard payloads and returns their records in shard order."""

    #: Whether payloads cross a process boundary (and therefore whether the
    #: shared-memory shipment path pays off).  ``evaluate_tasks`` defaults
    #: to shm shipment exactly when this is ``True``.
    ships_payloads = False

    @abc.abstractmethod
    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        """Evaluate every payload; element ``s`` holds shard ``s``'s records."""


class SerialShardExecutor(ShardExecutor):
    """In-process executor: the sharded pipeline without processes."""

    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        return [run_shard(payload) for payload in payloads]


class ProcessShardExecutor(ShardExecutor):
    """``concurrent.futures`` process-pool executor, one worker per shard slot.

    Parameters
    ----------
    n_workers:
        Worker process count.  Callers usually plan exactly ``n_workers``
        shards, so every worker receives one payload; plans with more shards
        than workers queue excess shards and drain them as workers free up.
    """

    ships_payloads = True

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        self.n_workers = n_workers

    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        if not payloads:
            return []
        max_workers = min(self.n_workers, len(payloads))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(run_shard, payload) for payload in payloads]
            return [future.result() for future in futures]


class PersistentShardExecutor(ShardExecutor):
    """A warm process pool reused across dispatches (``executor="persistent"``).

    The pool is created lazily on the first :meth:`run` and survives until
    :meth:`shutdown` (or context exit), so successive figure-driver calls
    inside one environment pay worker spawn once.  Combined with shm
    shipment and the worker-side factory cache this is what amortises the
    whole substrate shipment to once per environment.  A pool broken by a
    dead worker is discarded, so the next dispatch transparently starts a
    fresh one.

    Pool lifecycle is thread-safe: concurrent dispatches (the serving layer
    routes many client requests onto one memoised pool) may race a dead
    pool's teardown against its rebuild, and an unserialized
    check-then-create in :meth:`ensure_pool` would build two pools — the
    loser overwritten and orphaned together with its worker processes and
    ``/dev/shm`` attachments.  A single lock covers every ``_pool``
    transition (create, kill, shutdown), so exactly one thread rebuilds and
    every other thread reuses its pool.
    """

    ships_payloads = True

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        self.n_workers = n_workers
        self._pool: ProcessPoolExecutor | None = None
        self._lifecycle = threading.Lock()

    @property
    def warm(self) -> bool:
        """``True`` while a worker pool is alive and reusable."""
        return self._pool is not None

    def ensure_pool(self) -> ProcessPoolExecutor:
        """The live worker pool, created lazily (at most once across threads).

        Public because the dispatch supervisor
        (:class:`repro.parallel.resilience.SupervisedDispatch`) submits
        shard futures individually to enforce per-shard timeouts.
        """
        with self._lifecycle:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
            return self._pool

    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        if not payloads:
            return []
        pool = self.ensure_pool()
        try:
            futures = [pool.submit(run_shard, payload) for payload in payloads]
            return [future.result() for future in futures]
        except BrokenProcessPool:
            # A dead worker poisons the whole pool.  Discard it with the
            # non-blocking teardown — ``shutdown(wait=True)`` can hang
            # forever when the break coexists with a *wedged* (stalled, not
            # dead) worker — so the executor is always left in a consistent,
            # lazily-recreatable state: the next run() starts a fresh pool
            # without any manual shutdown() in between.
            self.kill()
            raise

    def kill(self) -> None:
        """Forcibly discard the pool without ever blocking on its workers.

        Terminates worker processes outright (a worker wedged in an
        injected stall — or a real infinite loop — never finishes its task,
        so a graceful ``shutdown(wait=True)`` would deadlock), then detaches
        from the executor with ``wait=False``.  Used by the broken-pool
        handler above and by the dispatch supervisor's self-healing rebuild;
        the next :meth:`run` lazily creates a fresh pool.
        """
        with self._lifecycle:
            pool = self._pool
            self._pool = None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # already dead / already reaped
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pool already broken beyond shutdown
            pass

    def shutdown(self) -> None:
        """Release the worker processes; the next :meth:`run` starts fresh."""
        with self._lifecycle:
            pool = self._pool
            self._pool = None
        if pool is not None:
            # The blocking wait happens outside the lock so a concurrent
            # ensure_pool() is never stalled behind worker teardown.
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "PersistentShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


#: Issue-facing alias: the persistent pool *is* the executor.
PersistentPool = PersistentShardExecutor


def resolve_executor(
    executor: ShardExecutor | str | None, n_workers: int | None
) -> ShardExecutor:
    """Resolve the user-facing ``executor=`` knob into a :class:`ShardExecutor`.

    ``None`` picks the process backend (the only reason to reach the sharded
    path is to fan out); strings select by name (unknown names raise
    :class:`ValueError` from :func:`validate_executor_name`); instances pass
    through.  The process-based backends demand an explicit worker count — a
    silent one-worker pool would pickle the whole workload into a single
    subprocess for zero parallelism, which is never what the caller meant.

    Note on ``"persistent"``: resolving the string builds a *fresh*
    :class:`PersistentShardExecutor`; persistence across calls requires the
    caller to hold the instance (``ScalabilityEnvironment`` memoises one per
    worker count).  ``evaluate_tasks`` shuts down any pool it resolved
    itself, so a string never leaks worker processes.
    """
    if isinstance(executor, ShardExecutor):
        return executor
    name = EXECUTOR_PROCESS if executor is None else validate_executor_name(executor)
    entry = _EXECUTOR_BUILDERS[name]
    if entry.needs_workers and n_workers is None:
        raise ConfigurationError(
            f"the {name} executor needs an explicit "
            "worker count: pass n_workers (or an executor instance)"
        )
    return entry.builder(n_workers)


# -- built-in backend registrations --------------------------------------------------------------
# Registration order is the order the ValueError text lists backends in;
# extensions (repro.parallel.resilience's "supervised") append on import.

register_executor(EXECUTOR_SERIAL, lambda n_workers: SerialShardExecutor(), needs_workers=False)
register_executor(
    EXECUTOR_PROCESS, lambda n_workers: ProcessShardExecutor(n_workers), needs_workers=True
)
register_executor(
    EXECUTOR_PERSISTENT,
    lambda n_workers: PersistentShardExecutor(n_workers),
    needs_workers=True,
)
