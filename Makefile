# Developer entry points for the reproduction.  Run from the repository root.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: all ci test test-fast test-parallel test-chaos test-service test-epoch test-storage test-kernels test-slow serve-smoke bench bench-engine bench-record bench-record-paper bench-record-shipment bench-record-service bench-record-epoch bench-record-storage bench-record-kernel bench-all golden golden-freshness

# Default: the fast equivalence suite (golden grid + property/metamorphic
# tests) plus the perf budget gate, so access-equivalence and performance
# regressions both fail fast.
all: test-fast bench

# Tier-1 verification: the full unit/property suite (includes benchmarks/).
test:
	$(PYTHON) -m pytest -x -q

# Tier-1 minus the benchmark harness: unit, golden-grid and property tests.
test-fast:
	$(PYTHON) -m pytest tests/ -x -q

# Serial ≡ parallel equivalence of the sharded group-evaluation layer
# (shard planner, process/persistent workers, pickle + shared-memory
# shipment, order-restoring merge; shard counts {1, 2, 3, 7} plus
# random-partition property cases) and the shm segment-lifecycle suite.
test-parallel:
	$(PYTHON) -m pytest tests/test_parallel_equivalence.py tests/test_shm_lifecycle.py -q

# Chaos suite: deterministic fault injection (worker crashes, raised
# exceptions, stalls) against the supervised dispatch layer, plus the shm
# segment-lifecycle suite — recovery must stay bit-identical and leak-free.
test-chaos:
	$(PYTHON) -m pytest tests/test_fault_tolerance.py tests/test_shm_lifecycle.py -q

# Serving layer: the service equivalence + concurrency suite (concurrent
# clients bit-identical to serial, crash recovery with honest reports,
# coalescing caps, drain-on-stop) plus the pool/registry/environment
# concurrency regression tests behind it.
test-service:
	$(PYTHON) -m pytest tests/test_service.py tests/test_pool_concurrency.py -q

# Epoch suite: the delta-equivalence matrix (incremental apply_delta state
# bit-identical to a full rebuild over the merged history, across the
# serial/persistent/supervised/service tiers, shard counts {1, 2, 3, 7},
# pickle + shm shipment, figure drivers and snapshot/restore), plus the
# epoch-adoption chaos case and the retired-segment drain case.
test-epoch:
	$(PYTHON) -m pytest tests/test_epoch_updates.py \
		tests/test_fault_tolerance.py::test_supervised_crash_during_epoch_adoption_recovers_on_new_epoch \
		"tests/test_shm_lifecycle.py::test_retired_epoch_segments_unlink_after_in_flight_reader_drains" -q

# Storage suite: the mmap spool backend and the ExecutionPolicy bundle —
# file-backed columns bit-identical to shm and serial across shard counts,
# spool-file lifecycle (normal exit, worker crash, KeyboardInterrupt), the
# /dev/shm budget spill guard, shm/mmap handle anti-aliasing, policy
# round-trips and the mixed-spelling error, plus the mmap epoch-swap cases.
test-storage:
	$(PYTHON) -m pytest tests/test_parallel_equivalence.py tests/test_shm_lifecycle.py tests/test_epoch_updates.py -q -k "storage or mmap or spool or policy"

# Kernel suite: round-kernel equivalence — every registered tier (reference,
# fused, and numba when the optional extra is installed) bit-identical to
# the reference kernel across the golden grid, the randomized property
# cases, the sharded/chaos/epoch tiers and the policy/service plumbing.
# Numba-tier cases skip cleanly when the dependency is absent.
test-kernels:
	$(PYTHON) -m pytest tests/test_kernels.py -q

# Serving smoke gate: start the service on the scaled-down substrate, fire
# the load generator at it, and self-check — responses bit-identical to the
# serial reference, p50/p95/p99 recorded, /dev/shm empty after the drain.
serve-smoke:
	$(PYTHON) -m repro.service --smoke --clients 4 --queries 5 --check-equivalence

# Minutes-scale opt-in tests (full MovieLens-1M synthetic substrate,
# Table 5 headline statistics).  Gated behind the `slow` marker via
# REPRO_RUN_SLOW so plain `pytest` stays fast.
test-slow:
	REPRO_RUN_SLOW=1 $(PYTHON) -m pytest tests/ -q -m slow

# Fail-fast perf gate: one scalability point (3,900 items, 8 groups) under a
# wall-clock budget.  Exits non-zero when the engine regresses past the budget.
bench:
	$(PYTHON) -m repro.experiments.runner --quick

# Engine micro-benchmarks (GRECA end-to-end + sequential_block vs per-entry).
bench-engine:
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py -q

# Append a measured engine record to BENCH_engine.json (LABEL=... required).
bench-record:
	$(PYTHON) scripts/bench_engine.py --label $(LABEL)

# Append the sharded paper-scale point (full MovieLens-1M substrate, serial
# vs N process workers; minutes — builds the 1M-rating environment).
# Usage: make bench-record-paper LABEL=... [WORKERS=4]
WORKERS ?= 4
bench-record-paper:
	$(PYTHON) scripts/bench_engine.py --label $(LABEL) --paper-scale --workers $(WORKERS)

# Append the factory-shipment point (pickle vs shared-memory payload bytes
# for the factory and affinity-column paths, dispatch counts per-point vs
# batched, and wall-clock, figure-6 sweep over the default substrate).
# Usage: make bench-record-shipment LABEL=... [WORKERS=4] [OUTPUT=path.json]
# OUTPUT writes the record to a standalone file (the CI artifact) instead of
# appending to BENCH_engine.json.
bench-record-shipment:
	$(PYTHON) scripts/bench_engine.py --label $(LABEL) --shipment --workers $(WORKERS) $(if $(OUTPUT),--output $(OUTPUT))

# Append a measured service latency/throughput record (p50/p95/p99 at N
# concurrent clients, plus a bit-identical equivalence flag) to
# BENCH_service.json, alongside BENCH_engine.json.  LABEL=... required;
# OUTPUT writes a standalone file (the CI artifact) instead.
bench-record-service:
	$(PYTHON) scripts/bench_service.py --label $(LABEL) $(if $(OUTPUT),--output $(OUTPUT))

# Append the epoch point (incremental delta-apply latency vs the full
# rebuild a non-incremental system would pay for the same freshness, with
# the equivalence oracle enforced) to BENCH_engine.json.
# Usage: make bench-record-epoch LABEL=... [DELTAS=5] [OUTPUT=path.json]
DELTAS ?= 5
bench-record-epoch:
	$(PYTHON) scripts/bench_epoch.py --label $(LABEL) --deltas $(DELTAS) $(if $(OUTPUT),--output $(OUTPUT))

# Append the storage-backend point (shared-memory vs mmap spool dispatch
# latency and descriptor payload bytes over the figure-6 sweep, serial
# equivalence enforced) to BENCH_engine.json.
# Usage: make bench-record-storage LABEL=... [WORKERS=4] [OUTPUT=path.json]
bench-record-storage:
	$(PYTHON) scripts/bench_engine.py --label $(LABEL) --storage --workers $(WORKERS) $(if $(OUTPUT),--output $(OUTPUT))

# Append the round-kernel point (reference vs fused — vs numba when the
# kernels extra is installed — wall-clock and per-round timing over the
# default end-to-end workload, serial equivalence enforced).
# Usage: make bench-record-kernel LABEL=... [OUTPUT=path.json]
bench-record-kernel:
	$(PYTHON) scripts/bench_engine.py --label $(LABEL) --kernel $(if $(OUTPUT),--output $(OUTPUT))

# Every paper figure/table benchmark (minutes).
bench-all:
	$(PYTHON) -m pytest benchmarks/ -q

# Regenerate the engine-equivalence goldens.  Only run from a revision whose
# access semantics are known-equivalent to the seed engine.
golden:
	PYTHONPATH=src:tests $(PYTHON) scripts/capture_engine_golden.py

# Drift gate: recapture the goldens into a temp dir and diff against the
# committed file.  Fails when engine behaviour (access counts, top-k items,
# stopping reasons) changed without a deliberate `make golden` regeneration.
golden-freshness:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	PYTHONPATH=src:tests $(PYTHON) scripts/capture_engine_golden.py --output $$tmp/engine_golden.json && \
	diff -u tests/data/engine_golden.json $$tmp/engine_golden.json && \
	echo "golden grid is fresh: engine behaviour matches the committed goldens"

# Everything CI runs, in CI's order — reproduce a red pipeline locally
# without pushing.  (CI additionally fans test-fast out over Python
# 3.10/3.11/3.12 and treats the bench budget as advisory on shared runners.)
ci: test-fast test-parallel test-chaos test-service test-epoch test-storage test-kernels serve-smoke bench golden-freshness
