"""End-to-end tests for the experiment drivers (small configurations)."""

from __future__ import annotations

import pytest

from repro.data.movielens import MovieLensConfig, generate_movielens_like
from repro.data.study_cohort import StudyConfig
from repro.experiments import figure4, figure5, figure6, figure7, figure8, table5
from repro.experiments.scalability import (
    ScalabilityConfig,
    ScalabilityEnvironment,
    summarize_percent_sa,
)
from repro.exceptions import ConfigurationError
from repro.study.environment import build_study_environment


@pytest.fixture(scope="module")
def small_env():
    """A deliberately small scalability environment shared by the figure tests."""
    return ScalabilityEnvironment(
        ScalabilityConfig(
            n_users=60,
            n_items=400,
            n_ratings=8_000,
            n_participants=24,
            n_groups=3,
            group_size=4,
            k=5,
            seed=13,
        )
    )


class TestScalabilityEnvironment:
    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ScalabilityConfig(n_participants=2, group_size=6)
        with pytest.raises(ConfigurationError):
            ScalabilityConfig(n_groups=0)

    def test_summarize_percent_sa(self):
        stats = summarize_percent_sa([10.0, 20.0, 30.0])
        assert stats.mean_percent_sa == pytest.approx(20.0)
        assert stats.mean_saveup == pytest.approx(80.0)
        assert stats.n_runs == 3
        with pytest.raises(ConfigurationError):
            summarize_percent_sa([])

    def test_percent_sa_single_run(self, small_env):
        group = small_env.random_groups(1)[0]
        value = small_env.percent_sa(group)
        assert 0.0 < value <= 100.0

    def test_restricting_items(self, small_env):
        group = small_env.random_groups(1)[0]
        value = small_env.percent_sa(group, n_items=100)
        assert 0.0 < value <= 100.0


class TestTable5:
    def test_synthetic_dataset(self):
        result = table5.run(config=MovieLensConfig(n_users=50, n_items=60, n_ratings=1_500, seed=2))
        rows = result.rows()
        assert [row["statistic"] for row in rows] == ["# users", "# movies", "# ratings"]
        assert rows[0]["measured"] == 50
        assert rows[2]["paper"] == 1_000_209
        assert "Table 5" in result.format_table()

    def test_existing_dataset(self, small_ratings):
        result = table5.run(dataset=small_ratings)
        assert result.measured["# ratings"] == len(small_ratings)


class TestFigure4:
    def test_runs_on_generated_cohort(self, small_env):
        result = figure4.run(social=small_env.social)
        rows = {row["granularity"]: row for row in result.rows()}
        assert set(rows) == {"week", "month", "two-month", "season", "half-year"}
        # Finer granularities create more periods...
        assert rows["week"]["n_periods"] > rows["two-month"]["n_periods"] > rows["half-year"]["n_periods"]
        # ...but leave a smaller fraction of them non-empty (the paper's trade-off).
        assert rows["week"]["non_empty_percent"] <= rows["half-year"]["non_empty_percent"]
        assert result.chosen_granularity() == "two-month"
        assert "Figure 4" in result.format_table()


class TestFigure5:
    def test_sweeps(self, small_env):
        result = figure5.run(
            environment=small_env,
            k_values=(3, 6),
            group_sizes=(3, 5),
            item_fractions=(0.5, 1.0),
        )
        assert set(result.varying_k) == {3, 6}
        assert set(result.varying_group_size) == {3, 5}
        assert len(result.varying_items) == 2
        for stats in result.varying_k.values():
            assert 0.0 < stats.mean_percent_sa <= 100.0
        # %SA grows (weakly) with k — the paper's linear-growth observation.
        assert result.varying_k[3].mean_percent_sa <= result.varying_k[6].mean_percent_sa + 5.0
        assert 0.0 <= result.worst_saveup() <= 100.0
        assert "Figure 5" in result.format_table()


class TestFigure6:
    def test_accesses_grow_with_periods(self, small_env):
        result = figure6.run(environment=small_env)
        rows = result.rows()
        assert len(rows) == len(small_env.timeline)
        # More periods -> more lists -> more absolute accesses (weakly, paper: linear).
        assert rows[-1]["mean_sequential_accesses"] >= rows[0]["mean_sequential_accesses"]
        assert "Figure 6" in result.format_table()


class TestFigure7:
    def test_group_classes(self, small_env):
        result = figure7.run(environment=small_env, n_groups_per_class=2, group_size=4)
        rows = {row["group_class"]: row for row in result.rows()}
        assert set(rows) == {"Sim", "Diss", "High Aff", "Low Aff"}
        for row in rows.values():
            assert 0.0 < row["mean_percent_sa"] <= 100.0
        assert "Figure 7" in result.format_table()


class TestFigure8:
    def test_consensus_functions(self, small_env):
        result = figure8.run(environment=small_env)
        rows = {row["consensus"]: row for row in result.rows()}
        assert set(rows) == {"AR", "MO", "PD V1", "PD V2"}
        for row in rows.values():
            assert 0.0 < row["mean_percent_sa"] <= 100.0
        assert "Figure 8" in result.format_table()


class TestQualityExperiments:
    @pytest.fixture(scope="class")
    def study_env(self):
        base = generate_movielens_like(MovieLensConfig(n_users=100, n_items=120, n_ratings=4000, seed=21))
        return build_study_environment(
            base_ratings=base,
            study_config=StudyConfig(n_seeds=5, min_invitees=2, max_invitees=3, seed=21),
        )

    def test_figure1(self, study_env):
        from repro.experiments import figure1

        result = figure1.run(environment=study_env, k=3)
        assert len(result.charts) == 6
        for row in result.rows():
            assert 0.0 <= row["preference_percent"] <= 100.0
        assert "Figure 1" in result.format_table()

    def test_figure2(self, study_env):
        from repro.experiments import figure2

        result = figure2.run(environment=study_env, k=3)
        for row in result.rows():
            assert 0.0 <= row["preference_percent"] <= 100.0
            assert row["paper_percent"] > 0
        assert "Figure 2" in result.format_table()

    def test_figure3(self, study_env):
        from repro.experiments import figure3

        result = figure3.run(environment=study_env, k=3)
        assert len(result.charts) == 3
        for row in result.rows():
            assert 0.0 <= row["preference_percent"] <= 100.0
        assert "Figure 3" in result.format_table()


class TestRunner:
    def test_selected_experiments(self, capsys):
        from repro.experiments.runner import run_all

        results = run_all(["table5"])
        assert "table5" in results
        captured = capsys.readouterr()
        assert "Table 5" in captured.out

    def test_unknown_experiment(self):
        from repro.experiments.runner import run_all

        with pytest.raises(SystemExit):
            run_all(["figure99"])

    def test_list_option(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        assert "figure5" in capsys.readouterr().out


class TestFigureDriverEnvironmentLifecycle:
    """Driver-owned environments are closed on every exit path (issue 5 fix).

    Same try/finally parity as run_quick_smoke/run_paper_scale: an exception
    mid-figure must not leak a persistent pool or /dev/shm segments.
    (Figure 4 builds no scalability environment, so there is nothing to
    release there.)
    """

    @staticmethod
    def _exploding_environment(created):
        class ExplodingEnvironment:
            """Stub whose first substrate access mid-figure raises."""

            def __init__(self, config=None):
                self.close_calls = 0
                created.append(self)

            def close(self):
                self.close_calls += 1

            def __getattr__(self, name):
                raise RuntimeError("mid-figure failure")

        return ExplodingEnvironment

    @pytest.mark.parametrize("driver", [figure5, figure6, figure7, figure8])
    def test_owned_environment_closed_on_mid_figure_exception(self, driver, monkeypatch):
        from repro.experiments import scalability

        created = []
        # Construction happens inside scalability.owned_environment, so the
        # stub is installed at the definition site (covers every driver).
        monkeypatch.setattr(
            scalability, "ScalabilityEnvironment", self._exploding_environment(created)
        )
        with pytest.raises(RuntimeError, match="mid-figure failure"):
            driver.run()
        (environment,) = created
        assert environment.close_calls == 1

    @pytest.mark.parametrize("driver", [figure5, figure6, figure7, figure8])
    def test_supplied_environment_is_left_open(self, driver, monkeypatch, small_env):
        """A caller-owned environment is never closed by the driver, even on failure."""
        closes = []
        monkeypatch.setattr(small_env, "close", lambda: closes.append(True))
        monkeypatch.setattr(
            small_env, "random_groups", _raise_mid_figure, raising=False
        )
        monkeypatch.setattr(small_env, "run_sweep", _raise_mid_figure, raising=False)
        with pytest.raises(RuntimeError, match="mid-figure failure"):
            driver.run(environment=small_env)
        assert closes == []


def _raise_mid_figure(*args, **kwargs):
    raise RuntimeError("mid-figure failure")
