"""Figure 8 — %SA for the different consensus functions.

The paper compares GRECA's access cost under AR (average rating, i.e. AP),
MO (least misery) and the two pairwise-disagreement variants PD V1
(``w1 = 0.8``) and PD V2 (``w1 = 0.2``), reporting significant savings for
all of them, with PD V2 outperforming PD V1 ("a higher weight on disagreement
allows faster stopping") and MO the next best performer.

The reproduction measures the same four functions on the shared substrate.
Note: the relative ordering of the PD variants depends on how tight the
disagreement bounds are under partial information; deviations from the
paper's ordering are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.scalability import (
    AccessStats,
    ScalabilityConfig,
    ScalabilityEnvironment,
    SweepPoint,
    owned_environment,
    summarize_percent_sa,
)

#: Consensus functions on the x-axis of Figure 8 (paper labels).
CONSENSUS_FUNCTIONS = ("AR", "MO", "PD V1", "PD V2")

#: The paper's qualitative claims.
PAPER_REFERENCE = {
    "behaviour": "significant saveups for every consensus function; "
    "PD V2 outperforms PD V1; MO reaches ~83% saveup",
    "mo_saveup_about": 83.0,
}


@dataclass(frozen=True)
class Figure8Result:
    """%SA statistics per consensus function."""

    percent_sa: Mapping[str, AccessStats]

    def rows(self) -> list[dict[str, object]]:
        """One row per consensus function."""
        return [
            {
                "consensus": name,
                "mean_percent_sa": round(self.percent_sa[name].mean_percent_sa, 2),
                "std_error": round(self.percent_sa[name].std_error, 2),
                "saveup": round(self.percent_sa[name].mean_saveup, 2),
            }
            for name in CONSENSUS_FUNCTIONS
        ]

    def format_table(self) -> str:
        """Human-readable rendering."""
        lines = ["Figure 8 — average %SA per consensus function"]
        lines.append(f"{'consensus':<10} {'%SA':>8} {'+/-':>6} {'saveup':>8}")
        for row in self.rows():
            lines.append(
                f"{row['consensus']:<10} {row['mean_percent_sa']:>8.2f} "
                f"{row['std_error']:>6.2f} {row['saveup']:>8.2f}"
            )
        return "\n".join(lines)


def run(
    environment: ScalabilityEnvironment | None = None,
    config: ScalabilityConfig | None = None,
    groups: Sequence[Sequence[int]] | None = None,
    n_workers: int | None = None,
    executor=None,
    policy=None,
) -> Figure8Result:
    """Regenerate Figure 8 on the shared substrate.

    ``n_workers=`` / ``executor=`` (or a bundled
    :class:`~repro.parallel.ExecutionPolicy` via ``policy=``) batch all
    four consensus sweeps into one sharded dispatch (serial reference
    semantics by default); a driver-owned environment is closed on the way
    out, exception or not.
    """
    with owned_environment(environment, config) as environment:
        groups = groups or environment.random_groups()
        points = [
            SweepPoint(groups=groups, consensus=name) for name in CONSENSUS_FUNCTIONS
        ]
        per_function = environment.run_sweep(
            points, n_workers=n_workers, executor=executor, policy=policy
        )
        percent_sa = {
            name: summarize_percent_sa([record.percent_sa for record in records])
            for name, records in zip(CONSENSUS_FUNCTIONS, per_function)
        }
        return Figure8Result(percent_sa=percent_sa)
