"""One frozen :class:`ExecutionPolicy` for the dispatch knob sprawl.

Eight PRs grew the parallel layer one keyword at a time: ``n_workers=`` /
``executor=`` (PR 3), ``shipment=`` (PR 4), ``columnar=`` (PR 5),
``supervision=`` (PR 6), ``storage=`` (PR 9) and now ``kernel=``
(PR 10).  Every entry point —
``ScalabilityEnvironment.evaluate`` / ``run_records`` / ``run_sweep`` /
``average_percent_sa``, the figure drivers, the runner and
``ServiceConfig`` — threads the same bundle, so this module collapses it
into a single frozen dataclass with one validation/resolution choice point:

* :class:`ExecutionPolicy` — the bundle, validated on construction through
  the same registries the loose knobs used (``pool.validate_executor_name``,
  ``shm.VALID_SHIPMENTS``, ``storage.validate_storage_name``,
  ``kernels.validate_kernel_name``).
* :func:`resolve_policy` — the back-compat shim every entry point calls:
  legacy keywords still work exactly as before, ``policy=`` supersedes
  them, and *mixing the two spellings is an error* (silently preferring one
  would hide a conflicting intent).

The default policy is the serial reference semantics (no workers, no
executor), mirroring the behaviour every entry point has always had when
called without knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kernels import KERNEL_REFERENCE, validate_kernel_name
from repro.exceptions import ConfigurationError
from repro.parallel.pool import ShardExecutor, validate_executor_name
from repro.parallel.resilience import SupervisionPolicy
from repro.parallel.shm import VALID_SHIPMENTS
from repro.parallel.storage import STORAGE_SHM, validate_storage_name


@dataclass(frozen=True)
class ExecutionPolicy:
    """How one dispatch runs: workers, backend, shipment, supervision, storage.

    ``None`` fields keep their historical defaults downstream: no workers
    and no executor mean the serial reference path, ``shipment=None``
    defaults per backend (descriptor shipment when the backend ships
    payloads to other processes), ``storage=None`` means shared memory,
    ``supervision=None`` means whatever the executor itself provides, and
    ``kernel=None`` means the reference round kernel (every registered
    kernel is bit-identical, so this is a pure performance knob).
    ``columnar`` selects descriptor-ready affinity columns when tasks are
    materialised (the PR 5 default).
    """

    n_workers: int | None = None
    executor: str | ShardExecutor | None = None
    shipment: str | None = None
    supervision: SupervisionPolicy | bool | None = None
    columnar: bool = True
    storage: str | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be a positive worker count, got {self.n_workers!r}"
            )
        if isinstance(self.executor, str):
            validate_executor_name(self.executor)
        elif self.executor is not None and not isinstance(self.executor, ShardExecutor):
            raise ConfigurationError(
                "executor must be a backend name or a ShardExecutor instance, "
                f"got {type(self.executor).__name__}"
            )
        if self.shipment is not None and self.shipment not in VALID_SHIPMENTS:
            valid = ", ".join(repr(name) for name in VALID_SHIPMENTS)
            raise ValueError(
                f"unknown shipment {self.shipment!r}: valid shipments are {valid}"
            )
        if self.storage is not None:
            validate_storage_name(self.storage)
        if self.kernel is not None:
            validate_kernel_name(self.kernel)
        if self.supervision is not None and not isinstance(
            self.supervision, (SupervisionPolicy, bool)
        ):
            raise ConfigurationError(
                "supervision must be a SupervisionPolicy, a bool, or None, "
                f"got {type(self.supervision).__name__}"
            )

    @property
    def is_serial(self) -> bool:
        """Whether this policy selects the serial reference path."""
        return self.n_workers is None and self.executor is None

    @property
    def storage_name(self) -> str:
        """The effective storage backend (default: shared memory)."""
        return self.storage or STORAGE_SHM

    @property
    def kernel_name(self) -> str:
        """The effective round kernel (default: the reference tier)."""
        return self.kernel or KERNEL_REFERENCE


def resolve_policy(
    policy: ExecutionPolicy | None = None,
    *,
    n_workers: int | None = None,
    executor: str | ShardExecutor | None = None,
    shipment: str | None = None,
    supervision: SupervisionPolicy | bool | None = None,
    columnar: bool | None = None,
    storage: str | None = None,
    kernel: str | None = None,
) -> ExecutionPolicy:
    """The single resolution choice point behind every ``policy=`` entry point.

    Legacy keyword spellings are folded into a fresh :class:`ExecutionPolicy`
    (validating them exactly as the policy constructor does); an explicit
    ``policy=`` is returned as-is.  Passing both spellings at once raises —
    the caller's intent would be ambiguous.
    """
    legacy = {
        name: value
        for name, value in (
            ("n_workers", n_workers),
            ("executor", executor),
            ("shipment", shipment),
            ("supervision", supervision),
            ("columnar", columnar),
            ("storage", storage),
            ("kernel", kernel),
        )
        if value is not None
    }
    if policy is not None:
        if not isinstance(policy, ExecutionPolicy):
            raise ConfigurationError(
                f"policy must be an ExecutionPolicy, got {type(policy).__name__}"
            )
        if legacy:
            spelt = ", ".join(sorted(legacy))
            raise ConfigurationError(
                f"pass either policy= or the legacy keywords ({spelt}), not both"
            )
        return policy
    return ExecutionPolicy(
        n_workers=n_workers,
        executor=executor,
        shipment=shipment,
        supervision=supervision,
        columnar=True if columnar is None else columnar,
        storage=storage,
        kernel=kernel,
    )
