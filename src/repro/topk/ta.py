"""Generic Threshold Algorithm (TA) of Fagin, Lotem and Naor.

TA scans the sorted lists round-robin like NRA but resolves the *exact*
score of every newly encountered object immediately through random accesses
to the other lists.  It stops when the ``k``-th best exact score reaches the
threshold (the aggregation of the current cursor values).

In the reproduction TA plays the role of the "expensive" reference point the
paper discusses in Section 3.1: computing the complete score of a single
item requires touching every list, which is exactly what GRECA avoids.

The access schedule (one SA per list per round, ``n - 1`` RAs per newly
encountered object) is untouched, but the bookkeeping runs on the columnar
engine shared with NRA and GRECA: resolved scores live in one dense array
over the key universe and the per-round ranking is an ``np.lexsort`` against
a precomputed ``repr`` tie-break ranking, rather than a Python re-sort of
every resolved object each round.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.lists import SortedAccessList, total_entries
from repro.exceptions import AlgorithmError
from repro.topk.nra import AggregationFn, TopKResult, KeyUniverse, shared_counter


class ThresholdAlgorithm:
    """Classic TA over sorted lists sharing a single access counter."""

    def __init__(self, aggregation: AggregationFn, k: int) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.aggregation = aggregation
        self.k = k

    def run(self, lists: Sequence[SortedAccessList[Hashable]]) -> TopKResult:
        """Execute TA until the threshold condition holds or lists are exhausted."""
        if not lists:
            raise AlgorithmError("TA requires at least one input list")
        counter = shared_counter(lists)

        universe = KeyUniverse(lists)
        scores = np.empty(universe.size)
        resolved = np.zeros(universe.size, dtype=bool)
        rounds = 0

        while True:
            progressed = False
            for position, access_list in enumerate(lists):
                start = access_list.position
                keys, block = access_list.sequential_block(1)
                if not block.size:
                    continue
                progressed = True
                column = universe.list_columns[position][start]
                if not resolved[column]:
                    key = keys[0]
                    components = []
                    for other_position, other_list in enumerate(lists):
                        if other_position == position:
                            components.append(float(block[0]))
                        else:
                            components.append(other_list.random_access(key))
                    scores[column] = self.aggregation(components)
                    resolved[column] = True
            rounds += 1
            exhausted = not progressed or all(access_list.exhausted for access_list in lists)

            resolved_columns = np.flatnonzero(resolved)
            if resolved_columns.size >= self.k:
                threshold = self.aggregation(
                    [access_list.cursor_score for access_list in lists]
                )
                ranked = universe.ranked(resolved_columns, scores[resolved_columns])
                kth_score = float(scores[ranked[self.k - 1]])
                if kth_score >= threshold - 1e-12 or exhausted:
                    return self._result(universe, ranked, scores, counter, lists, rounds)
            if exhausted:
                ranked = universe.ranked(resolved_columns, scores[resolved_columns])
                return self._result(universe, ranked, scores, counter, lists, rounds)

    def _result(
        self,
        universe: KeyUniverse,
        ranked: np.ndarray,
        scores: np.ndarray,
        counter,
        lists: Sequence[SortedAccessList[Hashable]],
        rounds: int,
    ) -> TopKResult:
        top_columns = ranked[: self.k]
        top = tuple(universe.keys[column] for column in top_columns)
        exact = {key: float(scores[column]) for key, column in zip(top, top_columns)}
        return TopKResult(
            items=top,
            lower_bounds=exact,
            upper_bounds=dict(exact),
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total_entries(lists),
            rounds=rounds,
        )
