"""Capture golden access-equivalence values for the engine grid.

Run from the repository root::

    PYTHONPATH=src:tests python scripts/capture_engine_golden.py

The resulting ``tests/data/engine_golden.json`` freezes the seed engine's
sequential/random access counts, top-k items, stopping reasons and round
counts over the grid in ``tests/engine_grid.py``.  The ``greca``/``nra``/
``ta`` sections were produced by the per-entry seed implementation *before*
the batched columnar refactor; the ``naive``/``ta_baseline`` sections are
captured from the retained per-entry baseline interpreters
(``batched=False``), which preserve the seed semantics verbatim.  Regenerate
only if the grid itself changes (and then only from a revision whose access
semantics are already known to be equivalent to the seed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (os.path.join(ROOT, "src"), os.path.join(ROOT, "tests")):
    if path not in sys.path:
        sys.path.insert(0, path)

from engine_grid import (  # noqa: E402
    GRECA_CASES,
    TOPK_CASES,
    run_baseline_case,
    run_greca_case,
    run_topk_case,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=os.path.join(ROOT, "tests", "data", "engine_golden.json"),
        help="where to write the captured goldens (default: the committed "
        "tests/data/engine_golden.json; the CI golden-freshness job writes "
        "to a temp path and diffs against the committed file instead)",
    )
    args = parser.parse_args(argv)
    golden = {
        "greca": [run_greca_case(case) for case in GRECA_CASES],
        "nra": [run_topk_case(case, "nra") for case in TOPK_CASES],
        "ta": [run_topk_case(case, "ta") for case in TOPK_CASES],
        "naive": [
            run_baseline_case(case, "naive", batched=False) for case in GRECA_CASES
        ],
        "ta_baseline": [
            run_baseline_case(case, "ta_baseline", batched=False) for case in GRECA_CASES
        ],
    }
    target = os.path.abspath(args.output)
    os.makedirs(os.path.dirname(target), exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {target}: {sum(len(v) for v in golden.values())} golden records")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
