"""Interval arithmetic and incremental bound caches for partially known scores.

GRECA maintains, for every encountered item, a lower and an upper bound on
its final consensus score (Section 3.2).  Those bounds are obtained by
propagating per-component intervals — "this user's absolute preference for
the item lies somewhere in [0, cursor value]" — through the preference and
consensus formulas.  :class:`Interval` implements the small amount of
interval arithmetic that this requires: addition, multiplication by
non-negative intervals, min/mean aggregation and the interval of an absolute
difference.

:class:`PairwiseAffinityBounds` is the batched engine's *incremental* cache
of the pairwise-affinity bound matrices: instead of recombining every pair's
static and periodic components at every stopping-condition check, it tracks
which affinity lists moved and recomputes only the pairs those moves could
have changed (a pair's bounds depend solely on its already-seen component
values and on the cursor scores of the lists still owing it a component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.lists import SortedAccessList
from repro.exceptions import AlgorithmError


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` bounding an unknown scalar."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high + 1e-12:
            raise AlgorithmError(f"invalid interval: low {self.low} > high {self.high}")

    # -- constructors ----------------------------------------------------------------

    @staticmethod
    def exact(value: float) -> "Interval":
        """A degenerate interval holding one known value."""
        return Interval(value, value)

    @staticmethod
    def between(low: float, high: float) -> "Interval":
        """An interval after normalising argument order."""
        return Interval(min(low, high), max(low, high))

    # -- predicates -------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """``True`` when the value is fully determined."""
        return self.low == self.high

    @property
    def width(self) -> float:
        """The uncertainty span ``high - low``."""
        return self.high - self.low

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """``True`` if ``value`` lies inside the interval (within tolerance)."""
        return self.low - tolerance <= value <= self.high + tolerance

    # -- arithmetic --------------------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a known non-negative scalar."""
        if factor < 0:
            raise AlgorithmError("scale() requires a non-negative factor")
        return Interval(self.low * factor, self.high * factor)

    def multiply_nonnegative(self, other: "Interval") -> "Interval":
        """Product of two intervals that are both known to be non-negative."""
        if self.low < -1e-12 or other.low < -1e-12:
            raise AlgorithmError("multiply_nonnegative() requires non-negative intervals")
        return Interval(max(0.0, self.low) * max(0.0, other.low), self.high * other.high)

    def shift(self, delta: float) -> "Interval":
        """Add a known constant."""
        return Interval(self.low + delta, self.high + delta)

    def clamp(self, low: float, high: float) -> "Interval":
        """Clamp both bounds into ``[low, high]``."""
        return Interval(
            min(high, max(low, self.low)),
            min(high, max(low, self.high)),
        )


def interval_sum(intervals: Iterable[Interval]) -> Interval:
    """Sum of a collection of intervals (the empty sum is [0, 0])."""
    low = 0.0
    high = 0.0
    for interval in intervals:
        low += interval.low
        high += interval.high
    return Interval(low, high)


def interval_mean(intervals: Sequence[Interval]) -> Interval:
    """Mean of intervals (errors on an empty sequence)."""
    if not intervals:
        raise AlgorithmError("cannot take the mean of zero intervals")
    total = interval_sum(intervals)
    return Interval(total.low / len(intervals), total.high / len(intervals))


def interval_min(intervals: Sequence[Interval]) -> Interval:
    """Interval of the minimum of the bounded values."""
    if not intervals:
        raise AlgorithmError("cannot take the minimum of zero intervals")
    return Interval(
        min(interval.low for interval in intervals),
        min(interval.high for interval in intervals),
    )


def interval_abs_difference(left: Interval, right: Interval) -> Interval:
    """Interval of ``|a - b|`` when ``a`` in ``left`` and ``b`` in ``right``."""
    high = max(left.high - right.low, right.high - left.low, 0.0)
    if left.high < right.low:
        low = right.low - left.high
    elif right.high < left.low:
        low = left.low - right.high
    else:
        low = 0.0  # the intervals overlap, the difference can be zero
    return Interval(low, high)


PairKey = tuple[int, int]


class PairwiseAffinityBounds:
    """Incrementally maintained bounds on the combined pairwise-affinity matrix.

    The cache owns the sequential consumption of GRECA's static and periodic
    affinity lists.  :meth:`advance` reads one block from every list (bulk SA
    accounting via :meth:`SortedAccessList.sequential_block`) and marks as
    *dirty* exactly the pairs whose bounds that movement can change: the
    pairs delivered by the block (their component became exact) and the pairs
    still pending in a list that moved (their upper bound tracks that list's
    cursor score).  :meth:`bounds` then recombines only the dirty pairs.  A
    clean pair's inputs — seen component values and the cursor scores of the
    lists still owing it a component — are untouched, so its cached bounds
    are identical to what a full recomputation would produce.

    Component state is held columnar — per-pair value/seen/owner arrays —
    so a recombination pass is a handful of numpy gathers plus one call to
    ``combine_batch`` over the dirty pairs (e.g.
    :func:`repro.core.affinity.combine_discrete_batch`), instead of a Python
    loop calling ``combine`` per pair.  Without ``combine_batch`` the scalar
    ``combine`` is applied pair-by-pair over the same gathered components, so
    custom combination callables keep working.

    Parameters
    ----------
    members:
        Group members in index order (pairs are canonical ``(min, max)`` id
        tuples, positioned by member order).
    period_indices:
        Chronological period indices, fixing the order in which periodic
        components are passed to ``combine``.
    combine:
        ``combine(static, periodic_values) -> float`` — the time-model
        combination (e.g. :meth:`GrecaIndex.combine`).
    static_lists / periodic_lists:
        The affinity lists to consume; every list's keys must be canonical
        pair tuples.  Pairs absent from every list contribute an exact 0
        component (nothing will ever deliver them).
    combine_batch:
        Optional vectorised combination
        ``combine_batch(static_array, [period_array, ...]) -> array`` that
        must agree elementwise with ``combine``
        (e.g. :meth:`GrecaIndex.combine_batch`).
    """

    def __init__(
        self,
        members: Sequence[int],
        period_indices: Sequence[int],
        combine: Callable[[float, Sequence[float]], float],
        static_lists: Sequence[SortedAccessList[PairKey]],
        periodic_lists: Mapping[int, Sequence[SortedAccessList[PairKey]]],
        combine_batch: Callable[[np.ndarray, Sequence[np.ndarray]], np.ndarray] | None = None,
    ) -> None:
        n = len(members)
        self._n_members = n
        self._period_indices = tuple(period_indices)
        self._combine = combine
        self._combine_batch = combine_batch
        self._static_lists = list(static_lists)
        self._periodic_lists = {
            period: list(periodic_lists.get(period, ())) for period in self._period_indices
        }

        pair_index: dict[PairKey, int] = {}
        rows = []
        cols = []
        for row, left in enumerate(members):
            for offset, right in enumerate(members[row + 1 :], start=row + 1):
                key = (left, right) if left < right else (right, left)
                pair_index[key] = len(rows)
                rows.append(row)
                cols.append(offset)
        n_pairs = len(rows)
        self._pair_index = pair_index
        self._rows = np.asarray(rows, dtype=np.intp)
        self._cols = np.asarray(cols, dtype=np.intp)

        # Per-list mapping from sorted position to pair slot, so block reads
        # scatter straight into the component arrays.
        self._static_slots = [self._list_slots(lst) for lst in self._static_lists]
        self._periodic_slots = {
            period: [self._list_slots(lst) for lst in self._periodic_lists[period]]
            for period in self._period_indices
        }

        n_periods = len(self._period_indices)
        self._static_val = np.zeros(n_pairs)
        self._static_seen = np.zeros(n_pairs, dtype=bool)
        self._static_owner = self._owner_array(self._static_slots, n_pairs)
        self._periodic_val = np.zeros((n_periods, n_pairs))
        self._periodic_seen = np.zeros((n_periods, n_pairs), dtype=bool)
        self._periodic_owner = np.stack(
            [
                self._owner_array(self._periodic_slots[period], n_pairs)
                for period in self._period_indices
            ]
        ) if n_periods else np.empty((0, n_pairs), dtype=np.intp)

        self._aff_low = np.zeros((n, n))
        self._aff_high = np.zeros((n, n))
        self._dirty = np.ones(n_pairs, dtype=bool)

    def _list_slots(self, access_list: SortedAccessList[PairKey]) -> np.ndarray:
        """Pair slot of every sorted position of one list."""
        return np.asarray(
            [self._pair_index[key] for key in access_list.keys], dtype=np.intp
        )

    @staticmethod
    def _owner_array(slots: Sequence[np.ndarray], n_pairs: int) -> np.ndarray:
        """Index of the (single) list that will eventually deliver each pair (-1: none)."""
        owner = np.full(n_pairs, -1, dtype=np.intp)
        for position, list_slots in enumerate(slots):
            owner[list_slots] = position
        return owner

    @property
    def lists(self) -> list[SortedAccessList[PairKey]]:
        """Every list the cache consumes (static first, then periodic by period)."""
        result = list(self._static_lists)
        for period in self._period_indices:
            result.extend(self._periodic_lists[period])
        return result

    def advance(self, depth: int) -> None:
        """Advance every affinity list ``depth`` entries, tracking dirty pairs."""
        for access_list, slots in zip(self._static_lists, self._static_slots):
            start = access_list.position
            keys, scores = access_list.sequential_block(depth)
            if keys:
                # Delivered pairs changed (component now exact) and pairs still
                # pending in this list changed (its cursor score moved).
                self._dirty[slots[start:]] = True
                delivered = slots[start : start + len(keys)]
                self._static_val[delivered] = scores
                self._static_seen[delivered] = True
        for t, period in enumerate(self._period_indices):
            for access_list, slots in zip(
                self._periodic_lists[period], self._periodic_slots[period]
            ):
                start = access_list.position
                keys, scores = access_list.sequential_block(depth)
                if keys:
                    self._dirty[slots[start:]] = True
                    delivered = slots[start : start + len(keys)]
                    self._periodic_val[t, delivered] = scores
                    self._periodic_seen[t, delivered] = True

    @staticmethod
    def _component_bounds(
        values: np.ndarray,
        seen: np.ndarray,
        owner: np.ndarray,
        lists: Sequence[SortedAccessList[PairKey]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper component arrays for a set of pairs.

        A seen component is exact; an unseen one lies in ``[0, cursor]`` of
        the list that will deliver it (or is exactly 0 when no list will).
        """
        low = np.where(seen, values, 0.0)
        if lists:
            cursors = np.asarray([lst.cursor_score for lst in lists])
            unseen_high = np.where(owner >= 0, cursors[np.maximum(owner, 0)], 0.0)
        else:
            unseen_high = np.zeros_like(values)
        high = np.where(seen, values, unseen_high)
        return low, high

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(aff_low, aff_high)`` matrices, recombining dirty pairs only."""
        dirty = np.flatnonzero(self._dirty)
        if dirty.size:
            static_low, static_high = self._component_bounds(
                self._static_val[dirty],
                self._static_seen[dirty],
                self._static_owner[dirty],
                self._static_lists,
            )
            periodic_low: list[np.ndarray] = []
            periodic_high: list[np.ndarray] = []
            for t, period in enumerate(self._period_indices):
                low, high = self._component_bounds(
                    self._periodic_val[t, dirty],
                    self._periodic_seen[t, dirty],
                    self._periodic_owner[t, dirty],
                    self._periodic_lists[period],
                )
                periodic_low.append(low)
                periodic_high.append(high)

            if self._combine_batch is not None:
                low = self._combine_batch(static_low, periodic_low)
                high = self._combine_batch(static_high, periodic_high)
            else:
                low = np.asarray(
                    [
                        self._combine(
                            float(static_low[j]), [float(p[j]) for p in periodic_low]
                        )
                        for j in range(dirty.size)
                    ]
                )
                high = np.asarray(
                    [
                        self._combine(
                            float(static_high[j]), [float(p[j]) for p in periodic_high]
                        )
                        for j in range(dirty.size)
                    ]
                )

            rows = self._rows[dirty]
            cols = self._cols[dirty]
            self._aff_low[rows, cols] = low
            self._aff_low[cols, rows] = low
            self._aff_high[rows, cols] = high
            self._aff_high[cols, rows] = high
            self._dirty[:] = False
        return self._aff_low, self._aff_high


def interval_variance(intervals: Sequence[Interval]) -> Interval:
    """Conservative interval of the population variance of the bounded values.

    The exact range of the variance over a box of intervals is expensive to
    compute; GRECA only needs *sound* bounds, so we use a conservative
    estimate: the lower bound is 0 unless all intervals are pairwise disjoint
    around distinct values, and the upper bound is the variance of the most
    spread-out corner configuration (each value pushed to the extreme farther
    from the midpoint of the combined range).
    """
    if not intervals:
        raise AlgorithmError("cannot take the variance of zero intervals")
    overall_low = min(interval.low for interval in intervals)
    overall_high = max(interval.high for interval in intervals)
    midpoint = 0.5 * (overall_low + overall_high)
    extremes = [
        interval.low if abs(interval.low - midpoint) >= abs(interval.high - midpoint) else interval.high
        for interval in intervals
    ]
    mean = sum(extremes) / len(extremes)
    upper = sum((value - mean) ** 2 for value in extremes) / len(extremes)

    # Lower bound: if every interval can reach a common value the variance can be 0.
    common_low = max(interval.low for interval in intervals)
    common_high = min(interval.high for interval in intervals)
    if common_low <= common_high:
        lower = 0.0
    else:
        # The intervals cannot all overlap; use the variance of the
        # "most compressed" configuration as a (still sound) lower bound of 0.
        lower = 0.0
    return Interval(lower, max(lower, upper))
