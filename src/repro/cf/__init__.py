"""Collaborative-filtering substrate producing absolute preferences ``apref``."""

from repro.cf.matrix import RatingMatrix
from repro.cf.predictors import ItemBasedCF, MeanPredictor, RatingPredictor, UserBasedCF
from repro.cf.similarity import (
    SIMILARITY_FUNCTIONS,
    cosine_similarity_matrix,
    jaccard_similarity_matrix,
    pairwise_user_similarity,
    pearson_similarity_matrix,
    similarity_matrix,
)

__all__ = [
    "SIMILARITY_FUNCTIONS",
    "ItemBasedCF",
    "MeanPredictor",
    "RatingMatrix",
    "RatingPredictor",
    "UserBasedCF",
    "cosine_similarity_matrix",
    "jaccard_similarity_matrix",
    "pairwise_user_similarity",
    "pearson_similarity_matrix",
    "similarity_matrix",
]
