"""Ad-hoc group formation (Section 4.1.3 of the paper).

Groups are characterised along three axes:

* **Size** — small (3) vs large (6) in the quality study, 3-12 in the
  scalability study.
* **Cohesiveness** — *similar* groups maximise the summed pairwise rating
  similarity of their members (and are drawn from users who rated the
  Similar movie set); *dissimilar* groups minimise it.
* **Affinity strength** — *high-affinity* groups have every pairwise affinity
  at or above 0.4; *low-affinity* groups do not.

Exhaustively searching for the exact extremal group is combinatorial, so the
builders below use the standard greedy construction (seed with the extremal
pair, then repeatedly add the user that keeps the objective extremal), which
is how such study groups are formed in practice and preserves the intended
contrast between the group classes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.affinity import AffinityModel
from repro.core.timeline import Period
from repro.data.ratings import RatingsDataset
from repro.exceptions import GroupError
from repro.groups.cohesion import full_similarity_matrix, minimum_pairwise_affinity

#: Group sizes used by the paper's quality study.
SMALL_GROUP_SIZE = 3
LARGE_GROUP_SIZE = 6

#: The paper's high-affinity threshold.
HIGH_AFFINITY_THRESHOLD = 0.4


@dataclass(frozen=True)
class GroupProfile:
    """A formed group together with the characteristics it was built for."""

    members: tuple[int, ...]
    size_label: str
    cohesiveness_label: str
    affinity_label: str

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def describe(self) -> str:
        """Human-readable description, e.g. ``"large / dissimilar / high-affinity"``."""
        return f"{self.size_label} / {self.cohesiveness_label} / {self.affinity_label}"


class GroupFormer:
    """Build similar/dissimilar and high/low-affinity groups from a user pool.

    Parameters
    ----------
    dataset:
        Ratings used to measure cohesiveness.
    candidates:
        The pool of users groups are drawn from (e.g. the study participants).
    metric:
        Rating-similarity metric.
    seed:
        Seed for the random group builder.
    """

    def __init__(
        self,
        dataset: RatingsDataset,
        candidates: Sequence[int] | None = None,
        metric: str = "cosine",
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        pool = list(candidates) if candidates is not None else list(dataset.users)
        pool = [user for user in pool if dataset.has_user(user)]
        if len(pool) < 2:
            raise GroupError("need at least two candidate users to form groups")
        self.candidates = tuple(pool)
        self.metric = metric
        self._rng = random.Random(seed)
        restricted = dataset.restrict_users(pool)
        self._similarity, self._users = full_similarity_matrix(restricted, metric=metric)
        self._position = {user: index for index, user in enumerate(self._users)}

    # -- similarity-driven groups -------------------------------------------------------------

    def similar_group(self, size: int) -> list[int]:
        """Greedy group maximising the summed pairwise rating similarity."""
        return self._extremal_group(size, maximise=True)

    def dissimilar_group(self, size: int) -> list[int]:
        """Greedy group minimising the summed pairwise rating similarity."""
        return self._extremal_group(size, maximise=False)

    def _extremal_group(self, size: int, maximise: bool) -> list[int]:
        self._check_size(size)
        sign = 1.0 if maximise else -1.0
        best_pair = None
        best_value = -np.inf
        for left, right in itertools.combinations(range(len(self._users)), 2):
            value = sign * self._similarity[left, right]
            if value > best_value:
                best_value = value
                best_pair = (left, right)
        assert best_pair is not None
        chosen = list(best_pair)
        while len(chosen) < size:
            best_candidate = None
            best_gain = -np.inf
            for candidate in range(len(self._users)):
                if candidate in chosen:
                    continue
                gain = sign * float(sum(self._similarity[candidate, member] for member in chosen))
                if gain > best_gain:
                    best_gain = gain
                    best_candidate = candidate
            chosen.append(best_candidate)
        return [self._users[index] for index in chosen]

    # -- affinity-driven groups ----------------------------------------------------------------

    def high_affinity_group(
        self,
        size: int,
        affinity: AffinityModel,
        period: Period | None = None,
        threshold: float = HIGH_AFFINITY_THRESHOLD,
    ) -> list[int]:
        """Greedy group whose minimum pairwise affinity is as high as possible.

        Falls back to the best achievable group if no group reaches the
        requested threshold (the caller can check with
        :func:`~repro.groups.cohesion.is_high_affinity`).
        """
        return self._affinity_extremal_group(size, affinity, period, maximise=True)

    def low_affinity_group(
        self,
        size: int,
        affinity: AffinityModel,
        period: Period | None = None,
    ) -> list[int]:
        """Greedy group whose pairwise affinities are as low as possible."""
        return self._affinity_extremal_group(size, affinity, period, maximise=False)

    def _affinity_extremal_group(
        self,
        size: int,
        affinity: AffinityModel,
        period: Period | None,
        maximise: bool,
    ) -> list[int]:
        self._check_size(size)
        sign = 1.0 if maximise else -1.0
        users = list(self.candidates)
        best_pair = None
        best_value = -np.inf
        for left, right in itertools.combinations(users, 2):
            value = sign * affinity.affinity(left, right, period)
            if value > best_value:
                best_value = value
                best_pair = (left, right)
        assert best_pair is not None
        chosen = list(best_pair)
        while len(chosen) < size:
            best_candidate = None
            best_gain = -np.inf
            for candidate in users:
                if candidate in chosen:
                    continue
                pairwise = [affinity.affinity(candidate, member, period) for member in chosen]
                gain = sign * (min(pairwise) if maximise else -max(pairwise))
                # When maximising we protect the *minimum* pairwise affinity
                # (the paper's criterion); when minimising we avoid adding
                # anybody strongly tied to the current members.
                if not maximise:
                    gain = sign * (-max(pairwise))
                if gain > best_gain:
                    best_gain = gain
                    best_candidate = candidate
            chosen.append(best_candidate)
        return chosen

    # -- random groups ----------------------------------------------------------------------------

    def random_group(self, size: int) -> list[int]:
        """A uniformly random group (the scalability study's default)."""
        self._check_size(size)
        return self._rng.sample(list(self.candidates), size)

    def random_groups(self, count: int, size: int) -> list[list[int]]:
        """``count`` independent random groups (e.g. the paper's 20 groups)."""
        if count <= 0:
            raise GroupError("count must be positive")
        return [self.random_group(size) for _ in range(count)]

    # -- the paper's 8 study groups -----------------------------------------------------------------

    def study_groups(
        self,
        affinity: AffinityModel,
        period: Period | None = None,
        small: int = SMALL_GROUP_SIZE,
        large: int = LARGE_GROUP_SIZE,
    ) -> list[GroupProfile]:
        """The eight group profiles of the quality study.

        The paper forms 8 groups "by considering different combinations of
        group size, group cohesiveness and affinity strength".  We build one
        group per (size, cohesiveness) and (size, affinity-strength)
        combination, labelled accordingly.
        """
        profiles = []
        for size, size_label in ((small, "small"), (large, "large")):
            profiles.append(
                GroupProfile(
                    members=tuple(self.similar_group(size)),
                    size_label=size_label,
                    cohesiveness_label="similar",
                    affinity_label="mixed",
                )
            )
            profiles.append(
                GroupProfile(
                    members=tuple(self.dissimilar_group(size)),
                    size_label=size_label,
                    cohesiveness_label="dissimilar",
                    affinity_label="mixed",
                )
            )
            profiles.append(
                GroupProfile(
                    members=tuple(self.high_affinity_group(size, affinity, period)),
                    size_label=size_label,
                    cohesiveness_label="mixed",
                    affinity_label="high-affinity",
                )
            )
            profiles.append(
                GroupProfile(
                    members=tuple(self.low_affinity_group(size, affinity, period)),
                    size_label=size_label,
                    cohesiveness_label="mixed",
                    affinity_label="low-affinity",
                )
            )
        return profiles

    # -- helpers ----------------------------------------------------------------------------------------

    def _check_size(self, size: int) -> None:
        if size < 2:
            raise GroupError("group size must be at least 2")
        if size > len(self.candidates):
            raise GroupError(
                f"cannot form a group of {size} from {len(self.candidates)} candidates"
            )
