"""Deterministic load generation and latency summarisation for the service.

:func:`default_queries` draws a reproducible per-client query mix over the
environment's group pool (seeded ``random.Random``, so a given (environment,
seed) always produces the same load), :func:`run_load` fires N concurrent
clients at a running :class:`~repro.service.GrecaService`, and
:func:`summarise_latencies` folds the per-query latency splits into the
p50/p95/p99 + throughput record ``scripts/bench_service.py`` appends next to
``BENCH_engine.json``.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.scalability import ScalabilityEnvironment
from repro.service.service import GrecaService, GroupQuery, QueryLatency, QueryResponse


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation."""
    if not values:
        raise ConfigurationError("no values to take a percentile of")
    if not 0 <= q <= 100:
        raise ConfigurationError("percentile must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 + throughput over one load-generation run (times in ms)."""

    n_queries: int
    n_clients: int
    wall_seconds: float
    throughput_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_queue_ms: float
    mean_dispatch_ms: float
    mean_merge_ms: float
    max_batch: int

    def format_summary(self) -> str:
        """One-line human-readable summary for the CLI."""
        return (
            f"served {self.n_queries} queries from {self.n_clients} clients "
            f"in {self.wall_seconds:.2f}s ({self.throughput_qps:.1f} q/s) | "
            f"latency p50 {self.p50_ms:.1f}ms p95 {self.p95_ms:.1f}ms "
            f"p99 {self.p99_ms:.1f}ms | mean queue {self.mean_queue_ms:.1f}ms "
            f"+ dispatch {self.mean_dispatch_ms:.1f}ms "
            f"+ merge {self.mean_merge_ms:.1f}ms | max batch {self.max_batch}"
        )


def summarise_latencies(
    latencies: Sequence[QueryLatency], wall_seconds: float, n_clients: int
) -> LatencySummary:
    """Fold per-query latency splits into one :class:`LatencySummary`."""
    if not latencies:
        raise ConfigurationError("no latencies to summarise")
    totals_ms = [latency.total_seconds * 1000.0 for latency in latencies]
    count = len(latencies)
    return LatencySummary(
        n_queries=count,
        n_clients=n_clients,
        wall_seconds=wall_seconds,
        throughput_qps=count / wall_seconds if wall_seconds > 0 else float("inf"),
        p50_ms=percentile(totals_ms, 50),
        p95_ms=percentile(totals_ms, 95),
        p99_ms=percentile(totals_ms, 99),
        mean_queue_ms=sum(l.queue_seconds for l in latencies) * 1000.0 / count,
        mean_dispatch_ms=sum(l.dispatch_seconds for l in latencies) * 1000.0 / count,
        mean_merge_ms=sum(l.merge_seconds for l in latencies) * 1000.0 / count,
        max_batch=max(latency.batch_size for latency in latencies),
    )


def default_queries(
    environment: ScalabilityEnvironment,
    n_clients: int,
    n_queries: int,
    seed: int = 17,
) -> list[list[GroupQuery]]:
    """A reproducible query mix: one list of queries per concurrent client.

    Groups come from the environment's default random pool; each query
    varies the paper's knobs (k, consensus, query period) the way the
    figure sweeps do, drawn from a seeded RNG so the same (environment,
    seed) pair always generates the same load — which is what lets the
    bench trajectory compare runs across revisions.
    """
    if n_clients < 1 or n_queries < 1:
        raise ConfigurationError("need at least one client and one query each")
    rng = random.Random(seed)
    groups = [tuple(group) for group in environment.random_groups()]
    n_periods = len(list(environment.timeline))
    ks = (max(2, environment.config.k // 2), environment.config.k)
    consensus_names = ("AP", "MO")
    return [
        [
            GroupQuery(
                group=rng.choice(groups),
                k=rng.choice(ks),
                consensus=rng.choice(consensus_names),
                period_index=rng.randrange(n_periods),
            )
            for _ in range(n_queries)
        ]
        for _ in range(n_clients)
    ]


async def run_load(
    service: GrecaService, client_queries: Sequence[Sequence[GroupQuery]]
) -> tuple[list[QueryResponse], float]:
    """Fire every client's queries concurrently; responses plus wall seconds.

    Each client submits its queries sequentially (a closed-loop client);
    clients run concurrently, which is what exercises the coalescing path.
    Responses come back flattened in client-major order.
    """

    async def one_client(queries: Sequence[GroupQuery]) -> list[QueryResponse]:
        return [await service.submit(query) for query in queries]

    start = time.perf_counter()
    per_client = await asyncio.gather(
        *(one_client(queries) for queries in client_queries)
    )
    wall_seconds = time.perf_counter() - start
    responses = [response for client in per_client for response in client]
    return responses, wall_seconds
