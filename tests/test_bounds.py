"""Tests for repro.core.bounds (interval arithmetic)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    Interval,
    interval_abs_difference,
    interval_mean,
    interval_min,
    interval_sum,
    interval_variance,
)
from repro.exceptions import AlgorithmError


class TestInterval:
    def test_invalid_interval_rejected(self):
        with pytest.raises(AlgorithmError):
            Interval(2.0, 1.0)

    def test_exact_and_between(self):
        assert Interval.exact(3.0) == Interval(3.0, 3.0)
        assert Interval.between(4.0, 1.0) == Interval(1.0, 4.0)

    def test_predicates(self):
        interval = Interval(1.0, 3.0)
        assert not interval.is_exact
        assert Interval.exact(2.0).is_exact
        assert interval.width == 2.0
        assert interval.contains(1.0) and interval.contains(3.0)
        assert not interval.contains(3.1)

    def test_addition(self):
        assert Interval(1, 2) + Interval(3, 5) == Interval(4, 7)

    def test_scale(self):
        assert Interval(1, 2).scale(3.0) == Interval(3, 6)
        with pytest.raises(AlgorithmError):
            Interval(1, 2).scale(-1.0)

    def test_multiply_nonnegative(self):
        assert Interval(1, 2).multiply_nonnegative(Interval(3, 4)) == Interval(3, 8)
        assert Interval(0, 2).multiply_nonnegative(Interval(0, 4)) == Interval(0, 8)
        with pytest.raises(AlgorithmError):
            Interval(-1, 2).multiply_nonnegative(Interval(0, 1))

    def test_shift_and_clamp(self):
        assert Interval(1, 2).shift(0.5) == Interval(1.5, 2.5)
        assert Interval(-1, 7).clamp(0, 5) == Interval(0, 5)


class TestAggregates:
    def test_interval_sum(self):
        assert interval_sum([Interval(1, 2), Interval(0, 3)]) == Interval(1, 5)
        assert interval_sum([]) == Interval(0, 0)

    def test_interval_mean_and_min(self):
        intervals = [Interval(1, 3), Interval(2, 4)]
        assert interval_mean(intervals) == Interval(1.5, 3.5)
        assert interval_min(intervals) == Interval(1, 3)
        with pytest.raises(AlgorithmError):
            interval_mean([])
        with pytest.raises(AlgorithmError):
            interval_min([])

    def test_abs_difference_overlapping(self):
        result = interval_abs_difference(Interval(1, 3), Interval(2, 5))
        assert result.low == 0.0
        assert result.high == 4.0

    def test_abs_difference_disjoint(self):
        result = interval_abs_difference(Interval(0, 1), Interval(3, 4))
        assert result.low == 2.0
        assert result.high == 4.0

    def test_variance_bounds_are_sound(self):
        intervals = [Interval(0, 1), Interval(2, 3), Interval(0, 3)]
        result = interval_variance(intervals)
        import statistics

        for values in ([0, 2, 0], [1, 3, 3], [0.5, 2.5, 1.5], [1, 2, 0]):
            assert result.low - 1e-9 <= statistics.pvariance(values) <= result.high + 1e-9

    def test_variance_rejects_empty(self):
        with pytest.raises(AlgorithmError):
            interval_variance([])


@given(
    boxes=st.lists(
        st.tuples(st.floats(min_value=-5, max_value=5), st.floats(min_value=-5, max_value=5)),
        min_size=1,
        max_size=6,
    ),
    fractions=st.lists(st.floats(min_value=0, max_value=1), min_size=6, max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_aggregate_soundness(boxes, fractions):
    """Sum, mean, min and |difference| of points inside boxes stay inside the bounds."""
    intervals = [Interval.between(a, b) for a, b in boxes]
    points = [
        interval.low + fraction * (interval.high - interval.low)
        for interval, fraction in zip(intervals, fractions)
    ]
    total = interval_sum(intervals)
    assert total.low - 1e-9 <= sum(points) <= total.high + 1e-9
    mean = interval_mean(intervals)
    assert mean.low - 1e-9 <= sum(points) / len(points) <= mean.high + 1e-9
    minimum = interval_min(intervals)
    assert minimum.low - 1e-9 <= min(points) <= minimum.high + 1e-9
    if len(points) >= 2:
        diff = interval_abs_difference(intervals[0], intervals[1])
        assert diff.low - 1e-9 <= abs(points[0] - points[1]) <= diff.high + 1e-9
