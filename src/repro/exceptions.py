"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class DataError(ReproError):
    """Raised when an input dataset is malformed or inconsistent."""


class UnknownUserError(DataError):
    """Raised when a user id is not present in the dataset."""

    def __init__(self, user_id: object) -> None:
        super().__init__(f"unknown user: {user_id!r}")
        self.user_id = user_id


class UnknownItemError(DataError):
    """Raised when an item id is not present in the dataset."""

    def __init__(self, item_id: object) -> None:
        super().__init__(f"unknown item: {item_id!r}")
        self.item_id = item_id


class TimelineError(ReproError):
    """Raised for invalid time periods or timeline configurations."""


class AffinityError(ReproError):
    """Raised when affinity values cannot be computed or are invalid."""


class GroupError(ReproError):
    """Raised for invalid group specifications (empty groups, duplicates...)."""


class ConsensusError(ReproError):
    """Raised for invalid consensus-function configurations."""


class AlgorithmError(ReproError):
    """Raised when a top-k algorithm is invoked with invalid arguments."""


class ConfigurationError(ReproError):
    """Raised when an experiment or generator configuration is invalid."""


class DispatchError(ReproError):
    """Raised when a supervised parallel dispatch cannot produce results.

    The supervisor (:class:`repro.parallel.resilience.SupervisedDispatch`)
    absorbs worker crashes, timeouts and transient exceptions by retrying
    and degrading to the serial executor; this error surfaces only once
    every recovery tier is exhausted or disabled.  The triggering failure
    rides along as ``__cause__``.
    """


class ShardTimeoutError(DispatchError):
    """Raised (and recorded) when a shard exceeds its wall-clock timeout."""

    def __init__(self, shard: int, timeout: float) -> None:
        super().__init__(f"shard {shard} exceeded its {timeout:.3f}s wall-clock timeout")
        self.shard = shard
        self.timeout = timeout

    def __reduce__(self):
        return (type(self), (self.shard, self.timeout))


class WorkerCrashError(DispatchError):
    """Raised (and recorded) when a worker process died mid-shard."""

    def __init__(self, shard: int, detail: str = "") -> None:
        message = f"worker process died while running shard {shard}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.shard = shard
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.shard, self.detail))


class ServiceError(ReproError):
    """Raised by the serving layer (:mod:`repro.service`).

    Covers lifecycle misuse (submitting to a stopped service, starting a
    service twice) and queue overflow under load shedding.  Dispatch
    failures inside a request are *not* wrapped: the triggering
    :class:`DispatchError` (or worker exception) propagates to the awaiting
    client unchanged so callers can distinguish failure modes.
    """


class InjectedFaultError(ReproError):
    """The ``raise`` fault mode of the deterministic fault-injection harness.

    Raised worker-side by :meth:`repro.parallel.resilience.FaultPlan.trigger`
    at the planned (shard, task-position, attempt) coordinate.  Deliberately
    *not* a :class:`DispatchError`: it impersonates an arbitrary user/worker
    exception, which is exactly what the chaos suite wants the supervisor to
    recover from.
    """

    def __init__(self, shard: int, position: int, attempt: int) -> None:
        super().__init__(
            f"injected fault: shard {shard}, task position {position}, attempt {attempt}"
        )
        self.shard = shard
        self.position = position
        self.attempt = attempt

    def __reduce__(self):
        # Exceptions cross the worker→parent pickle boundary; without this,
        # unpickling would call __init__ with the message alone and the
        # reconstruction failure would poison the whole pool.
        return (type(self), (self.shard, self.position, self.attempt))
