"""repro — reproduction of "Group Recommendation with Temporal Affinities" (EDBT 2015).

The package is organised around the paper's architecture:

* :mod:`repro.data` — ratings, MovieLens loader/generator, social graph and
  the synthetic Facebook-study cohort.
* :mod:`repro.cf` — collaborative filtering producing absolute preferences.
* :mod:`repro.core` — temporal affinity models, relative preferences, group
  consensus functions and the GRECA top-k algorithm.
* :mod:`repro.groups` — ad-hoc group formation (size, cohesiveness, affinity).
* :mod:`repro.topk` — generic Fagin-style TA / NRA substrate.
* :mod:`repro.study` — the user-study (quality) simulator.
* :mod:`repro.experiments` — drivers regenerating every table and figure of
  the paper's evaluation.

Quickstart::

    from repro import GroupRecommender, one_year_timeline
    from repro.data import generate_movielens_like, SocialNetworkGenerator

    ratings = generate_movielens_like()
    timeline = one_year_timeline()
    social = SocialNetworkGenerator().generate(ratings.users[:80], timeline)
    recommender = GroupRecommender(ratings, social, timeline,
                                   affinity_universe=social.users).fit()
    result = recommender.recommend(group=list(social.users[:4]), k=5, consensus="PD")
    print(result.items, f"saved {result.saveup:.0f}% of accesses")
"""

from repro.core import (
    ConsensusFunction,
    Greca,
    GrecaIndex,
    GrecaResult,
    GroupRecommendation,
    GroupRecommender,
    Period,
    PreferenceModel,
    Timeline,
    make_consensus,
    one_year_timeline,
    uniform_timeline,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "ConsensusFunction",
    "Greca",
    "GrecaIndex",
    "GrecaResult",
    "GroupRecommendation",
    "GroupRecommender",
    "Period",
    "PreferenceModel",
    "ReproError",
    "Timeline",
    "__version__",
    "make_consensus",
    "one_year_timeline",
    "uniform_timeline",
]
