"""Measure delta-apply latency vs full-rebuild cost, append to ``BENCH_engine.json``.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_epoch.py --label epoch-after

The measurement behind the incremental-updates subsystem
(:mod:`repro.updates`): a warm :class:`ScalabilityEnvironment` — caches,
factories and aprefs populated by a query wave, the state a live service
carries — ingests N random :class:`RatingDelta` batches through
``apply_delta`` (touched-row similarity refresh, partial apref patching,
append-only affinity extension, memo invalidation, shm retirement).  The
per-delta apply latency is compared against what a non-incremental system
pays for the same freshness: one full rebuild over the merged history
(substrate merge + CF fit + factory re-warm).

The record refuses to exist unless the post-delta records are bit-identical
to the rebuilt environment's — the equivalence oracle is enforced, not
sampled — so a faster apply path can never silently buy its speed with a
wrong answer.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment  # noqa: E402
from repro.updates import EpochManager, random_deltas  # noqa: E402


def bench_epoch(n_deltas: int = 5) -> dict[str, object]:
    """Incremental apply over a warm environment vs one full rebuild."""
    config = ScalabilityConfig()
    base = ScalabilityEnvironment(config)
    base_substrate = base.substrate
    groups = base.random_groups()
    base.run_records(groups)  # warm the caches a live service would carry

    deltas = random_deltas(
        base.ratings,
        base.social,
        base.timeline,
        n_deltas=n_deltas,
        seed=17,
        new_period_every=3,
    )

    manager = EpochManager(base)
    apply_seconds: list[float] = []
    for delta in deltas:
        start = time.perf_counter()
        manager.apply(delta)
        apply_seconds.append(time.perf_counter() - start)

    start = time.perf_counter()
    incremental_records = base.run_records(groups)
    requery_seconds = time.perf_counter() - start

    # What the same freshness costs without the incremental path: merge the
    # history, rebuild the environment (CF fit included) and re-warm the
    # same query set.
    start = time.perf_counter()
    oracle = ScalabilityEnvironment(config, substrate=base_substrate.with_deltas(deltas))
    oracle_records = oracle.run_records(groups)
    full_rebuild_seconds = time.perf_counter() - start

    identical = incremental_records == oracle_records
    oracle.close()
    base.close()
    if not identical:  # the record must never hide an equivalence break
        raise SystemExit("epoch-bench incremental records diverged from full rebuild")

    apply_mean = sum(apply_seconds) / len(apply_seconds)
    return {
        "n_users": config.n_users,
        "n_items": config.n_items,
        "n_ratings": config.n_ratings,
        "n_groups": len(groups),
        "n_deltas": n_deltas,
        "final_epoch": manager.epoch,
        "full_rebuilds_taken": sum(1 for r in manager.reports if r.full_rebuild),
        "apply_seconds_each": [round(s, 4) for s in apply_seconds],
        "apply_seconds_mean": round(apply_mean, 4),
        "requery_after_deltas_seconds": round(requery_seconds, 4),
        "full_rebuild_seconds": round(full_rebuild_seconds, 4),
        "rebuild_over_apply": round(full_rebuild_seconds / apply_mean, 1),
        "identical": identical,
    }


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:  # pragma: no cover - git metadata is best-effort
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="short tag for this measurement")
    parser.add_argument(
        "--deltas", type=int, default=5, help="number of delta batches to apply (default: 5)"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the record to PATH instead of appending to BENCH_engine.json "
        "(CI uses this to upload the measurement as an artifact without "
        "mutating the committed trajectory)",
    )
    args = parser.parse_args(argv)

    record = {
        "label": args.label,
        "git": git_revision(),
        "python": platform.python_version(),
        "epoch_updates": bench_epoch(n_deltas=args.deltas),
    }

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    else:
        target = os.path.join(ROOT, "BENCH_engine.json")
        history = []
        if os.path.exists(target):
            with open(target, "r", encoding="utf-8") as handle:
                history = json.load(handle)
        history.append(record)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
