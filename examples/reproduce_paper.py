"""Reproduce every table and figure of the paper in one go.

Thin wrapper around :mod:`repro.experiments.runner`: builds the study and
scalability environments once and prints, for each experiment, the same
rows/series the paper reports (next to the paper's own values where known).

Run with::

    python examples/reproduce_paper.py              # everything
    python examples/reproduce_paper.py figure5      # a single experiment
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments.runner import main


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
