"""Shard payloads and the worker-side evaluation loop.

A shard ships three things to its worker process:

* the :class:`~repro.core.greca.GrecaIndexFactory` of every group appearing
  in the shard (pickled once per shard, not once per task — sweeps that
  evaluate one group at many sweep points reuse the shard-local factory and
  its memoised column-sliced substrates exactly like the serial reuse layer);
* one :class:`GroupEvalTask` per evaluation, carrying the *materialised*
  affinity components (static / periodic / averages / time model), the
  consensus function and the query knobs — everything the parent resolved, so
  the worker never touches the recommender, the social network or the
  dataset; and
* the shard's original task indices, so the merger can scatter the records
  back into task order.

:func:`run_shard` is the worker entry point: it rebuilds each task's index
through ``factory.build`` — the exact code path the serial reuse layer uses,
proven bit-identical to fresh construction by the PR 2 equivalence tests —
and runs :class:`~repro.core.greca.Greca` on it.  Results come back as
:class:`GroupRunRecord` values: plain, picklable scalars only (no numpy
arrays, no list objects), which keeps the result pipes small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.affinity import AffinityColumns
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory, GrecaResult
from repro.core.consensus import ConsensusFunction
from repro.exceptions import ConfigurationError

#: Canonical group key used to address factories in a payload: a plain tuple
#: of python ints, hashable and stable across pickling round-trips.
GroupKey = tuple[int, ...]


def group_key(group) -> GroupKey:
    """Canonicalise a group into a hashable, shipment-stable key."""
    return tuple(int(member) for member in group)


@dataclass(frozen=True)
class GroupEvalTask:
    """One group evaluation with fully materialised inputs.

    The affinity inputs travel one of two ways:

    * **dict path** — ``static`` / ``periodic`` / ``averages`` hold the
      output of :meth:`~repro.core.recommender.GroupRecommender
      .affinity_components` (or the raw case inputs in the engine tests),
      pickled by value with the task;
    * **columnar path** — ``affinity_ref`` holds an
      :class:`~repro.core.affinity.AffinityColumns` (in-process) or an
      :class:`~repro.parallel.shm.ShmAffinityHandle` (shared-memory
      descriptors) covering the group's *full* timeline, and ``n_periods``
      selects the query period's prefix.  The dict fields must then be
      empty; the worker reconstructs them through the exact-float façade,
      so both paths build bit-identical indexes.

    ``items`` optionally restricts the candidate universe (``None`` means
    the factory's full catalogue).  ``kernel`` selects the round-kernel
    backend the worker-side :class:`~repro.core.greca.Greca` runs on
    (``None`` means the reference tier); it travels with the task so warm
    persistent-pool workers honour the caller's policy on every dispatch.
    """

    group: GroupKey
    k: int
    consensus: ConsensusFunction
    static: Mapping[tuple[int, int], float]
    periodic: Mapping[int, Mapping[tuple[int, int], float]]
    averages: Mapping[int, float]
    time_model: str
    items: tuple[int, ...] | None = None
    check_interval: int | None = None
    affinity_ref: object | None = None
    n_periods: int | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.affinity_ref is not None and (self.static or self.periodic or self.averages):
            raise ConfigurationError(
                "a task carries either affinity dictionaries or an affinity_ref, not both"
            )


@dataclass(frozen=True)
class GroupRunRecord:
    """Outcome of one GRECA run, reduced to picklable scalars.

    ``percent_sa`` is :attr:`GrecaResult.percent_sequential_accesses`
    evaluated worker-side — the same float the serial path computes, so
    downstream means are bit-identical.
    """

    group: GroupKey
    items: tuple[int, ...]
    percent_sa: float
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    rounds: int
    stopping: str
    consensus: str
    k: int


def record_from_result(group: GroupKey, result: GrecaResult) -> GroupRunRecord:
    """Reduce a :class:`GrecaResult` to its equivalence-relevant facts."""
    return GroupRunRecord(
        group=group,
        items=tuple(result.items),
        percent_sa=result.percent_sequential_accesses,
        sequential_accesses=result.sequential_accesses,
        random_accesses=result.random_accesses,
        total_entries=result.total_entries,
        rounds=result.rounds,
        stopping=result.stopping,
        consensus=result.consensus,
        k=result.k,
    )


@dataclass(frozen=True)
class ShardPayload:
    """Everything one worker needs to evaluate one shard.

    ``factories`` maps each group either to its
    :class:`~repro.core.greca.GrecaIndexFactory` (pickle shipment) or to a
    :class:`~repro.parallel.shm.ShmFactoryHandle` (zero-copy shared-memory
    shipment: only segment descriptors cross the pickle boundary, and
    :func:`run_shard` reattaches the arrays worker-side).

    ``fault_plan`` is the deterministic fault-injection harness of
    :mod:`repro.parallel.resilience`: when set, :func:`run_shard` consults
    it before every task and crashes (``os._exit``), raises or stalls at
    the planned (shard, task-position) coordinates.  ``attempt`` is the
    supervisor's dispatch-attempt counter for this shard — retries re-ship
    the payload with ``attempt`` incremented, which is what lets a plan
    fire on the first N attempts and then let the retry succeed without
    any cross-process state.  Both default to the fault-free shape, so
    payloads built by unsupervised callers are unchanged.

    ``min_generation`` is the epoch-adoption floor: the smallest shm export
    generation still live in the shipping registry
    (:attr:`~repro.parallel.shm.SharedArrayRegistry.generation_floor`).
    Warm workers purge cache entries below it before running any task
    (:func:`~repro.parallel.shm.purge_stale`), which is how a persistent
    pool adopts a new epoch — retired-segment caches dropped in-worker —
    without being restarted.  ``0`` (the pickle-shipment default) purges
    nothing.
    """

    shard_index: int
    task_indices: tuple[int, ...]
    tasks: tuple[GroupEvalTask, ...]
    factories: Mapping[GroupKey, object]
    fault_plan: "object | None" = None
    attempt: int = 0
    min_generation: int = 0

    def __post_init__(self) -> None:
        if len(self.task_indices) != len(self.tasks):
            raise ConfigurationError(
                f"shard {self.shard_index}: {len(self.task_indices)} indices "
                f"for {len(self.tasks)} tasks"
            )
        missing = {task.group for task in self.tasks} - set(self.factories)
        if missing:
            raise ConfigurationError(
                f"shard {self.shard_index}: no factory shipped for groups {sorted(missing)}"
            )


def build_task_index(task: GroupEvalTask, factory: GrecaIndexFactory) -> GrecaIndex:
    """Build the task's index through whichever affinity path it carries."""
    if task.affinity_ref is not None:
        from repro.parallel.shm import resolve_affinity_columns

        columns = resolve_affinity_columns(task.affinity_ref)
        return factory.build_columns(
            columns,
            time_model=task.time_model,
            items=task.items,
            n_periods=task.n_periods,
        )
    return factory.build(
        task.static,
        periodic=task.periodic,
        averages=task.averages,
        time_model=task.time_model,
        items=task.items,
    )


def run_task(task: GroupEvalTask, factory: GrecaIndexFactory) -> GroupRunRecord:
    """Evaluate one task against its group's factory (worker-side)."""
    index = build_task_index(task, factory)
    algorithm = Greca(
        task.consensus, k=task.k, check_interval=task.check_interval, kernel=task.kernel
    )
    return record_from_result(task.group, algorithm.run(index))


def _stable_index_key(task: GroupEvalTask, factory_ref: object) -> tuple | None:
    """A content-stable memo key for the task's index, or ``None``.

    Only fully handle-addressed tasks qualify: the factory and the affinity
    columns must both have arrived as shared-memory handles, whose values
    identify the underlying segments across dispatches — that is what makes
    the per-process index memo safe on a warm persistent pool.  By-value
    shipments get no cross-payload key (a fresh pickle copy has no stable
    identity); they still batch within one payload via the shard-local memo.

    Handle equality covers the full descriptor — segment name, shape, dtype,
    offset, *storage backend* and export generation — so an shm handle and
    an mmap handle for the same logical column, or two exports over a
    recycled segment name, can never alias one memo entry.
    """
    from repro.parallel.shm import ShmAffinityHandle, ShmFactoryHandle

    if not isinstance(factory_ref, ShmFactoryHandle):
        return None
    if not isinstance(task.affinity_ref, ShmAffinityHandle):
        return None
    return (factory_ref, task.affinity_ref, task.n_periods, task.items, task.time_model)


def _shard_local_key(task: GroupEvalTask) -> tuple | None:
    """A within-payload memo key (id-based; the payload keeps the refs alive)."""
    if task.affinity_ref is None:
        return None
    return (task.group, id(task.affinity_ref), task.n_periods, task.items, task.time_model)


def run_shard(payload: ShardPayload) -> tuple[GroupRunRecord, ...]:
    """Worker entry point: evaluate every task of a shard, in shard order.

    Shared-memory factory and affinity handles are materialised (and
    memoised per worker process, LRU-bounded) before any task runs, so a
    shard's tasks — and, under a persistent pool, every later shard of the
    same factory — share one attached, zero-copy substrate.

    Multi-query batching: a payload carries *all* sweep points of its
    groups, and tasks that resolve to the same index inputs — a k or
    consensus sweep, repeated periods — reuse one built index instead of
    rebuilding it per task.  Handle-addressed indexes additionally persist
    in the per-process memo, so a warm pool re-serves them across
    dispatches.  Index reuse is bit-identical to fresh construction (the
    PR 2 reuse-layer guarantee; indexes are immutable between runs).

    Must stay a module-level function so process pools can address it by
    qualified name regardless of the start method.
    """
    from repro.parallel import shm

    if payload.min_generation:
        # Epoch adoption on a warm pool: drop caches (and attachments) of
        # exports the shipping registry has since retired, before anything
        # in this dispatch can be served from them.
        shm.purge_stale(payload.min_generation)
    factories = {key: shm.resolve_factory(value) for key, value in payload.factories.items()}
    local_indexes: dict[tuple, GrecaIndex] = {}
    records = []
    for position, task in enumerate(payload.tasks):
        if payload.fault_plan is not None:
            # Deterministic chaos hook: the plan decides, from (shard,
            # position, attempt) alone, whether to crash, raise or stall
            # here.  A payload without a plan never pays this branch.
            payload.fault_plan.trigger(payload.shard_index, position, payload.attempt)
        factory = factories[task.group]
        stable_key = _stable_index_key(task, payload.factories[task.group])
        local_key = _shard_local_key(task)
        index = None
        if stable_key is not None:
            index = shm.cached_index(stable_key)
        if index is None and local_key is not None:
            index = local_indexes.get(local_key)
        if index is None:
            index = build_task_index(task, factory)
            if stable_key is not None:
                shm.store_index(stable_key, index)
            elif local_key is not None:
                local_indexes[local_key] = index
        algorithm = Greca(
            task.consensus, k=task.k, check_interval=task.check_interval, kernel=task.kernel
        )
        records.append(record_from_result(task.group, algorithm.run(index)))
    return tuple(records)
