"""Interval arithmetic for partially known scores.

GRECA maintains, for every encountered item, a lower and an upper bound on
its final consensus score (Section 3.2).  Those bounds are obtained by
propagating per-component intervals — "this user's absolute preference for
the item lies somewhere in [0, cursor value]" — through the preference and
consensus formulas.  :class:`Interval` implements the small amount of
interval arithmetic that this requires: addition, multiplication by
non-negative intervals, min/mean aggregation and the interval of an absolute
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import AlgorithmError


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` bounding an unknown scalar."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high + 1e-12:
            raise AlgorithmError(f"invalid interval: low {self.low} > high {self.high}")

    # -- constructors ----------------------------------------------------------------

    @staticmethod
    def exact(value: float) -> "Interval":
        """A degenerate interval holding one known value."""
        return Interval(value, value)

    @staticmethod
    def between(low: float, high: float) -> "Interval":
        """An interval after normalising argument order."""
        return Interval(min(low, high), max(low, high))

    # -- predicates -------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """``True`` when the value is fully determined."""
        return self.low == self.high

    @property
    def width(self) -> float:
        """The uncertainty span ``high - low``."""
        return self.high - self.low

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """``True`` if ``value`` lies inside the interval (within tolerance)."""
        return self.low - tolerance <= value <= self.high + tolerance

    # -- arithmetic --------------------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a known non-negative scalar."""
        if factor < 0:
            raise AlgorithmError("scale() requires a non-negative factor")
        return Interval(self.low * factor, self.high * factor)

    def multiply_nonnegative(self, other: "Interval") -> "Interval":
        """Product of two intervals that are both known to be non-negative."""
        if self.low < -1e-12 or other.low < -1e-12:
            raise AlgorithmError("multiply_nonnegative() requires non-negative intervals")
        return Interval(max(0.0, self.low) * max(0.0, other.low), self.high * other.high)

    def shift(self, delta: float) -> "Interval":
        """Add a known constant."""
        return Interval(self.low + delta, self.high + delta)

    def clamp(self, low: float, high: float) -> "Interval":
        """Clamp both bounds into ``[low, high]``."""
        return Interval(
            min(high, max(low, self.low)),
            min(high, max(low, self.high)),
        )


def interval_sum(intervals: Iterable[Interval]) -> Interval:
    """Sum of a collection of intervals (the empty sum is [0, 0])."""
    low = 0.0
    high = 0.0
    for interval in intervals:
        low += interval.low
        high += interval.high
    return Interval(low, high)


def interval_mean(intervals: Sequence[Interval]) -> Interval:
    """Mean of intervals (errors on an empty sequence)."""
    if not intervals:
        raise AlgorithmError("cannot take the mean of zero intervals")
    total = interval_sum(intervals)
    return Interval(total.low / len(intervals), total.high / len(intervals))


def interval_min(intervals: Sequence[Interval]) -> Interval:
    """Interval of the minimum of the bounded values."""
    if not intervals:
        raise AlgorithmError("cannot take the minimum of zero intervals")
    return Interval(
        min(interval.low for interval in intervals),
        min(interval.high for interval in intervals),
    )


def interval_abs_difference(left: Interval, right: Interval) -> Interval:
    """Interval of ``|a - b|`` when ``a`` in ``left`` and ``b`` in ``right``."""
    high = max(left.high - right.low, right.high - left.low, 0.0)
    if left.high < right.low:
        low = right.low - left.high
    elif right.high < left.low:
        low = left.low - right.high
    else:
        low = 0.0  # the intervals overlap, the difference can be zero
    return Interval(low, high)


def interval_variance(intervals: Sequence[Interval]) -> Interval:
    """Conservative interval of the population variance of the bounded values.

    The exact range of the variance over a box of intervals is expensive to
    compute; GRECA only needs *sound* bounds, so we use a conservative
    estimate: the lower bound is 0 unless all intervals are pairwise disjoint
    around distinct values, and the upper bound is the variance of the most
    spread-out corner configuration (each value pushed to the extreme farther
    from the midpoint of the combined range).
    """
    if not intervals:
        raise AlgorithmError("cannot take the variance of zero intervals")
    overall_low = min(interval.low for interval in intervals)
    overall_high = max(interval.high for interval in intervals)
    midpoint = 0.5 * (overall_low + overall_high)
    extremes = [
        interval.low if abs(interval.low - midpoint) >= abs(interval.high - midpoint) else interval.high
        for interval in intervals
    ]
    mean = sum(extremes) / len(extremes)
    upper = sum((value - mean) ** 2 for value in extremes) / len(extremes)

    # Lower bound: if every interval can reach a common value the variance can be 0.
    common_low = max(interval.low for interval in intervals)
    common_high = min(interval.high for interval in intervals)
    if common_low <= common_high:
        lower = 0.0
    else:
        # The intervals cannot all overlap; use the variance of the
        # "most compressed" configuration as a (still sound) lower bound of 0.
        lower = 0.0
    return Interval(lower, max(lower, upper))
