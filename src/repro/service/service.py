"""The GRECA serving front-end: queries in, bit-identical records out.

:class:`GrecaService` turns the warm substrate the experiment layer built —
memoised per-group factories, persistent worker pools, zero-copy shm
shipment, supervised fault-tolerant dispatch — into a long-lived query
service.  Concurrent clients ``await service.submit(GroupQuery(...))``; the
service coalesces whatever arrives within a small batching window into one
**group-major** task list (the same ordering discipline
:meth:`~repro.experiments.scalability.ScalabilityEnvironment.run_sweep`
uses, so contiguous shards ship each group's factory once), dispatches the
batch through the environment's executor exactly as a figure driver would,
and scatters the records back to the awaiting clients with per-query
latency accounting.

Three clocks per query (:class:`QueryLatency`):

* **queue** — submit to batch pickup (the coalescing wait plus any backlog
  behind earlier batches);
* **dispatch** — the environment evaluation call, shard planning to merged
  records;
* **merge** — scatter-back from the merged batch to this query's future.

Equivalence is the whole point: a response's record is bit-identical to the
serial ``task_for`` + ``run_task`` reference path for the same query, no
matter how requests interleave or batch (``tests/test_service.py``).  The
dispatch itself runs on a single worker thread, so batches are serialized
against each other and the environment's dispatch-report trail stays
ordered; thread-safety of the substrate underneath (pool lifecycle, shm
export memos, factory memos) is the pool/registry layer's contract.
"""

from __future__ import annotations

import asyncio
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.consensus import ConsensusFunction
from repro.exceptions import ConfigurationError, ServiceError
from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment
from repro.parallel import (
    EXECUTOR_SUPERVISED,
    DispatchReport,
    ExecutionPolicy,
    FaultPlan,
    GroupEvalTask,
    GroupRunRecord,
    group_key,
    run_task,
    validate_executor_name,
    validate_kernel_name,
    validate_storage_name,
)

#: Queue sentinel that tells the batch loop to finish the current backlog
#: and exit (graceful drain).
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer.

    ``executor=None`` serves every batch through the in-process serial
    reference path (useful as a latency baseline and for equivalence
    harnesses); the default routes batches through the supervised
    fault-tolerant tier over the environment's warm persistent pool.
    ``max_batch_delay`` is the coalescing window: after the first query of
    a batch arrives, the batcher waits at most this long (seconds) for
    companions before dispatching.  ``max_queue`` bounds the submit queue —
    a full queue sheds load with :class:`ServiceError` instead of growing
    without bound.

    ``storage`` selects the column-store backend dispatches export into
    (``"shm"`` shared memory — the default — or ``"mmap"`` spool files);
    ``kernel`` selects the GRECA round-kernel tier every batch's runs
    execute on (``None`` = the reference tier; all registered kernels are
    bit-identical).  The execution knobs can instead arrive bundled as
    ``policy=`` (an :class:`~repro.parallel.ExecutionPolicy`); combining
    ``policy=`` with a non-default ``n_workers`` / ``executor`` /
    ``storage`` / ``kernel`` raises, mirroring the
    :func:`~repro.parallel.resolve_policy` mixing rule.
    """

    n_workers: int = 2
    executor: str | None = EXECUTOR_SUPERVISED
    max_batch_size: int = 32
    max_batch_delay: float = 0.005
    max_queue: int = 1024
    storage: str | None = None
    kernel: str | None = None
    policy: ExecutionPolicy | None = None

    def __post_init__(self) -> None:
        if self.policy is not None:
            if not isinstance(self.policy, ExecutionPolicy):
                raise ConfigurationError(
                    f"policy must be an ExecutionPolicy, got {type(self.policy).__name__}"
                )
            mixed = [
                name
                for name, value, default in (
                    ("n_workers", self.n_workers, 2),
                    ("executor", self.executor, EXECUTOR_SUPERVISED),
                    ("storage", self.storage, None),
                    ("kernel", self.kernel, None),
                )
                if value != default
            ]
            if mixed:
                spelt = ", ".join(sorted(mixed))
                raise ConfigurationError(
                    f"pass either policy= or the legacy knobs ({spelt}), not both"
                )
        if self.executor is not None:
            validate_executor_name(self.executor)
        if self.storage is not None:
            validate_storage_name(self.storage)
        if self.kernel is not None:
            validate_kernel_name(self.kernel)
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.max_batch_delay < 0:
            raise ConfigurationError("max_batch_delay must be >= 0")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")

    def execution_policy(self) -> ExecutionPolicy:
        """The dispatch policy every batch runs under (one resolution point).

        An explicit ``policy=`` wins.  Otherwise the legacy knobs fold in:
        ``executor=None`` keeps its historical meaning — the in-process
        serial reference path, ``n_workers`` notwithstanding — and any other
        executor runs sharded at ``n_workers`` over ``storage``.
        """
        if self.policy is not None:
            return self.policy
        if self.executor is None:
            return ExecutionPolicy(storage=self.storage, kernel=self.kernel)
        return ExecutionPolicy(
            n_workers=self.n_workers,
            executor=self.executor,
            storage=self.storage,
            kernel=self.kernel,
        )


@dataclass(frozen=True)
class GroupQuery:
    """One group-recommendation request.

    ``None`` knobs fall back to the environment's config defaults, exactly
    like the corresponding :meth:`ScalabilityEnvironment.task_for`
    arguments.  ``period_index`` addresses the environment's timeline by
    position (``None`` = the current period) so clients never construct
    :class:`~repro.core.timeline.Period` objects.
    """

    group: tuple[int, ...]
    k: int | None = None
    consensus: str | ConsensusFunction | None = None
    affinity: str = "discrete"
    n_items: int | None = None
    period_index: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", group_key(self.group))
        if not self.group:
            raise ConfigurationError("a query needs a non-empty group")


@dataclass(frozen=True)
class QueryLatency:
    """Per-query latency accounting, one entry per clock plus the batch size."""

    queue_seconds: float
    dispatch_seconds: float
    merge_seconds: float
    total_seconds: float
    batch_size: int


@dataclass(frozen=True)
class QueryResponse:
    """One served query: its record, its latency split, its dispatch report.

    ``report`` is the :class:`DispatchReport` of the supervised dispatch
    that carried this query's batch (``None`` for unsupervised executors) —
    an honest account of any timeouts, retries, pool rebuilds or serial
    degradation the batch survived.
    """

    query: GroupQuery
    record: GroupRunRecord
    latency: QueryLatency
    report: DispatchReport | None = None


@dataclass
class _PendingQuery:
    query: GroupQuery
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.perf_counter)


class GrecaService:
    """Asyncio front-end batching concurrent queries onto the warm substrate.

    Lifecycle: ``await start()`` (or ``async with``), any number of
    concurrent ``await submit(query)`` calls, ``await stop()``.  ``stop``
    drains: queries already accepted are dispatched and answered before the
    batcher exits, then the dispatch thread joins and — when the service
    owns its environment — the environment's pools and shm segments are
    released, leaving ``/dev/shm`` empty.
    """

    def __init__(
        self,
        environment: ScalabilityEnvironment | None = None,
        config: ServiceConfig | None = None,
        scalability_config: ScalabilityConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if environment is not None and scalability_config is not None:
            raise ConfigurationError(
                "pass either a built environment or a scalability_config, not both"
            )
        self.config = config or ServiceConfig()
        self.environment = environment
        self.fault_plan = fault_plan
        self._owns_environment = environment is None
        self._scalability_config = scalability_config
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._batcher: asyncio.Task | None = None
        self._dispatch_pool: ThreadPoolExecutor | None = None
        self._accepting = False
        #: Size of every batch dispatched so far (test/observability hook).
        self.batch_sizes: list[int] = []

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """``True`` between a successful :meth:`start` and :meth:`stop`."""
        return self._queue is not None

    async def start(self) -> "GrecaService":
        """Build the environment (if not supplied) and start accepting queries."""
        if self._queue is not None:
            raise ServiceError("service already started")
        self._loop = asyncio.get_running_loop()
        if self.environment is None:
            # Substrate construction (dataset + CF fit) takes seconds; keep
            # the event loop responsive while it builds.
            config = self._scalability_config
            self.environment = await self._loop.run_in_executor(
                None, lambda: ScalabilityEnvironment(config)
            )
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        # One dispatch thread: batches serialize against each other, so the
        # environment's dispatch_reports trail maps 1:1 onto batches.
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="greca-dispatch"
        )
        self._batcher = self._loop.create_task(self._batch_loop())
        self._accepting = True
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, settle the backlog, release owned resources.

        With ``drain=True`` (the default, and what the SIGTERM/SIGINT
        handlers use) every already-accepted query is dispatched and
        answered first; ``drain=False`` fails queued-but-undispatched
        queries with :class:`ServiceError` instead.  Idempotent.
        """
        if self._queue is None:
            return
        self._accepting = False
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is not _SHUTDOWN and not item.future.done():
                    item.future.set_exception(
                        ServiceError("service stopped before this query dispatched")
                    )
        await self._queue.put(_SHUTDOWN)
        if self._batcher is not None:
            await self._batcher
            self._batcher = None
        if self._dispatch_pool is not None:
            self._dispatch_pool.shutdown(wait=True)
            self._dispatch_pool = None
        self._queue = None
        if self._owns_environment and self.environment is not None:
            self.environment.close()

    async def __aenter__(self) -> "GrecaService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    def install_signal_handlers(self, stop_event: asyncio.Event) -> None:
        """Route SIGTERM/SIGINT to ``stop_event`` for a graceful drain.

        The caller owns the shutdown sequence (``await stop_event.wait()``
        then ``await service.stop()``) so in-flight dispatches finish and
        ``/dev/shm`` is left empty — the contract
        ``tests/test_shm_lifecycle.py`` kills a live service to verify.
        """
        if self._loop is None:
            raise ServiceError("start the service before installing signal handlers")
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._loop.add_signal_handler(signum, stop_event.set)

    # -- query path ----------------------------------------------------------------------

    async def submit(self, query: GroupQuery) -> QueryResponse:
        """Submit one query and await its response (batched transparently)."""
        if not self._accepting or self._queue is None or self._loop is None:
            raise ServiceError("service is not accepting queries")
        pending = _PendingQuery(query=query, future=self._loop.create_future())
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            raise ServiceError(
                f"service queue full ({self.config.max_queue} queries pending)"
            ) from None
        return await pending.future

    def task_for(self, query: GroupQuery) -> GroupEvalTask:
        """Materialise a query as the shippable task the batch dispatch uses."""
        if self.environment is None:
            raise ServiceError("service has no environment (not started)")
        period = None
        if query.period_index is not None:
            periods = list(self.environment.timeline)
            if not 0 <= query.period_index < len(periods):
                raise ConfigurationError(
                    f"period_index {query.period_index} outside the "
                    f"{len(periods)}-period timeline"
                )
            period = periods[query.period_index]
        return self.environment.task_for(
            query.group,
            k=query.k,
            consensus=query.consensus,
            affinity=query.affinity,
            period=period,
            n_items=query.n_items,
        )

    async def submit_delta(self, delta) -> "object":
        """Apply a :class:`~repro.updates.deltas.RatingDelta` as a new epoch.

        The application runs on the single dispatch thread, so it serialises
        with query batches: every query picked up before the delta finishes
        on the epoch it was dispatched under, and every later batch sees the
        new epoch — no query ever observes a half-applied update, and no
        worker pool is restarted.  Returns the environment's
        :class:`~repro.experiments.scalability.DeltaReport`.
        """
        if not self._accepting or self._loop is None or self._dispatch_pool is None:
            raise ServiceError("service is not accepting updates")
        return await self._loop.run_in_executor(
            self._dispatch_pool, self.environment.apply_delta, delta
        )

    def reference_record(self, query: GroupQuery) -> GroupRunRecord:
        """The serial reference answer for one query (the equivalence oracle).

        Runs the exact ``task_for`` + ``run_task`` path the serial
        evaluation uses, in-process, untouched by batching or executors —
        service responses must match this bit-for-bit.
        """
        task = self.task_for(query)
        return run_task(task, self.environment.index_factory(task.group))

    # -- batching ------------------------------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            pending = await self._queue.get()
            if pending is _SHUTDOWN:
                return
            batch = [pending]
            saw_shutdown = await self._coalesce(batch)
            await self._dispatch_batch(batch)
            if saw_shutdown:
                return

    async def _coalesce(self, batch: list) -> bool:
        """Fill ``batch`` up to the size cap within the delay window.

        Returns ``True`` when the shutdown sentinel was consumed while
        coalescing (the batch in hand still gets dispatched — drain
        semantics).
        """
        deadline = self._loop.time() + self.config.max_batch_delay
        while len(batch) < self.config.max_batch_size:
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                # Window closed: take whatever is already queued, no waiting.
                while len(batch) < self.config.max_batch_size:
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return False
                    if item is _SHUTDOWN:
                        return True
                    batch.append(item)
                return False
            try:
                item = await asyncio.wait_for(self._queue.get(), remaining)
            except asyncio.TimeoutError:
                return False
            if item is _SHUTDOWN:
                return True
            batch.append(item)
        return False

    async def _dispatch_batch(self, batch: list) -> None:
        picked_up = time.perf_counter()
        try:
            by_position, report, dispatch_seconds = await self._loop.run_in_executor(
                self._dispatch_pool,
                self._materialise_and_evaluate,
                [pending.query for pending in batch],
            )
        except Exception as exc:
            self._fail_batch(batch, exc)
            return
        merge_start = time.perf_counter()
        self.batch_sizes.append(len(batch))
        for position, pending in enumerate(batch):
            now = time.perf_counter()
            latency = QueryLatency(
                queue_seconds=picked_up - pending.enqueued_at,
                dispatch_seconds=dispatch_seconds,
                merge_seconds=now - merge_start,
                total_seconds=now - pending.enqueued_at,
                batch_size=len(batch),
            )
            if not pending.future.done():
                pending.future.set_result(
                    QueryResponse(
                        query=pending.query,
                        record=by_position[position],
                        latency=latency,
                        report=report,
                    )
                )

    @staticmethod
    def _fail_batch(batch: list, exc: BaseException) -> None:
        for pending in batch:
            if not pending.future.done():
                pending.future.set_exception(exc)

    def _materialise_and_evaluate(
        self, queries: Sequence[GroupQuery]
    ) -> tuple[dict, DispatchReport | None, float]:
        """Dispatch-thread body: materialise, order group-major, evaluate.

        Materialising tasks here — not on the event loop — makes each batch
        atomic with respect to :meth:`submit_delta`: both run on the single
        dispatch thread, so a batch's tasks and its evaluation always see
        one epoch.  Group-major order is run_sweep's batching discipline,
        shipping each group's factory (and affinity columns) to as few
        shards as possible.
        """
        entries: list[tuple[tuple[int, ...], int, GroupEvalTask]] = []
        for position, query in enumerate(queries):
            task = self.task_for(query)
            entries.append((task.group, position, task))
        entries.sort(key=lambda entry: entry[:2])
        records, report, dispatch_seconds = self._evaluate(
            [entry[2] for entry in entries]
        )
        by_position = {
            position: record
            for (_group, position, _task), record in zip(entries, records)
        }
        return by_position, report, dispatch_seconds

    def _evaluate(
        self, tasks: Sequence[GroupEvalTask]
    ) -> tuple[list[GroupRunRecord], DispatchReport | None, float]:
        """Dispatch-thread body: evaluate one batch, time it, grab its report."""
        environment = self.environment
        before = len(environment.dispatch_reports)
        start = time.perf_counter()
        records = environment.evaluate(
            tasks,
            policy=self.config.execution_policy(),
            fault_plan=self.fault_plan,
        )
        dispatch_seconds = time.perf_counter() - start
        report = (
            environment.dispatch_reports[-1]
            if len(environment.dispatch_reports) > before
            else None
        )
        return list(records), report, dispatch_seconds
