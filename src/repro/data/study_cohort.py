"""Synthetic reproduction of the paper's Facebook user-study cohort.

Section 4.1.1 of the paper describes the recruitment protocol:

* 13 *seed* users are recruited; each must rate at least 30 movies and invite
  10-20 friends (friends of seeds never overlap with the seed set, and the
  study stops at depth 1 of the social graph).
* Overall 72 users participate and provide 1,981 ratings.
* Two movie sets are prepared from MovieLens: the *popular set* (top-50 most
  rated movies) and the *diversity set* (25 highest-variance movies ranked in
  the top-200 by popularity).  Each participant rates either the *Similar
  Set* (50 popular movies) or the *Dissimilar Set* (top-25 popular + the 25
  diversity movies).

Since the original Facebook participants are not available offline, this
module synthesises a cohort that follows the same protocol, producing a
ratings dataset, a social network and the popular/diversity movie sets.  The
participants' ratings are drawn from taste profiles correlated with their
community so that "similar" and "dissimilar" groups genuinely differ in
cohesiveness, as required by the group-formation experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.timeline import Timeline
from repro.data.ratings import MAX_RATING, MIN_RATING, Rating, RatingsDataset
from repro.data.social import SocialConfig, SocialNetwork, SocialNetworkGenerator
from repro.exceptions import ConfigurationError

#: Headline numbers from the paper's study (Section 4.1).
PAPER_N_SEEDS = 13
PAPER_N_PARTICIPANTS = 72
PAPER_N_STUDY_RATINGS = 1_981
PAPER_POPULAR_SET_SIZE = 50
PAPER_DIVERSITY_SET_SIZE = 25
PAPER_DIVERSITY_POPULARITY_RANK = 200
PAPER_MIN_RATINGS_PER_USER = 30


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of the synthetic study cohort."""

    n_seeds: int = PAPER_N_SEEDS
    min_invitees: int = 3
    max_invitees: int = 6
    min_ratings_per_user: int = PAPER_MIN_RATINGS_PER_USER
    popular_set_size: int = PAPER_POPULAR_SET_SIZE
    diversity_set_size: int = PAPER_DIVERSITY_SET_SIZE
    diversity_popularity_rank: int = PAPER_DIVERSITY_POPULARITY_RANK
    taste_noise: float = 0.6
    seed: int = 23
    social: SocialConfig = field(default_factory=SocialConfig)

    def __post_init__(self) -> None:
        if self.n_seeds <= 0:
            raise ConfigurationError("n_seeds must be positive")
        if self.min_invitees < 0 or self.max_invitees < self.min_invitees:
            raise ConfigurationError("invitee bounds must satisfy 0 <= min <= max")
        if self.min_ratings_per_user <= 0:
            raise ConfigurationError("min_ratings_per_user must be positive")
        if self.popular_set_size <= 0 or self.diversity_set_size <= 0:
            raise ConfigurationError("movie-set sizes must be positive")

    def paper_scale(self) -> "StudyConfig":
        """The configuration matching the paper's 13-seed, 10-20-invitee study."""
        return StudyConfig(
            n_seeds=PAPER_N_SEEDS,
            min_invitees=10,
            max_invitees=20,
            min_ratings_per_user=self.min_ratings_per_user,
            popular_set_size=self.popular_set_size,
            diversity_set_size=self.diversity_set_size,
            diversity_popularity_rank=self.diversity_popularity_rank,
            taste_noise=self.taste_noise,
            seed=self.seed,
            social=self.social,
        )


@dataclass(frozen=True)
class StudyCohort:
    """The output of :func:`build_study_cohort`.

    Attributes
    ----------
    ratings:
        Ratings provided by the participants (their "study" ratings).
    social:
        Friendship graph + page likes of the participants.
    seeds:
        Ids of the seed participants.
    participants:
        All participant ids (seeds first).
    popular_set / diversity_set:
        Item ids of the two movie sets described in the paper.
    similar_set / dissimilar_set:
        The two rating questionnaires: ``similar_set`` is the popular set,
        ``dissimilar_set`` is the top half of the popular set plus the
        diversity set.
    """

    ratings: RatingsDataset
    social: SocialNetwork
    seeds: tuple[int, ...]
    participants: tuple[int, ...]
    popular_set: tuple[int, ...]
    diversity_set: tuple[int, ...]
    similar_set: tuple[int, ...]
    dissimilar_set: tuple[int, ...]

    @property
    def n_participants(self) -> int:
        """Number of participants in the cohort."""
        return len(self.participants)


def build_movie_sets(
    base: RatingsDataset, config: StudyConfig | None = None
) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
    """Build the popular / diversity / Similar / Dissimilar movie sets.

    Mirrors Section 4.1.1: the popular set holds the ``popular_set_size`` most
    rated movies, the diversity set holds the ``diversity_set_size`` movies
    with the highest rating variance among the ``diversity_popularity_rank``
    most popular ones.
    """
    config = config or StudyConfig()
    popular = tuple(base.top_popular_items(config.popular_set_size))
    diversity = tuple(
        item
        for item in base.most_controversial_items(
            config.diversity_set_size + config.popular_set_size,
            within_top_popular=config.diversity_popularity_rank,
        )
        if item not in popular[: config.popular_set_size // 2]
    )[: config.diversity_set_size]
    similar_set = popular
    dissimilar_set = tuple(popular[: config.popular_set_size // 2]) + diversity
    return popular, diversity, similar_set, dissimilar_set


def build_study_cohort(
    base: RatingsDataset,
    timeline: Timeline,
    config: StudyConfig | None = None,
) -> StudyCohort:
    """Simulate the recruitment protocol on top of a base ratings dataset.

    Parameters
    ----------
    base:
        The MovieLens(-like) dataset the study movies are selected from.
    timeline:
        Timeline over which participants' page likes are generated.
    config:
        Study configuration (defaults to a small, fast cohort; use
        ``StudyConfig().paper_scale()`` for the 72-participant scale).
    """
    config = config or StudyConfig()
    rng = random.Random(config.seed)

    popular, diversity, similar_set, dissimilar_set = build_movie_sets(base, config)

    # Recruit participants: seeds use ids above the base dataset's range so
    # that study participants never collide with base users.
    first_id = (max(base.users) if base.users else 0) + 1
    next_id = first_id
    seeds: list[int] = []
    participants: list[int] = []
    invited_by: dict[int, int] = {}
    for _ in range(config.n_seeds):
        seed_id = next_id
        next_id += 1
        seeds.append(seed_id)
        participants.append(seed_id)
    for seed_id in seeds:
        n_invitees = rng.randint(config.min_invitees, config.max_invitees)
        for _ in range(n_invitees):
            friend_id = next_id
            next_id += 1
            participants.append(friend_id)
            invited_by[friend_id] = seed_id

    # Taste profiles: each seed's "circle" shares a taste vector over the two
    # movie sets, so ratings inside a circle are correlated (similar groups)
    # while ratings across circles diverge (dissimilar groups).
    circle_of = {user: user for user in seeds}
    circle_of.update({user: invited_by[user] for user in invited_by})
    item_pool = tuple(dict.fromkeys(similar_set + dissimilar_set))
    circle_taste: dict[int, dict[int, float]] = {}
    for seed_id in seeds:
        circle_taste[seed_id] = {
            item: rng.uniform(MIN_RATING, MAX_RATING) for item in item_pool
        }

    ratings: list[Rating] = []
    for user in participants:
        questionnaire = similar_set if rng.random() < 0.5 else dissimilar_set
        questionnaire = list(questionnaire)
        rng.shuffle(questionnaire)
        count = min(len(questionnaire), config.min_ratings_per_user + rng.randint(0, 10))
        taste = circle_taste[circle_of[user]]
        personal_shift = rng.uniform(-0.5, 0.5)
        for item in questionnaire[:count]:
            value = taste[item] + personal_shift + rng.gauss(0.0, config.taste_noise)
            value = float(min(MAX_RATING, max(MIN_RATING, round(value))))
            timestamp = rng.randint(timeline.beginning, timeline.end)
            ratings.append(Rating(user, item, value, timestamp))

    study_ratings = RatingsDataset(ratings, name="study-cohort")

    # Social network: the seed circles double as communities, friendships are
    # dense within a circle (everyone knows their seed and most co-invitees).
    social_config = SocialConfig(
        n_communities=config.n_seeds,
        intra_friend_prob=config.social.intra_friend_prob,
        inter_friend_prob=config.social.inter_friend_prob,
        likes_per_period=config.social.likes_per_period,
        like_activity_drop=config.social.like_activity_drop,
        n_categories=config.social.n_categories,
        categories_per_community=config.social.categories_per_community,
        drift_strength=config.social.drift_strength,
        seed=config.seed,
    )
    # Order users by circle so the generator's round-robin community assignment
    # maps each circle to one community.
    ordered_users = sorted(participants, key=lambda user: (circle_of[user], user))
    communities: dict[int, list[int]] = {}
    for user in ordered_users:
        communities.setdefault(circle_of[user], []).append(user)
    interleaved: list[int] = []
    circles = list(communities.values())
    longest = max(len(circle) for circle in circles)
    for position in range(longest):
        for circle in circles:
            if position < len(circle):
                interleaved.append(circle[position])
    social = SocialNetworkGenerator(social_config).generate(interleaved, timeline)

    return StudyCohort(
        ratings=study_ratings,
        social=social,
        seeds=tuple(seeds),
        participants=tuple(participants),
        popular_set=popular,
        diversity_set=diversity,
        similar_set=similar_set,
        dissimilar_set=dissimilar_set,
    )
