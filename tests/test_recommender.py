"""Integration tests for the GroupRecommender facade."""

from __future__ import annotations

import pytest

from repro.core.recommender import (
    AFFINITY_CHOICES,
    GroupRecommendation,
    GroupRecommender,
)
from repro.exceptions import AlgorithmError, ConfigurationError, GroupError


@pytest.fixture(scope="module")
def group(recommender):
    return list(recommender.social.users[:4])


class TestConfiguration:
    def test_unfitted_recommender_raises(self, small_ratings):
        recommender = GroupRecommender(small_ratings)
        with pytest.raises(ConfigurationError):
            recommender.build_index([1, 2])
        assert not recommender.is_fitted

    def test_missing_social_data(self, small_ratings):
        recommender = GroupRecommender(small_ratings).fit()
        with pytest.raises(ConfigurationError):
            recommender.computed_affinities
        # The affinity-agnostic configuration still works.
        users = list(small_ratings.users[:3])
        result = recommender.recommend(users, k=3, affinity="none", exclude_rated=False)
        assert len(result.items) == 3

    def test_group_too_small(self, recommender):
        with pytest.raises(GroupError):
            recommender.recommend([recommender.social.users[0]], k=3)

    def test_unknown_affinity_and_algorithm(self, recommender, group):
        with pytest.raises(ConfigurationError):
            recommender.recommend(group, affinity="psychic")
        with pytest.raises(ConfigurationError):
            recommender.recommend(group, algorithm="quantum")


class TestRecommendation:
    def test_basic_recommendation(self, recommender, group):
        result = recommender.recommend(group, k=5, exclude_rated=False)
        assert isinstance(result, GroupRecommendation)
        assert len(result.items) == 5
        assert result.group == tuple(group)
        assert result.algorithm == "greca"
        assert 0.0 < result.percent_sequential_accesses <= 100.0
        assert result.saveup == pytest.approx(100.0 - result.percent_sequential_accesses)
        assert len(result.ranked()) == 5

    @pytest.mark.parametrize("affinity", AFFINITY_CHOICES)
    def test_all_affinity_configurations(self, recommender, group, affinity):
        result = recommender.recommend(group, k=3, affinity=affinity, exclude_rated=False)
        assert len(result.items) == 3
        assert result.affinity == affinity

    @pytest.mark.parametrize("consensus", ["AP", "MO", "PD", "PD V1", "PD V2"])
    def test_all_consensus_functions(self, recommender, group, consensus):
        result = recommender.recommend(group, k=3, consensus=consensus, exclude_rated=False)
        assert len(result.items) == 3

    def test_greca_matches_naive_scores(self, recommender, group):
        greca = recommender.recommend(group, k=5, algorithm="greca", exclude_rated=False)
        naive = recommender.recommend(group, k=5, algorithm="naive", exclude_rated=False)
        assert sorted(greca.scores.values()) == pytest.approx(sorted(naive.scores.values()), abs=1e-9)
        assert naive.percent_sequential_accesses == pytest.approx(100.0)
        assert greca.sequential_accesses <= naive.sequential_accesses

    def test_ta_baseline_also_agrees(self, recommender, group):
        ta = recommender.recommend(group, k=3, algorithm="ta", exclude_rated=False)
        naive = recommender.recommend(group, k=3, algorithm="naive", exclude_rated=False)
        assert sorted(ta.scores.values()) == pytest.approx(sorted(naive.scores.values()), abs=1e-9)
        assert ta.random_accesses > 0

    def test_exclude_rated_removes_member_items(self, recommender):
        # Pick lightly-active members so that unrated candidate items remain.
        light = sorted(
            recommender.social.users,
            key=lambda user: len(recommender.ratings.user_ratings(user)),
        )[:3]
        result = recommender.recommend(light, k=5, exclude_rated=True)
        rated = set()
        for member in light:
            rated.update(recommender.ratings.user_ratings(member))
        assert not set(result.items) & rated

    def test_explicit_item_universe(self, recommender, group):
        items = list(recommender.ratings.items[:30])
        result = recommender.recommend(group, k=5, items=items, exclude_rated=False)
        assert set(result.items) <= set(items)

    def test_no_candidates_left_raises(self, recommender, group):
        rated = list(recommender.ratings.user_ratings(group[0]))[:1]
        with pytest.raises(AlgorithmError):
            recommender.recommend(group, k=1, items=rated, exclude_rated=True)

    def test_period_changes_recommendations_metadata(self, recommender, group, timeline):
        early = recommender.recommend(group, k=3, period=timeline[0], exclude_rated=False)
        late = recommender.recommend(group, k=3, period=timeline.current, exclude_rated=False)
        assert early.total_entries < late.total_entries  # fewer periodic lists early on

    def test_affinity_model_factory(self, recommender):
        for name in AFFINITY_CHOICES:
            model = recommender.affinity_model(name)
            users = recommender.social.users
            value = model.affinity(users[0], users[1], recommender.timeline.current)
            assert 0.0 <= value <= 1.0

    def test_preference_model_integration(self, recommender, group, timeline):
        model = recommender.preference_model("discrete")
        item = recommender.ratings.items[0]
        pref = model.pref(group[0], item, group, timeline.current)
        assert pref >= model.apref(group[0], item) - 1e-9

    def test_aprefs_are_cached(self, recommender, group):
        first = recommender.aprefs_of(group[0])
        second = recommender.aprefs_of(group[0])
        assert first is second
