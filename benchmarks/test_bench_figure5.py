"""Benchmark regenerating Figure 5 (%SA varying k, group size and #items)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure5


def test_figure5_varying_k_group_size_items(benchmark, scalability_env):
    """Sweep k, group size and catalogue size; report mean %SA per point."""
    result = run_once(
        benchmark,
        figure5.run,
        environment=scalability_env,
        k_values=(5, 10, 15, 20, 25, 30),
        group_sizes=(3, 6, 9, 12),
        item_fractions=(0.25, 0.5, 0.75, 1.0),
    )
    print()
    print(result.format_table())
    print(f"worst saveup observed: {result.worst_saveup():.1f}%")

    # Shape checks mirroring the paper's observations.
    k_series = result.varying_k
    assert k_series[5].mean_percent_sa <= k_series[30].mean_percent_sa  # grows with k
    for stats in k_series.values():
        assert stats.mean_percent_sa < 100.0  # always cheaper than the naive scan
    # At the paper's default (k=10, size 6) GRECA avoids the large majority of accesses.
    assert k_series[10].mean_saveup > 60.0
