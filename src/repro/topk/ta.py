"""Generic Threshold Algorithm (TA) of Fagin, Lotem and Naor.

TA scans the sorted lists round-robin like NRA but resolves the *exact*
score of every newly encountered object immediately through random accesses
to the other lists.  It stops when the ``k``-th best exact score reaches the
threshold (the aggregation of the current cursor values).

In the reproduction TA plays the role of the "expensive" reference point the
paper discusses in Section 3.1: computing the complete score of a single
item requires touching every list, which is exactly what GRECA avoids.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.lists import SortedAccessList, total_entries
from repro.exceptions import AlgorithmError
from repro.topk.nra import AggregationFn, TopKResult


class ThresholdAlgorithm:
    """Classic TA over sorted lists sharing a single access counter."""

    def __init__(self, aggregation: AggregationFn, k: int) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.aggregation = aggregation
        self.k = k

    def run(self, lists: Sequence[SortedAccessList[Hashable]]) -> TopKResult:
        """Execute TA until the threshold condition holds or lists are exhausted."""
        if not lists:
            raise AlgorithmError("TA requires at least one input list")
        counter = lists[0].counter
        for access_list in lists:
            if access_list.counter is not counter:
                raise AlgorithmError("all lists must share one AccessCounter")

        scores: dict[Hashable, float] = {}
        rounds = 0

        while True:
            progressed = False
            for position, access_list in enumerate(lists):
                entry = access_list.sequential_access()
                if entry is None:
                    continue
                progressed = True
                if entry.key not in scores:
                    components = []
                    for other_position, other_list in enumerate(lists):
                        if other_position == position:
                            components.append(entry.score)
                        else:
                            components.append(other_list.random_access(entry.key))
                    scores[entry.key] = self.aggregation(components)
            rounds += 1
            exhausted = not progressed or all(access_list.exhausted for access_list in lists)

            if len(scores) >= self.k:
                threshold = self.aggregation(
                    [access_list.cursor_score for access_list in lists]
                )
                ranked = sorted(scores, key=lambda key: (-scores[key], repr(key)))
                kth_score = scores[ranked[self.k - 1]]
                if kth_score >= threshold - 1e-12 or exhausted:
                    top = tuple(ranked[: self.k])
                    return TopKResult(
                        items=top,
                        lower_bounds={key: scores[key] for key in top},
                        upper_bounds={key: scores[key] for key in top},
                        sequential_accesses=counter.sequential,
                        random_accesses=counter.random,
                        total_entries=total_entries(lists),
                        rounds=rounds,
                    )
            if exhausted:
                ranked = sorted(scores, key=lambda key: (-scores[key], repr(key)))
                top = tuple(ranked[: self.k])
                return TopKResult(
                    items=top,
                    lower_bounds={key: scores[key] for key in top},
                    upper_bounds={key: scores[key] for key in top},
                    sequential_accesses=counter.sequential,
                    random_accesses=counter.random,
                    total_entries=total_entries(lists),
                    rounds=rounds,
                )
