"""Benchmark regenerating Figure 4 (time-period granularities)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure4


def test_figure4_time_period_granularities(benchmark, scalability_env):
    """Measure #periods and % non-empty periods for every granularity."""
    result = run_once(benchmark, figure4.run, social=scalability_env.social)
    print()
    print(result.format_table())
    rows = {row["granularity"]: row for row in result.rows()}
    # Shape: finer granularity -> more periods, fewer of them non-empty.
    assert rows["week"]["n_periods"] == 53
    assert rows["two-month"]["n_periods"] == 6
    assert rows["half-year"]["n_periods"] == 2
    assert rows["week"]["non_empty_percent"] <= rows["half-year"]["non_empty_percent"]
    assert result.chosen_granularity() == "two-month"
