"""Single-user rating predictors (the ``apref(u, i)`` substrate).

The paper's group model takes *absolute preferences* ``apref(u, i)`` from any
single-user recommendation algorithm; its experiments use user-based
collaborative filtering with cosine similarity.  This module implements:

* :class:`UserBasedCF` — k-nearest-neighbour user-based CF (the paper's
  choice), with mean-centred weighted aggregation.
* :class:`ItemBasedCF` — the classic item-based variant, useful as an
  alternative ``apref`` source.
* :class:`MeanPredictor` — a trivial baseline (item mean, falling back to
  user mean / global mean), handy in tests.

Every predictor exposes the same interface: ``fit(dataset)`` and
``predict(user_id, item_id) -> float`` in the original 1-5 rating scale, plus
``predict_all(user_id)`` returning predictions for every item.  Predictions
for items a user already rated return the observed rating, as is customary
when the predictor feeds a recommender that excludes already-rated items at a
later stage.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cf.matrix import RatingMatrix
from repro.cf.similarity import similarity_matrix
from repro.data.ratings import MAX_RATING, MIN_RATING, RatingsDataset
from repro.exceptions import AlgorithmError, ConfigurationError


class RatingPredictor(abc.ABC):
    """Interface of all ``apref`` providers."""

    def __init__(self) -> None:
        self._matrix: RatingMatrix | None = None

    @property
    def matrix(self) -> RatingMatrix:
        """The fitted rating matrix."""
        if self._matrix is None:
            raise AlgorithmError("predictor is not fitted; call fit() first")
        return self._matrix

    @property
    def is_fitted(self) -> bool:
        """``True`` once :meth:`fit` has been called."""
        return self._matrix is not None

    def fit(self, dataset: RatingsDataset) -> "RatingPredictor":
        """Fit the predictor on a ratings dataset and return ``self``."""
        self._matrix = RatingMatrix(dataset)
        self._fit(self._matrix)
        return self

    @abc.abstractmethod
    def _fit(self, matrix: RatingMatrix) -> None:
        """Model-specific fitting using the dense matrix."""

    @abc.abstractmethod
    def predict(self, user_id: int, item_id: int) -> float:
        """Predicted rating of ``user_id`` for ``item_id`` in [1, 5]."""

    def predict_all(self, user_id: int) -> dict[int, float]:
        """Predictions for every item in the dataset."""
        return {item: self.predict(user_id, item) for item in self.matrix.items}

    @staticmethod
    def _clip(value: float) -> float:
        """Clip a raw prediction into the valid rating range."""
        return float(min(MAX_RATING, max(MIN_RATING, value)))


class MeanPredictor(RatingPredictor):
    """Predict the item mean, falling back to the user mean then to 3.0."""

    def _fit(self, matrix: RatingMatrix) -> None:
        self._item_means = matrix.item_means()
        self._user_means = matrix.user_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def predict(self, user_id: int, item_id: int) -> float:
        matrix = self.matrix
        observed = matrix.rating(user_id, item_id)
        if observed > 0:
            return observed
        item_mean = self._item_means[matrix.item_position(item_id)]
        if item_mean > 0:
            return self._clip(item_mean)
        user_mean = self._user_means[matrix.user_position(user_id)]
        if user_mean > 0:
            return self._clip(user_mean)
        return self._clip(self._global_mean)


class UserBasedCF(RatingPredictor):
    """k-NN user-based collaborative filtering with cosine similarity.

    Prediction follows the standard mean-centred formulation:

    ``apref(u, i) = mean(u) + sum_v sim(u, v) * (r(v, i) - mean(v)) / sum_v |sim(u, v)|``

    where the sum ranges over the ``k`` most similar users who rated ``i``.

    Parameters
    ----------
    k_neighbors:
        Neighbourhood size (``None`` means all users).
    metric:
        Similarity metric name (``cosine``, ``pearson`` or ``jaccard``).
    min_similarity:
        Neighbours with similarity below this threshold are ignored.
    """

    def __init__(
        self,
        k_neighbors: int | None = 40,
        metric: str = "cosine",
        min_similarity: float = 0.0,
    ) -> None:
        super().__init__()
        if k_neighbors is not None and k_neighbors <= 0:
            raise ConfigurationError("k_neighbors must be positive or None")
        self.k_neighbors = k_neighbors
        self.metric = metric
        self.min_similarity = min_similarity

    def _fit(self, matrix: RatingMatrix) -> None:
        self._similarity = similarity_matrix(matrix, metric=self.metric, axis="user")
        np.fill_diagonal(self._similarity, 0.0)
        self._user_means = matrix.user_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def predict(self, user_id: int, item_id: int) -> float:
        matrix = self.matrix
        observed = matrix.rating(user_id, item_id)
        if observed > 0:
            return observed

        row = matrix.user_position(user_id)
        col = matrix.item_position(item_id)
        raters = np.flatnonzero(matrix.values[:, col] > 0)
        if raters.size == 0:
            baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
            return self._clip(baseline)

        similarities = self._similarity[row, raters]
        keep = similarities > self.min_similarity
        raters = raters[keep]
        similarities = similarities[keep]
        if raters.size == 0:
            baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
            return self._clip(baseline)

        if self.k_neighbors is not None and raters.size > self.k_neighbors:
            order = np.argsort(-similarities)[: self.k_neighbors]
            raters = raters[order]
            similarities = similarities[order]

        neighbour_ratings = matrix.values[raters, col]
        neighbour_means = self._user_means[raters]
        numerator = float(np.sum(similarities * (neighbour_ratings - neighbour_means)))
        denominator = float(np.sum(np.abs(similarities)))
        baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
        if denominator == 0:
            return self._clip(baseline)
        return self._clip(baseline + numerator / denominator)

    def predict_all(self, user_id: int) -> dict[int, float]:
        """Vectorised prediction of every item for one user."""
        matrix = self.matrix
        row = matrix.user_position(user_id)
        values = matrix.values
        n_items = values.shape[1]
        baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean

        similarities = self._similarity[row].copy()
        similarities[similarities <= self.min_similarity] = 0.0

        predictions = np.full(n_items, baseline)
        rated_mask = values > 0
        for col in range(n_items):
            observed = values[row, col]
            if observed > 0:
                predictions[col] = observed
                continue
            raters = np.flatnonzero(rated_mask[:, col])
            sims = similarities[raters]
            keep = sims > 0
            raters = raters[keep]
            sims = sims[keep]
            if raters.size == 0:
                continue
            if self.k_neighbors is not None and raters.size > self.k_neighbors:
                order = np.argsort(-sims)[: self.k_neighbors]
                raters = raters[order]
                sims = sims[order]
            centred = values[raters, col] - self._user_means[raters]
            denominator = float(np.sum(np.abs(sims)))
            if denominator > 0:
                predictions[col] = baseline + float(np.sum(sims * centred)) / denominator

        predictions = np.clip(predictions, MIN_RATING, MAX_RATING)
        return {item: float(predictions[index]) for index, item in enumerate(matrix.items)}


class ItemBasedCF(RatingPredictor):
    """k-NN item-based collaborative filtering.

    ``apref(u, i)`` is the similarity-weighted average of the user's ratings
    on the items most similar to ``i``.
    """

    def __init__(self, k_neighbors: int | None = 40, metric: str = "cosine") -> None:
        super().__init__()
        if k_neighbors is not None and k_neighbors <= 0:
            raise ConfigurationError("k_neighbors must be positive or None")
        self.k_neighbors = k_neighbors
        self.metric = metric

    def _fit(self, matrix: RatingMatrix) -> None:
        self._similarity = similarity_matrix(matrix, metric=self.metric, axis="item")
        np.fill_diagonal(self._similarity, 0.0)
        self._item_means = matrix.item_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def predict(self, user_id: int, item_id: int) -> float:
        matrix = self.matrix
        observed = matrix.rating(user_id, item_id)
        if observed > 0:
            return observed

        row = matrix.user_position(user_id)
        col = matrix.item_position(item_id)
        rated_cols = np.flatnonzero(matrix.values[row] > 0)
        if rated_cols.size == 0:
            fallback = self._item_means[col] if self._item_means[col] > 0 else self._global_mean
            return self._clip(fallback)

        similarities = self._similarity[col, rated_cols]
        keep = similarities > 0
        rated_cols = rated_cols[keep]
        similarities = similarities[keep]
        if rated_cols.size == 0:
            fallback = self._item_means[col] if self._item_means[col] > 0 else self._global_mean
            return self._clip(fallback)

        if self.k_neighbors is not None and rated_cols.size > self.k_neighbors:
            order = np.argsort(-similarities)[: self.k_neighbors]
            rated_cols = rated_cols[order]
            similarities = similarities[order]

        ratings = matrix.values[row, rated_cols]
        denominator = float(np.sum(np.abs(similarities)))
        if denominator == 0:
            fallback = self._item_means[col] if self._item_means[col] > 0 else self._global_mean
            return self._clip(fallback)
        return self._clip(float(np.sum(similarities * ratings)) / denominator)
