"""Tests for repro.core.baseline (naive full scan and TA-style baseline)."""

from __future__ import annotations

import pytest

from repro.core.baseline import NaiveFullScan, ThresholdAlgorithmBaseline
from repro.core.consensus import AVERAGE_PREFERENCE, LEAST_MISERY, make_consensus
from repro.core.greca import Greca, GrecaIndex
from repro.exceptions import AlgorithmError

APREFS = {
    1: {item: float(5 - (item % 5)) for item in range(20)},
    2: {item: float(1 + (item % 5)) for item in range(20)},
    3: {item: float(1 + ((item * 3) % 5)) for item in range(20)},
}
STATIC = {(1, 2): 0.6, (1, 3): 0.2, (2, 3): 0.8}
PERIODIC = {0: {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.5}}


@pytest.fixture()
def index() -> GrecaIndex:
    return GrecaIndex(
        members=[1, 2, 3],
        aprefs=APREFS,
        static=STATIC,
        periodic=PERIODIC,
        max_apref=5.0,
    )


class TestNaiveFullScan:
    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            NaiveFullScan(AVERAGE_PREFERENCE, k=0)

    def test_scans_every_entry(self, index):
        result = NaiveFullScan(AVERAGE_PREFERENCE, k=5).run(index)
        assert result.sequential_accesses == index.total_index_entries()
        assert result.random_accesses == 0
        # Regression: %SA is *exactly* 100.0 (SA == total entries, so the
        # ratio is exact in floating point), not merely approximately so.
        assert result.percent_sequential_accesses == 100.0
        assert result.percent_total_accesses == 100.0

    def test_batched_matches_per_entry_reference(self, index):
        batched = NaiveFullScan(AVERAGE_PREFERENCE, k=5, batched=True).run(index)
        reference = NaiveFullScan(AVERAGE_PREFERENCE, k=5, batched=False).run(index)
        assert batched == reference

    def test_returns_exact_top_k(self, index):
        result = NaiveFullScan(AVERAGE_PREFERENCE, k=4).run(index)
        exact = index.exact_scores(AVERAGE_PREFERENCE)
        expected = sorted(exact.values(), reverse=True)[:4]
        assert sorted(result.scores.values(), reverse=True) == pytest.approx(expected)

    def test_k_capped_at_catalogue(self, index):
        result = NaiveFullScan(AVERAGE_PREFERENCE, k=100).run(index)
        assert result.k == len(index.items)

    def test_top_k_scores_oracle(self, index):
        scores = NaiveFullScan(LEAST_MISERY, k=1).top_k_scores(index)
        assert set(scores) == set(index.items)


class TestThresholdAlgorithmBaseline:
    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            ThresholdAlgorithmBaseline(AVERAGE_PREFERENCE, k=0)

    def test_matches_exact_top_k(self, index):
        for name in ("AP", "MO", "PD"):
            consensus = make_consensus(name)
            result = ThresholdAlgorithmBaseline(consensus, k=3).run(index)
            exact = index.exact_scores(consensus)
            expected = sorted(exact.values(), reverse=True)[:3]
            assert sorted(result.scores.values(), reverse=True) == pytest.approx(expected, abs=1e-9)

    def test_uses_random_accesses(self, index):
        result = ThresholdAlgorithmBaseline(AVERAGE_PREFERENCE, k=3).run(index)
        assert result.random_accesses > 0

    def test_batched_matches_per_entry_reference(self, index):
        for name in ("AP", "MO", "PD"):
            consensus = make_consensus(name)
            batched = ThresholdAlgorithmBaseline(consensus, k=3, batched=True).run(index)
            reference = ThresholdAlgorithmBaseline(consensus, k=3, batched=False).run(index)
            assert batched.items == reference.items
            assert batched.sequential_accesses == reference.sequential_accesses
            assert batched.random_accesses == reference.random_accesses
            assert batched.total_entries == reference.total_entries
            for item in batched.items:
                assert batched.scores[item] == pytest.approx(reference.scores[item], abs=1e-9)

    def test_random_access_formula_hand_computed(self):
        """RA count follows the paper's Section 3.1 cost model, hand-verified.

        Scoring an item random-accesses the ``n - 1`` other preference lists,
        and the first scored item additionally resolves every pair's affinity
        components: ``T * n(n-1)/2`` periodic accesses (the cost the paper
        highlights) plus the ``n(n-1)/2`` static ones.  With uniform
        preferences the threshold never drops below the exact scores, so the
        scan runs to exhaustion and every item is scored.
        """
        members = [1, 2, 3]
        items = [10, 11, 12, 13]
        aprefs = {member: {item: 3.0 for item in items} for member in members}
        static = {(1, 2): 0.5, (1, 3): 0.25, (2, 3): 0.75}
        periodic = {
            0: {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.2},
            1: {(1, 2): 0.3, (1, 3): 0.2, (2, 3): 0.1},
        }
        averages = {0: 0.2, 1: 0.1}
        index = GrecaIndex(
            members=members,
            aprefs=aprefs,
            static=static,
            periodic=periodic,
            averages=averages,
            max_apref=5.0,
        )
        n, n_periods = len(members), len(index.period_indices)
        n_pairs = n * (n - 1) // 2
        n_scored = len(items)  # full scan: every item is encountered and scored

        for batched in (True, False):
            result = ThresholdAlgorithmBaseline(
                AVERAGE_PREFERENCE, k=2, batched=batched
            ).run(index)
            # 4 items x 2 preference RAs + 3 pairs x (1 static + 2 periodic) = 17.
            assert result.random_accesses == n_scored * (n - 1) + n_pairs * (1 + n_periods)
            assert result.random_accesses == 17
            # The scan exhausts the preference lists (3 members x 4 items).
            assert result.sequential_accesses == n * len(items) == 12

    def test_greca_needs_no_random_accesses_unlike_ta(self, index):
        """Section 3.1: GRECA avoids the RAs that a TA-style approach incurs."""
        ta = ThresholdAlgorithmBaseline(AVERAGE_PREFERENCE, k=3).run(index)
        greca = Greca(AVERAGE_PREFERENCE, k=3, check_interval=1).run(index)
        assert greca.random_accesses == 0
        assert ta.random_accesses > 0
        exact = index.exact_scores(AVERAGE_PREFERENCE)
        assert sorted(exact[item] for item in greca.items) == pytest.approx(
            sorted(ta.scores.values()), abs=1e-9
        )
