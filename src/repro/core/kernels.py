"""Pluggable round kernels for the GRECA inner loop.

:meth:`Greca.run <repro.core.greca.Greca.run>` orchestrates the paper's
round-robin as *advance lists → scatter bounds → recombine affinities →
threshold → stop check*.  The stop check and the consensus-bound algebra are
consensus-function-specific Python shared by every execution tier; the two
hot steps in between — scattering block reads into the ``(members × items)``
bound arrays and refreshing the unseen suffix of every member row — are pure
array work.  This module extracts those two steps behind a ``RoundKernel``
seam so alternative implementations can plug in without forking the
algorithm, mirroring the executor/storage registries in
:mod:`repro.parallel.pool` and :mod:`repro.parallel.storage`:

* ``kernel="reference"`` — the original per-member loops, extracted verbatim
  from ``Greca.run``.  This is the reference semantics every other tier is
  measured against.
* ``kernel="fused"`` — always available: the per-member scatter loops are
  replaced by one batched gather/scatter over the packed
  ``(n_members, n_items)`` key-index matrix held in :class:`RoundState`.
  Every array write is an assignment (never a sum), so floating-point
  summation order is untouched and the fused tier stays bit-identical to
  the reference oracle.
* ``kernel="numba"`` — opt-in: the fused scatter/suffix steps compiled with
  :func:`numba.njit`.  Importability-gated; registered only when ``numba``
  is installed, and the test/CI axis skips cleanly when it is absent.

Kernel names pass through :func:`validate_kernel_name`, the single
:class:`ValueError` choice point for ``kernel=`` strings (the analogue of
``pool.validate_executor_name`` / ``storage.validate_storage_name``), and
the registry (:func:`register_kernel` / :func:`kernel_names`) is how new
backends join — including compiled tiers beyond numba.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.bounds import PairwiseAffinityBounds
from repro.core.lists import SortedAccessList

#: Kernel names accepted by :func:`validate_kernel_name`.
KERNEL_REFERENCE = "reference"
KERNEL_FUSED = "fused"
KERNEL_NUMBA = "numba"

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the container default
    _njit = None
    NUMBA_AVAILABLE = False


@dataclass
class RoundState:
    """Plain-ndarray working state of one GRECA execution.

    Everything a kernel touches per round lives here: the in-place bound
    arrays, the packed per-member sort permutations (``key_matrix``) and
    sorted score rows (``score_matrix``), the affinity recombiner, and the
    reusable threshold columns (hoisted out of the round loop so repeated
    checks allocate nothing).
    """

    preference_lists: list[SortedAccessList]
    affinity_bounds: PairwiseAffinityBounds
    n_members: int
    n_items: int
    #: Partial preference knowledge, maintained in place.
    apref_low: np.ndarray
    apref_high: np.ndarray
    buffered: np.ndarray
    cursor_values: np.ndarray
    #: ``key_matrix[row]`` is member ``row``'s sort permutation (item columns
    #: in list order); ``score_matrix[row]`` the matching sorted scores.
    key_matrix: np.ndarray
    score_matrix: np.ndarray
    #: Affinity bound matrices, refreshed by ``refresh_bounds``.
    aff_low: np.ndarray = field(default=None)  # type: ignore[assignment]
    aff_high: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Reusable ``(n_members, 1)`` columns for the global-threshold consensus
    #: evaluation — allocated once here instead of once per check.
    virtual_low: np.ndarray = field(default=None)  # type: ignore[assignment]
    virtual_high: np.ndarray = field(default=None)  # type: ignore[assignment]
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.virtual_low is None:
            self.virtual_low = np.zeros((self.n_members, 1))
        if self.virtual_high is None:
            self.virtual_high = np.empty((self.n_members, 1))

    @property
    def all_lists(self) -> list[SortedAccessList]:
        """Every list the round-robin scans (preference + affinity)."""
        return list(self.preference_lists) + self.affinity_bounds.lists


def make_round_state(
    preference_lists: list[SortedAccessList],
    affinity_bounds: PairwiseAffinityBounds,
    n_members: int,
    n_items: int,
) -> RoundState:
    """Build the round state for freshly constructed (unread) lists."""
    key_matrix = np.empty((n_members, n_items), dtype=np.intp)
    score_matrix = np.empty((n_members, n_items))
    for row, preference_list in enumerate(preference_lists):
        key_matrix[row] = preference_list.key_index
        score_matrix[row] = preference_list.scores
    return RoundState(
        preference_lists=preference_lists,
        affinity_bounds=affinity_bounds,
        n_members=n_members,
        n_items=n_items,
        apref_low=np.zeros((n_members, n_items)),
        apref_high=np.empty((n_members, n_items)),
        buffered=np.zeros(n_items, dtype=bool),
        cursor_values=np.empty(n_members),
        key_matrix=key_matrix,
        score_matrix=score_matrix,
    )


@runtime_checkable
class RoundKernel(Protocol):
    """One GRECA round step: advance the lists, then refresh the bounds.

    Implementations must be *bit-identical* to the reference kernel: same
    access accounting (``advance`` must read every list through
    ``sequential_block`` so SAs are recorded), same array contents after
    every step, and same floating-point summation order (assign, never
    accumulate, when scattering).
    """

    name: str

    def advance(self, state: RoundState, block: int) -> None:
        """Advance every list by ``block`` round-robin cycles, scattering
        the preference scores read into ``apref_low``/``apref_high`` and
        marking newly seen items in ``buffered``."""
        ...

    def refresh_bounds(self, state: RoundState) -> tuple[np.ndarray, np.ndarray]:
        """Recombine affinity bounds, refresh cursor values and the unseen
        suffix of ``apref_high``, fill the ``virtual_*`` threshold columns,
        and return the ``(pref_low, pref_high)`` group-preference bounds."""
        ...


class ReferenceRoundKernel:
    """The original ``Greca.run`` loops, extracted verbatim."""

    name = KERNEL_REFERENCE

    def advance(self, state: RoundState, block: int) -> None:
        apref_low = state.apref_low
        apref_high = state.apref_high
        buffered = state.buffered
        for row, preference_list in enumerate(state.preference_lists):
            start = preference_list.position
            _, scores = preference_list.sequential_block(block)
            if scores.size:
                cols = preference_list.key_index[start : start + scores.size]
                apref_low[row, cols] = scores
                apref_high[row, cols] = scores
                buffered[cols] = True
        state.affinity_bounds.advance(block)
        state.rounds += block

    def refresh_bounds(self, state: RoundState) -> tuple[np.ndarray, np.ndarray]:
        # Bound maintenance: only pairs whose lists moved are recombined,
        # and only the unseen suffix of each member row is rewritten.
        aff_low, aff_high = state.affinity_bounds.bounds()
        state.aff_low, state.aff_high = aff_low, aff_high
        apref_low = state.apref_low
        apref_high = state.apref_high
        cursor_values = state.cursor_values
        n_items = state.n_items
        for row, preference_list in enumerate(state.preference_lists):
            cursor = preference_list.cursor_score
            cursor_values[row] = cursor
            position = preference_list.position
            if position < n_items:
                apref_high[row, preference_list.key_index[position:]] = cursor
        pref_low = apref_low + aff_low @ apref_low
        pref_high = apref_high + aff_high @ apref_high
        # Global threshold column: the best score a completely unseen item
        # could reach (virtual_low stays all-zero by construction).
        state.virtual_high[:, 0] = cursor_values + aff_high @ cursor_values
        return pref_low, pref_high


def _scatter_block_numpy(
    apref_low: np.ndarray,
    apref_high: np.ndarray,
    buffered: np.ndarray,
    cols: np.ndarray,
    scores: np.ndarray,
) -> None:
    rows = np.arange(cols.shape[0])[:, None]
    apref_low[rows, cols] = scores
    apref_high[rows, cols] = scores
    buffered[cols.ravel()] = True


def _rewrite_suffix_numpy(
    apref_high: np.ndarray,
    cols: np.ndarray,
    cursor_values: np.ndarray,
) -> None:
    rows = np.arange(cols.shape[0])[:, None]
    apref_high[rows, cols] = cursor_values[:, None]


class FusedRoundKernel:
    """Batched gather/scatter over the packed key-index matrix.

    The per-member Python loops of the reference kernel collapse into one
    fancy-indexed scatter per step.  Lists still advance through
    ``sequential_block`` one by one (that is where sequential accesses are
    recorded), but their return values are ignored in favour of views into
    the precomputed ``score_matrix`` — the same bytes, gathered without
    per-member slicing.  All writes are assignments, so the results are
    bit-identical to the reference kernel.
    """

    name = KERNEL_FUSED

    #: The array-only inner steps; the numba kernel swaps in compiled ones.
    _scatter_block = staticmethod(_scatter_block_numpy)
    _rewrite_suffix = staticmethod(_rewrite_suffix_numpy)

    def advance(self, state: RoundState, block: int) -> None:
        lists = state.preference_lists
        start = lists[0].position if lists else 0
        took = 0
        for preference_list in lists:
            _, scores = preference_list.sequential_block(block)
            took = scores.size
        if took:
            cols = state.key_matrix[:, start : start + took]
            scores = state.score_matrix[:, start : start + took]
            self._scatter_block(state.apref_low, state.apref_high, state.buffered, cols, scores)
        state.affinity_bounds.advance(block)
        state.rounds += block

    def refresh_bounds(self, state: RoundState) -> tuple[np.ndarray, np.ndarray]:
        aff_low, aff_high = state.affinity_bounds.bounds()
        state.aff_low, state.aff_high = aff_low, aff_high
        cursor_values = state.cursor_values
        for row, preference_list in enumerate(state.preference_lists):
            cursor_values[row] = preference_list.cursor_score
        position = state.preference_lists[0].position if state.preference_lists else 0
        if position < state.n_items:
            self._rewrite_suffix(
                state.apref_high, state.key_matrix[:, position:], cursor_values
            )
        apref_low = state.apref_low
        apref_high = state.apref_high
        pref_low = apref_low + aff_low @ apref_low
        pref_high = apref_high + aff_high @ apref_high
        state.virtual_high[:, 0] = cursor_values + aff_high @ cursor_values
        return pref_low, pref_high


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @_njit(cache=False)
    def _scatter_block_njit(apref_low, apref_high, buffered, cols, scores):
        n_rows, n_cols = cols.shape
        for row in range(n_rows):
            for position in range(n_cols):
                col = cols[row, position]
                value = scores[row, position]
                apref_low[row, col] = value
                apref_high[row, col] = value
                buffered[col] = True

    @_njit(cache=False)
    def _rewrite_suffix_njit(apref_high, cols, cursor_values):
        n_rows, n_cols = cols.shape
        for row in range(n_rows):
            cursor = cursor_values[row]
            for position in range(n_cols):
                apref_high[row, cols[row, position]] = cursor


class NumbaRoundKernel(FusedRoundKernel):
    """The fused step with its array loops compiled by :func:`numba.njit`.

    Only the assignment-scatter loops are compiled — the affinity
    recombination and the ``@`` matmuls stay on numpy's BLAS path, so the
    floating-point story is exactly the fused kernel's.  Constructible only
    when numba imports; :func:`kernel_names` simply omits ``"numba"``
    otherwise.
    """

    name = KERNEL_NUMBA

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise RuntimeError(
                "kernel 'numba' requires the optional numba dependency "
                "(pip install 'repro[kernels]')"
            )
        # Instance attributes shadow the class-level numpy callables; plain
        # functions assigned on an instance are not bound, so the fused
        # ``self._scatter_block(...)`` call sites work unchanged.
        self._scatter_block = _scatter_block_njit
        self._rewrite_suffix = _rewrite_suffix_njit


_KERNEL_BUILDERS: dict[str, Callable[[], RoundKernel]] = {}


def register_kernel(name: str, builder: Callable[[], RoundKernel]) -> None:
    """Register a round-kernel backend under ``name``.

    Registering is what puts a backend into :func:`kernel_names` — and
    therefore into every ``kernel=`` validation message.
    """
    _KERNEL_BUILDERS[name] = builder


register_kernel(KERNEL_REFERENCE, ReferenceRoundKernel)
register_kernel(KERNEL_FUSED, FusedRoundKernel)
if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    register_kernel(KERNEL_NUMBA, NumbaRoundKernel)


def kernel_names() -> tuple[str, ...]:
    """Every registered kernel name, in registration order."""
    return tuple(_KERNEL_BUILDERS)


def validate_kernel_name(kernel: str) -> str:
    """The single ``ValueError`` choice point for ``kernel=`` strings."""
    if kernel not in _KERNEL_BUILDERS:
        valid = ", ".join(repr(name) for name in sorted(_KERNEL_BUILDERS))
        raise ValueError(f"unknown kernel {kernel!r}: valid kernels are {valid}")
    return kernel


def resolve_kernel(kernel: str | RoundKernel | None) -> RoundKernel:
    """Materialise a kernel from a name (``None`` selects the reference tier)."""
    if kernel is None:
        kernel = KERNEL_REFERENCE
    if isinstance(kernel, str):
        return _KERNEL_BUILDERS[validate_kernel_name(kernel)]()
    return kernel
