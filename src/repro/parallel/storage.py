"""File-backed column storage behind the shm descriptor seam.

The shared-memory layer in :mod:`repro.parallel.shm` ships factory and
affinity arrays by ``(segment, shape, dtype, offset)`` descriptor.  This
module supplies the second storage backend those descriptors can point at:
memory-mapped files in a per-registry *spool directory*, so catalogues that
exceed ``/dev/shm`` (or RAM) can live on disk and let the OS page cache be
the memory hierarchy.  Workers attach a spool file exactly as they attach a
shared-memory segment — one read-only mapping per file, numpy views at
descriptor offsets — and the same POSIX rule applies to both: unlinking the
backing object invalidates *new* attaches while existing mappings keep
reading the old bytes, which is what lets epoch swaps retire storage while
in-flight shards drain.

Two objects mirror the ``multiprocessing.shared_memory`` API surface the
registry already speaks:

* :class:`MappedFileSegment` — one mapped spool file with ``.name`` (the
  absolute path), ``.buf`` (a writable or read-only memoryview), ``.size``,
  ``.close()`` (raises :class:`BufferError` while numpy views are alive,
  like ``mmap``/shm) and ``.unlink()`` (raises :class:`FileNotFoundError`
  when already gone, like shm).
* :class:`SpoolDirectory` — a private ``mkdtemp`` directory that mints
  uniquely-named segment files (names are never recycled within a process)
  and removes itself on close or garbage collection.

Spool-file names are absolute paths and therefore can never collide with
POSIX shm names (which contain no separator); the ``storage`` field on each
descriptor is still the authoritative discriminator.

The storage axis is selected by name — :data:`STORAGE_SHM` (default) or
:data:`STORAGE_MMAP` — validated through :func:`validate_storage_name`, the
single choice point mirroring ``pool.validate_executor_name``.
"""

from __future__ import annotations

import mmap
import os
import shutil
import tempfile
import threading
import weakref

#: Storage backend names accepted everywhere a ``storage=`` knob exists.
STORAGE_SHM = "shm"
STORAGE_MMAP = "mmap"
VALID_STORAGES = (STORAGE_SHM, STORAGE_MMAP)

#: Optional override for where spool directories are created (defaults to
#: the system temporary directory).
SPOOL_DIR_ENV = "REPRO_SPOOL_DIR"

#: Optional process-wide /dev/shm budget in bytes: an ``storage="shm"``
#: registry whose projected export would push its live shm bytes past this
#: budget spills that export to a spool file instead.
SHM_BUDGET_ENV = "REPRO_SHM_BUDGET_BYTES"

#: Prefix of every spool directory this module creates; the CI orphan sweep
#: greps for it the same way it greps /dev/shm for ``psm_``.
SPOOL_PREFIX = "repro-spool-"


def validate_storage_name(storage: str) -> str:
    """Validate a storage backend name, returning it unchanged.

    The single choice point for the ``storage=`` axis, mirroring
    ``pool.validate_executor_name`` for ``executor=``.
    """
    if storage not in VALID_STORAGES:
        valid = ", ".join(repr(name) for name in VALID_STORAGES)
        raise ValueError(f"unknown storage {storage!r}: valid backends are {valid}")
    return storage


def default_shm_budget_bytes() -> int | None:
    """The /dev/shm spill budget from ``REPRO_SHM_BUDGET_BYTES``, if set."""
    text = os.environ.get(SHM_BUDGET_ENV, "").strip()
    if not text:
        return None
    try:
        budget = int(text)
    except ValueError as error:
        raise ValueError(
            f"{SHM_BUDGET_ENV} must be an integer byte count, got {text!r}"
        ) from error
    if budget < 0:
        raise ValueError(f"{SHM_BUDGET_ENV} must be non-negative, got {budget}")
    return budget


class MappedFileSegment:
    """One memory-mapped spool file with the shm segment API surface.

    ``create=True`` creates the file (exclusively — spool names are never
    reused) and maps it writable; otherwise an existing file is mapped
    read-only, which is the worker-side attach path.  The mapping stays
    valid after ``unlink()`` until ``close()``, exactly like a shared-memory
    segment.
    """

    def __init__(self, name: str, create: bool = False, size: int = 0) -> None:
        self.name = name
        self._closed = False
        if create:
            if size <= 0:
                raise ValueError(f"spool segment size must be positive, got {size}")
            fd = os.open(name, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
            try:
                os.ftruncate(fd, size)
                self._mmap = mmap.mmap(fd, size)
            finally:
                os.close(fd)
            self.size = size
        else:
            fd = os.open(name, os.O_RDONLY)
            try:
                self.size = os.fstat(fd).st_size
                if self.size <= 0:
                    raise ValueError(f"cannot map empty spool file {name!r}")
                self._mmap = mmap.mmap(fd, self.size, access=mmap.ACCESS_READ)
            finally:
                os.close(fd)
        self.buf: memoryview = memoryview(self._mmap)

    def close(self) -> None:
        """Release the mapping; raises ``BufferError`` while views are alive."""
        if self._closed:
            return
        self.buf.release()
        self._mmap.close()
        self._closed = True

    def unlink(self) -> None:
        """Delete the backing file; existing mappings keep their bytes."""
        os.unlink(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, size={self.size})"


def _remove_spool_dir(path: str) -> None:
    """Best-effort removal of a spool directory and any files left in it."""
    shutil.rmtree(path, ignore_errors=True)


class SpoolDirectory:
    """A private directory minting uniquely-named mapped-file segments.

    The directory is created under ``root`` (default: ``REPRO_SPOOL_DIR`` or
    the system tempdir) and removed — files and all — on :meth:`close` or,
    as a backstop mirroring the registry finalizer, when the object is
    garbage collected or the interpreter exits.
    """

    def __init__(self, root: str | None = None) -> None:
        base = root or os.environ.get(SPOOL_DIR_ENV) or tempfile.gettempdir()
        os.makedirs(base, exist_ok=True)
        self.path = tempfile.mkdtemp(prefix=SPOOL_PREFIX, dir=base)
        self._counter = 0
        self._lock = threading.Lock()
        self._finalizer = weakref.finalize(self, _remove_spool_dir, self.path)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def create_segment(self, size: int) -> MappedFileSegment:
        """Create and map a fresh spool file of ``size`` bytes."""
        if self.closed:
            raise ValueError(f"spool directory {self.path!r} is closed")
        with self._lock:
            self._counter += 1
            name = os.path.join(self.path, f"col-{self._counter:06d}.bin")
        return MappedFileSegment(name, create=True, size=size)

    def close(self) -> None:
        """Remove the spool directory and everything in it."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.path!r})"
