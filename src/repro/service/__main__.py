"""CLI entry point: ``python -m repro.service``.

Two modes:

* **load mode** (the default, and what ``make serve-smoke`` runs with
  ``--smoke``): start a service, fire the deterministic load generator at
  it, print the p50/p95/p99 latency summary, then drain and self-check —
  the percentiles must be recorded and every shm segment the environment
  created must be gone from ``/dev/shm`` after the stop.  Exit code 0 only
  when both hold (and, with ``--check-equivalence``, when every response
  matched the serial reference bit-for-bit).
* **serve mode** (``--serve-seconds S``): start a service, answer one
  warmup query so the shm segments exist, print ``SEGMENTS <names>`` and
  ``READY``, then serve until SIGTERM/SIGINT (or the deadline) and drain
  gracefully.  The shm-lifecycle suite kills this process mid-serve and
  asserts the segments were unlinked on the way down.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.experiments.scalability import ScalabilityConfig
from repro.service.loadgen import default_queries, run_load, summarise_latencies
from repro.service.service import GrecaService, GroupQuery, ServiceConfig

#: The scaled-down substrate the smoke/CI runs use (seconds, not minutes).
SMOKE_CONFIG = ScalabilityConfig(
    n_users=40,
    n_items=300,
    n_ratings=3_000,
    n_participants=12,
    n_groups=2,
    group_size=3,
)


def leaked_segments(names: list[str]) -> list[str]:
    """The subset of column-store segment names still present on the system.

    Shared-memory names are probed by attaching; mmap spool files — the
    names containing a path separator, which ``/dev/shm`` names never do —
    by a plain existence check.
    """
    import os
    from multiprocessing import resource_tracker, shared_memory

    leaked = []
    for name in names:
        if os.path.isabs(name):
            if os.path.exists(name):
                leaked.append(name)
            continue
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        try:  # the probe attach is not ownership — undo its registration
            resource_tracker.unregister(
                getattr(segment, "_name", segment.name), "shared_memory"
            )
        except Exception:
            pass
        segment.close()
        leaked.append(name)
    return leaked


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    parser.add_argument("--workers", type=int, default=2, help="pool worker count")
    parser.add_argument(
        "--executor",
        default="supervised",
        help='dispatch backend ("supervised", "persistent", "process", '
        '"serial") or "reference" for the in-process serial path',
    )
    parser.add_argument(
        "--storage",
        default=None,
        help='column-store backend dispatches export into: "shm" shared '
        'memory (the default) or "mmap" spool files — the same axis '
        "ExecutionPolicy(storage=...) bundles programmatically; validated "
        "at the repro.parallel.storage choice point",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        help='GRECA round-kernel tier batches run on: "reference" (the '
        'default), "fused" (batched numpy gather/scatter) or "numba" '
        "(opt-in njit, needs the kernels extra) — the same axis "
        "ExecutionPolicy(kernel=...) bundles programmatically; validated "
        "at the repro.core.kernels choice point",
    )
    parser.add_argument("--clients", type=int, default=4, help="concurrent clients")
    parser.add_argument("--queries", type=int, default=5, help="queries per client")
    parser.add_argument("--batch-size", type=int, default=32, help="coalescing cap")
    parser.add_argument(
        "--batch-delay", type=float, default=0.005, help="coalescing window (s)"
    )
    parser.add_argument("--seed", type=int, default=17, help="load-generator seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the scaled-down smoke substrate (seconds to build, not minutes)",
    )
    parser.add_argument(
        "--check-equivalence",
        action="store_true",
        help="re-run every query through the serial reference and demand "
        "bit-identical records",
    )
    parser.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        metavar="S",
        help="serve mode: stay up until SIGTERM/SIGINT (at most S seconds), "
        "then drain gracefully",
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    service_config = ServiceConfig(
        n_workers=args.workers,
        executor=None if args.executor == "reference" else args.executor,
        max_batch_size=args.batch_size,
        max_batch_delay=args.batch_delay,
        storage=args.storage,
        kernel=args.kernel,
    )
    service = GrecaService(
        config=service_config,
        scalability_config=SMOKE_CONFIG if args.smoke else None,
    )
    await service.start()
    try:
        if args.serve_seconds is not None:
            return await serve_until_signal(service, args)
        return await serve_load(service, args)
    finally:
        await service.stop()


async def serve_until_signal(service: GrecaService, args: argparse.Namespace) -> int:
    # One warmup query makes the shm segments exist before READY, so the
    # watcher (the shm-lifecycle kill test) knows exactly what must vanish.
    warmup = GroupQuery(group=tuple(service.environment.random_groups(1)[0]))
    await service.submit(warmup)
    # Handlers must be live before READY is announced: a watcher may signal
    # the instant it reads the line, and a default-disposition SIGTERM in
    # that window would kill the process without draining.
    stop_event = asyncio.Event()
    service.install_signal_handlers(stop_event)
    print("SEGMENTS", *service.environment.shm_segment_names(), flush=True)
    print("READY", flush=True)
    try:
        await asyncio.wait_for(stop_event.wait(), timeout=args.serve_seconds)
    except asyncio.TimeoutError:
        pass
    names = list(service.environment.shm_segment_names())
    await service.stop()
    leaked = leaked_segments(names)
    if leaked:
        print("LEAKED", *leaked, flush=True)
        return 2
    print(f"CLEAN {len(names)} segment(s) unlinked", flush=True)
    return 0


async def serve_load(service: GrecaService, args: argparse.Namespace) -> int:
    clients = default_queries(
        service.environment, args.clients, args.queries, seed=args.seed
    )
    responses, wall_seconds = await run_load(service, clients)
    summary = summarise_latencies(
        [response.latency for response in responses], wall_seconds, args.clients
    )
    print(summary.format_summary(), flush=True)

    failures = 0
    if args.check_equivalence:
        mismatched = sum(
            1
            for response in responses
            if response.record != service.reference_record(response.query)
        )
        if mismatched:
            print(f"EQUIVALENCE FAILED for {mismatched} response(s)", flush=True)
            failures += 1
        else:
            print(f"equivalence OK over {len(responses)} responses", flush=True)

    if not (summary.p99_ms >= 0 and summary.n_queries == args.clients * args.queries):
        print("latency summary incomplete", flush=True)
        failures += 1

    names = list(service.environment.shm_segment_names())
    await service.stop()
    leaked = leaked_segments(names)
    if leaked:
        print("LEAKED", *leaked, flush=True)
        failures += 1
    else:
        print(f"CLEAN {len(names)} segment(s) unlinked", flush=True)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(run(args))


if __name__ == "__main__":
    sys.exit(main())
