"""Figure 2 — qualitative comparison of the consensus functions.

Participants compare the AP, MO and PD recommendation lists (all computed
with temporal affinities) and pick the one they prefer; the paper reports the
share of votes per function and group characteristic.  The paper's exact
percentages are embedded in its source and reproduced below as the reference.

Qualitative shape to reproduce: PD is the overall method of choice,
especially for loosely connected groups (dissimilar, low affinity); AP is
strong for small and high-affinity groups; MO does comparatively better for
large groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.study.comparative import ComparativeEvaluation, ConsensusComparison, FIGURE2_FUNCTIONS
from repro.study.environment import CHARACTERISTICS, StudyEnvironment, build_study_environment

#: The paper's reported vote shares (percent), per consensus function and characteristic.
PAPER_REFERENCE: dict[str, dict[str, float]] = {
    "AP": {"Sim": 27.78, "Diss": 22.22, "Small": 44.44, "Large": 16.67, "High Aff": 38.89, "Low Aff": 22.22},
    "MO": {"Sim": 22.22, "Diss": 33.33, "Small": 16.67, "Large": 44.44, "High Aff": 16.67, "Low Aff": 33.33},
    "PD": {"Sim": 50.0, "Diss": 44.44, "Small": 38.89, "Large": 38.89, "High Aff": 44.44, "Low Aff": 44.44},
}


@dataclass(frozen=True)
class Figure2Result:
    """Measured vote shares next to the paper's values."""

    comparison: ConsensusComparison
    reference: Mapping[str, Mapping[str, float]]

    def rows(self) -> list[dict[str, object]]:
        """Flat rows: characteristic, function, measured share, paper share."""
        rows = []
        for characteristic in CHARACTERISTICS:
            shares = self.comparison.preference_percent[characteristic]
            for name in FIGURE2_FUNCTIONS:
                rows.append(
                    {
                        "characteristic": characteristic,
                        "consensus": name,
                        "preference_percent": round(shares[name], 2),
                        "paper_percent": self.reference[name][characteristic],
                    }
                )
        return rows

    def format_table(self) -> str:
        """Human-readable rendering."""
        lines = ["Figure 2 — consensus-function preference shares (%)"]
        lines.append(f"{'characteristic':<14}" + "".join(f"{n:>10}" for n in FIGURE2_FUNCTIONS))
        for characteristic in CHARACTERISTICS:
            shares = self.comparison.preference_percent[characteristic]
            values = "".join(f"{shares[n]:>10.1f}" for n in FIGURE2_FUNCTIONS)
            lines.append(f"{characteristic:<14}{values}")
        return "\n".join(lines)


def run(
    environment: StudyEnvironment | None = None,
    k: int = 5,
) -> Figure2Result:
    """Regenerate Figure 2."""
    environment = environment or build_study_environment()
    evaluation = ComparativeEvaluation(environment, k=k)
    return Figure2Result(
        comparison=evaluation.compare_consensus_functions(),
        reference=PAPER_REFERENCE,
    )
