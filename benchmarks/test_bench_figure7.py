"""Benchmark regenerating Figure 7 (%SA per group class)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure7


def test_figure7_group_classes(benchmark, scalability_env):
    """Compare GRECA's pruning for similar / dissimilar / high- / low-affinity groups."""
    result = run_once(
        benchmark, figure7.run, environment=scalability_env, n_groups_per_class=4
    )
    print()
    print(result.format_table())
    rows = {row["group_class"]: row for row in result.rows()}
    for row in rows.values():
        assert 0.0 < row["mean_percent_sa"] <= 100.0
    # Every group class enjoys substantial savings over the naive full scan.
    # NOTE: the paper additionally finds that *similar* groups prune best; on the
    # synthetic substrate the ordering between the classes can differ because
    # highly similar CF predictions compress the score distribution — this
    # deviation is recorded in EXPERIMENTS.md.
    assert all(row["saveup"] > 40.0 for row in rows.values())
