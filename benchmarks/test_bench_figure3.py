"""Benchmark regenerating Figure 3 (comparative quality evaluation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure3


def test_figure3_comparative_evaluation(benchmark, study_env):
    """Pairwise forced-choice comparisons of the temporal-affinity ingredients."""
    result = run_once(benchmark, figure3.run, environment=study_env)
    print()
    print(result.format_table())
    assert len(result.charts) == 3
    affinity_chart = result.charts["A (Affinity-aware vs Affinity-agnostic)"]
    # Affinity-aware recommendations are never rejected outright: they win at
    # least half of the votes on average (the paper reports ~75%).
    assert affinity_chart.overall() >= 45.0
