"""Command-line driver regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments.runner                 # everything (scaled down)
    python -m repro.experiments.runner figure5 figure8 # selected experiments
    python -m repro.experiments.runner --list          # show available names
    python -m repro.experiments.runner --quick         # perf smoke gate (one
                                                       # scalability point under
                                                       # a time budget)
    python -m repro.experiments.runner --workers 4     # shard group evaluation
                                                       # across 4 process workers
                                                       # (bit-identical results)
    python -m repro.experiments.runner --workers 4 --executor persistent
                                                       # same, but one warm worker
                                                       # pool + one shared-memory
                                                       # substrate shipment for the
                                                       # whole figure suite
    python -m repro.experiments.runner --workers 4 --executor supervised
                                                       # fault-tolerant dispatch:
                                                       # per-shard timeouts, retries,
                                                       # pool self-healing, serial
                                                       # degradation; prints a
                                                       # dispatch summary at the end
                                                       # (--shard-timeout/--retries
                                                       # tune the policy)
    python -m repro.experiments.runner --workers 4 --storage mmap
                                                       # same bit-identical results,
                                                       # but the column store spools
                                                       # to memory-mapped files
                                                       # instead of /dev/shm
    python -m repro.experiments.runner --kernel fused  # same bit-identical results
                                                       # on the batched numpy round
                                                       # kernel (``numba`` opts into
                                                       # the njit tier when the
                                                       # kernels extra is installed)

Each experiment prints the same rows/series the paper reports (with the
paper's own values alongside where they are known).  Quality experiments
(figures 1-3) share one study environment, scalability experiments (figures
5-8) share one scalability environment, so running everything stays fast.
"""

from __future__ import annotations

import argparse
from typing import Callable, Iterable

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table5,
)
from repro.experiments.scalability import ScalabilityEnvironment
from repro.parallel import (
    ExecutionPolicy,
    SupervisionPolicy,
    executor_names,
    kernel_names,
    resolve_policy,
    summarise_reports,
    validate_executor_name,
    validate_kernel_name,
    validate_storage_name,
)
from repro.study.environment import build_study_environment

#: Experiment names in the order they appear in the paper.
EXPERIMENTS = (
    "table5",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
)


def run_all(
    names: Iterable[str] | None = None,
    print_fn: Callable[[str], None] = print,
    n_workers: int | None = None,
    executor: str | None = None,
    supervision: SupervisionPolicy | None = None,
    storage: str | None = None,
    kernel: str | None = None,
    policy: ExecutionPolicy | None = None,
) -> dict[str, object]:
    """Run the selected experiments (all of them by default) and print their tables.

    Returns a mapping from experiment name to its result object, so that the
    function is also usable programmatically (EXPERIMENTS.md was produced from
    these results).  ``n_workers`` shards the group evaluations of the
    figure 4-8 drivers across process workers (results are bit-identical to
    the serial run); ``executor`` picks the backend (``serial``, ``process``,
    ``persistent`` — a warm worker pool across the whole figure suite, paying
    spawn and substrate shipment once — or ``supervised``, which adds
    fault-tolerant dispatch on top of that warm pool and prints a recovery
    summary at the end).  ``supervision`` overrides the supervised policy
    (timeouts, retry budget).  ``storage`` picks the column-store backend
    (``shm`` shared memory or ``mmap`` spool files).  ``kernel`` picks the
    GRECA round-kernel tier every evaluation runs on (``reference``,
    ``fused`` or, when the kernels extra is installed, ``numba`` — all
    bit-identical).  All of these can arrive bundled as one
    :class:`~repro.parallel.ExecutionPolicy` via ``policy=`` instead —
    mixing the two spellings raises at the
    :func:`~repro.parallel.resolve_policy` choice point, and unknown
    executor, storage or kernel names raise :class:`ValueError` before
    anything runs.
    """
    policy = resolve_policy(
        policy, n_workers=n_workers, executor=executor, storage=storage, kernel=kernel
    )
    selected = list(names) if names else list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")

    results: dict[str, object] = {}
    study_env = None
    scalability_env = None

    def study_environment():
        nonlocal study_env
        if study_env is None:
            print_fn("[setup] building the study environment (cohort, recommender, oracle)...")
            study_env = build_study_environment()
        return study_env

    def scalability_environment():
        nonlocal scalability_env
        if scalability_env is None:
            print_fn("[setup] building the scalability environment (dataset, recommender)...")
            scalability_env = ScalabilityEnvironment()
            if supervision is not None:
                scalability_env.supervision = supervision
        return scalability_env

    knobs = dict(policy=policy)
    try:
        for name in selected:
            print_fn(f"\n=== {name} ===")
            if name == "table5":
                result = table5.run()
            elif name == "figure1":
                result = figure1.run(environment=study_environment())
            elif name == "figure2":
                result = figure2.run(environment=study_environment())
            elif name == "figure3":
                result = figure3.run(environment=study_environment())
            elif name == "figure4":
                result = figure4.run(**knobs)
            elif name == "figure5":
                result = figure5.run(environment=scalability_environment(), **knobs)
            elif name == "figure6":
                result = figure6.run(environment=scalability_environment(), **knobs)
            elif name == "figure7":
                result = figure7.run(environment=scalability_environment(), **knobs)
            else:
                result = figure8.run(environment=scalability_environment(), **knobs)
            results[name] = result
            print_fn(result.format_table())
        if scalability_env is not None and scalability_env.dispatch_reports:
            print_fn("")
            print_fn(summarise_reports(scalability_env.dispatch_reports))
    finally:
        if scalability_env is not None:
            scalability_env.close()  # warm pools / shm segments, if any
    return results


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="perf smoke: run one scalability point under a time budget and "
        "exit non-zero when the budget is blown",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard group evaluations across N process workers "
        "(default: serial; results are bit-identical either way)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help="execution backend for sharded evaluation: one of "
        + ", ".join(executor_names())
        + " (default: process when --workers is given; unknown names raise "
        "ValueError at the single validation choice point)",
    )
    parser.add_argument(
        "--storage",
        default=None,
        metavar="NAME",
        help='column-store backend for sharded evaluation: "shm" shared '
        'memory (the default) or "mmap" memory-mapped spool files — the '
        "same axis ExecutionPolicy(storage=...) bundles programmatically; "
        "unknown names raise ValueError at the single storage choice point",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="GRECA round-kernel tier every evaluation runs on: one of "
        + ", ".join(kernel_names())
        + " (default: reference; all tiers are bit-identical — the same "
        "axis ExecutionPolicy(kernel=...) bundles programmatically; unknown "
        "names raise ValueError at the single kernel choice point)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="serving smoke: start the GrecaService front-end over the default "
        "substrate, fire the deterministic load generator, print the "
        "p50/p95/p99 latency summary and exit non-zero unless responses are "
        "bit-identical to the serial reference and /dev/shm is left clean "
        "(--workers/--executor tune the service pool)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard wall-clock timeout for --executor supervised "
        "(default: the policy default; only meaningful with supervised)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="per-shard retry budget for --executor supervised before "
        "degrading to the serial executor (default: the policy default)",
    )
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers <= 0:
        raise SystemExit("--workers must be positive")
    if args.serve:
        if args.experiments or args.quick:
            raise SystemExit("--serve does not combine with experiment names or --quick")
        # Delegate to the service CLI (python -m repro.service): same smoke
        # contract as `make serve-smoke`, over the full default substrate.
        from repro.service.__main__ import main as service_main

        forwarded = ["--check-equivalence"]
        if args.workers is not None:
            forwarded += ["--workers", str(args.workers)]
        if args.executor is not None:
            forwarded += ["--executor", args.executor]
        if args.storage is not None:
            forwarded += ["--storage", args.storage]
        if args.kernel is not None:
            forwarded += ["--kernel", args.kernel]
        return service_main(forwarded)
    if args.storage is not None:
        # The single storage choice point (repro.parallel.storage
        # .validate_storage_name): unknown backends fail here, not deep
        # inside an export.
        validate_storage_name(args.storage)
    if args.kernel is not None:
        # The single kernel choice point (repro.core.kernels
        # .validate_kernel_name): unknown tiers fail here, not mid-run.
        validate_kernel_name(args.kernel)
    if args.executor is not None:
        # The single choice point (repro.parallel.pool.validate_executor_name):
        # unknown backends fail here, not deep inside evaluate_tasks.
        validate_executor_name(args.executor)
        if args.executor != "serial" and args.workers is None:
            raise SystemExit(
                f"--executor {args.executor} needs --workers N "
                "(process-based backends require an explicit worker count)"
            )
    supervision = None
    if args.shard_timeout is not None or args.retries is not None:
        if args.executor != "supervised":
            raise SystemExit(
                "--shard-timeout/--retries tune the supervised dispatch policy: "
                "combine them with --executor supervised"
            )
        defaults = SupervisionPolicy()
        supervision = SupervisionPolicy(
            timeout=args.shard_timeout if args.shard_timeout is not None else defaults.timeout,
            max_retries=args.retries if args.retries is not None else defaults.max_retries,
        )
    if args.list:
        print("\n".join(EXPERIMENTS))
        return 0
    if args.quick:
        if args.experiments:
            raise SystemExit("--quick does not combine with experiment names")
        from repro.experiments.scalability import run_quick_smoke

        result = run_quick_smoke(
            n_workers=args.workers,
            executor=args.executor,
            storage=args.storage,
            kernel=args.kernel,
        )
        print(result.format_summary())
        return 0 if result.within_budget else 1
    run_all(
        args.experiments or None,
        n_workers=args.workers,
        executor=args.executor,
        supervision=supervision,
        storage=args.storage,
        kernel=args.kernel,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
