"""Ad-hoc group formation and cohesiveness metrics."""

from repro.groups.cohesion import (
    group_cohesiveness,
    is_high_affinity,
    mean_pairwise_similarity,
    minimum_pairwise_affinity,
    pairwise_similarities,
    summed_pairwise_similarity,
)
from repro.groups.formation import (
    HIGH_AFFINITY_THRESHOLD,
    LARGE_GROUP_SIZE,
    SMALL_GROUP_SIZE,
    GroupFormer,
    GroupProfile,
)

__all__ = [
    "GroupFormer",
    "GroupProfile",
    "HIGH_AFFINITY_THRESHOLD",
    "LARGE_GROUP_SIZE",
    "SMALL_GROUP_SIZE",
    "group_cohesiveness",
    "is_high_affinity",
    "mean_pairwise_similarity",
    "minimum_pairwise_affinity",
    "pairwise_similarities",
    "summed_pairwise_similarity",
]
