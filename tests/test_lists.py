"""Tests for repro.core.lists (sorted access lists, access accounting)."""

from __future__ import annotations

import pytest

from repro.core.lists import (
    KIND_PREFERENCE,
    KIND_STATIC_AFFINITY,
    AccessCounter,
    SortedAccessList,
    build_affinity_lists,
    build_preference_list,
    total_entries,
)
from repro.exceptions import AlgorithmError


class TestAccessCounter:
    def test_counting_and_reset(self):
        counter = AccessCounter()
        counter.record_sequential()
        counter.record_sequential(3)
        counter.record_random(2)
        assert counter.sequential == 4
        assert counter.random == 2
        assert counter.total == 6
        counter.reset()
        assert counter.total == 0


class TestSortedAccessList:
    @pytest.fixture()
    def access_list(self):
        return SortedAccessList("PL(u1)", KIND_PREFERENCE, {"a": 1.0, "b": 5.0, "c": 3.0}.items())

    def test_entries_sorted_descending(self, access_list):
        assert [entry.key for entry in access_list.entries] == ["b", "c", "a"]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(AlgorithmError):
            SortedAccessList("dup", KIND_PREFERENCE, [("a", 1.0), ("a", 2.0)])

    def test_sequential_access_counts_and_advances(self, access_list):
        first = access_list.sequential_access()
        second = access_list.sequential_access()
        assert (first.key, first.score) == ("b", 5.0)
        assert (second.key, second.score) == ("c", 3.0)
        assert access_list.counter.sequential == 2
        assert access_list.position == 2

    def test_cursor_score_upper_bounds_unseen_entries(self, access_list):
        assert access_list.cursor_score == 5.0  # nothing read yet: top score
        access_list.sequential_access()
        assert access_list.cursor_score == 5.0  # last value read
        access_list.sequential_access()
        assert access_list.cursor_score == 3.0
        access_list.sequential_access()
        assert access_list.exhausted
        assert access_list.cursor_score == 0.0

    def test_sequential_access_after_exhaustion_returns_none(self, access_list):
        for _ in range(3):
            access_list.sequential_access()
        assert access_list.sequential_access() is None
        assert access_list.counter.sequential == 3  # the failed read is not counted

    def test_random_access_counts(self, access_list):
        assert access_list.random_access("c") == 3.0
        assert access_list.random_access("zzz") == 0.0
        assert access_list.counter.random == 2

    def test_peek_does_not_count(self, access_list):
        assert access_list.peek("b") == 5.0
        assert access_list.counter.total == 0

    def test_reset_rewinds_cursor_only(self, access_list):
        access_list.sequential_access()
        access_list.reset()
        assert access_list.position == 0
        assert access_list.counter.sequential == 1

    def test_empty_list(self):
        empty = SortedAccessList("empty", KIND_PREFERENCE, [])
        assert empty.exhausted
        assert empty.cursor_score == 0.0
        assert empty.sequential_access() is None

    def test_shared_counter(self):
        counter = AccessCounter()
        first = SortedAccessList("a", KIND_PREFERENCE, [("x", 1.0)], counter)
        second = SortedAccessList("b", KIND_PREFERENCE, [("y", 2.0)], counter)
        first.sequential_access()
        second.sequential_access()
        assert counter.sequential == 2


class TestBuilders:
    def test_build_preference_list(self):
        counter = AccessCounter()
        plist = build_preference_list(7, {10: 4.0, 11: 2.0}, counter)
        assert plist.name == "PL(u7)"
        assert plist.kind == KIND_PREFERENCE
        assert len(plist) == 2

    def test_build_affinity_lists_partitioning(self):
        """n members produce n-1 lists; the i-th holds the pairs with later members."""
        members = [5, 9, 2]
        values = {(5, 9): 0.9, (9, 2): 0.4, (5, 2): 0.1}
        lists = build_affinity_lists(members, values, KIND_STATIC_AFFINITY, "affS")
        assert len(lists) == 2
        assert lists[0].name == "LaffS(u5)"
        assert {entry.key for entry in lists[0].entries} == {(5, 9), (2, 5)}
        assert {entry.key for entry in lists[1].entries} == {(2, 9)}
        assert total_entries(lists) == 3  # n(n-1)/2 entries overall

    def test_build_affinity_lists_missing_pairs_default_to_zero(self):
        lists = build_affinity_lists([1, 2, 3], {(1, 2): 0.5}, KIND_STATIC_AFFINITY, "affS")
        values = {entry.key: entry.score for lst in lists for entry in lst.entries}
        assert values[(1, 3)] == 0.0
        assert values[(2, 3)] == 0.0

    def test_build_affinity_lists_requires_two_members(self):
        with pytest.raises(AlgorithmError):
            build_affinity_lists([1], {}, KIND_STATIC_AFFINITY, "affS")
