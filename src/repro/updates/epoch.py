"""Epoch management: apply deltas, journal them, restore from disk.

:class:`EpochManager` wraps a
:class:`~repro.experiments.scalability.ScalabilityEnvironment` and gives its
delta ingestion a durable identity:

* :meth:`apply` routes a :class:`~repro.updates.deltas.RatingDelta` through
  :meth:`~repro.experiments.scalability.ScalabilityEnvironment.apply_delta`
  and records it in the in-memory journal;
* :meth:`snapshot` persists a JSON journal — the environment config plus
  every applied delta, in order — to disk;
* :meth:`restore` rebuilds the base environment from the journalled config
  and replays the deltas through the same incremental path.

Replay-from-journal *is* the recovery semantics: deltas are deterministic
data (no RNG is consumed when applying them), and every ``apply`` is
bit-identical to a full rebuild over the merged substrate, so a restored
manager reaches exactly the state the snapshotted one held — the epoch
round-trip test asserts record-level equality after restore.

Storage-agnostic by construction: :meth:`apply` retires stale column-store
exports through the environment, which sweeps *every* registry it holds —
shared-memory segments unlink and mmap spool files delete under the same
generation-token floor, so epoch adoption behaves identically whichever
``ExecutionPolicy.storage`` backend later dispatches run under.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.timeline import Period
from repro.data.ratings import Rating
from repro.data.social import PageLike
from repro.exceptions import ConfigurationError
from repro.experiments.scalability import (
    DeltaReport,
    ScalabilityConfig,
    ScalabilityEnvironment,
)
from repro.updates.deltas import RatingDelta

#: Journal schema version; bumped on any incompatible layout change.
JOURNAL_VERSION = 1


def delta_to_json(delta: RatingDelta) -> dict:
    """A JSON-serialisable form of one delta (exact round-trip)."""
    return {
        "ratings": [
            [rating.user_id, rating.item_id, rating.value, rating.timestamp]
            for rating in delta.ratings
        ],
        "page_likes": [
            [like.user_id, like.category, like.timestamp] for like in delta.page_likes
        ],
        "new_period": (
            None if delta.new_period is None else [delta.new_period.start, delta.new_period.end]
        ),
    }


def delta_from_json(payload: dict) -> RatingDelta:
    """Rebuild a delta from :func:`delta_to_json` output."""
    new_period = payload.get("new_period")
    return RatingDelta(
        ratings=tuple(
            Rating(int(user), int(item), float(value), int(timestamp))
            for user, item, value, timestamp in payload.get("ratings", [])
        ),
        page_likes=tuple(
            PageLike(int(user), int(category), int(timestamp))
            for user, category, timestamp in payload.get("page_likes", [])
        ),
        new_period=None if new_period is None else Period(int(new_period[0]), int(new_period[1])),
    )


class EpochManager:
    """Delta ingestion with a journal: apply, snapshot, restore.

    The manager owns nothing it did not create: an environment passed in
    stays the caller's to close.  :meth:`restore` builds (and therefore
    owns) a fresh one — close it via the returned manager's
    :attr:`environment`.
    """

    def __init__(self, environment: ScalabilityEnvironment) -> None:
        self.environment = environment
        self.applied: list[RatingDelta] = []
        self.reports: list[DeltaReport] = []

    @property
    def epoch(self) -> int:
        """The environment's current epoch (0 = base substrate)."""
        return self.environment.epoch

    def apply(self, delta: RatingDelta) -> DeltaReport:
        """Apply one delta incrementally and journal it."""
        report = self.environment.apply_delta(delta)
        self.applied.append(delta)
        self.reports.append(report)
        return report

    # -- persistence ---------------------------------------------------------------

    def snapshot(self, path: str | Path) -> Path:
        """Write the JSON journal (config + applied deltas) to ``path``."""
        path = Path(path)
        journal = {
            "version": JOURNAL_VERSION,
            "epoch": self.epoch,
            "config": asdict(self.environment.config),
            "deltas": [delta_to_json(delta) for delta in self.applied],
        }
        path.write_text(json.dumps(journal, indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def restore(cls, path: str | Path) -> "EpochManager":
        """Rebuild the environment from a journal and replay its deltas.

        The base substrate is regenerated from the journalled config (the
        synthetic generators are seed-deterministic), then every delta is
        re-applied through the incremental path in journal order.  The
        restored manager's epoch equals the snapshotted one.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != JOURNAL_VERSION:
            raise ConfigurationError(
                f"unsupported journal version {version!r} (expected {JOURNAL_VERSION})"
            )
        config = ScalabilityConfig(**payload["config"])
        manager = cls(ScalabilityEnvironment(config))
        for entry in payload.get("deltas", []):
            manager.apply(delta_from_json(entry))
        if manager.epoch != payload.get("epoch"):
            raise ConfigurationError(
                f"journal replay reached epoch {manager.epoch}, "
                f"snapshot recorded {payload.get('epoch')}"
            )
        return manager
