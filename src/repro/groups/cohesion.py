"""Group cohesiveness metrics.

The paper forms groups along three axes (Section 4.1.3): size, cohesiveness
(how similar the members' movie tastes are) and affinity strength.  This
module provides the cohesiveness side: pairwise rating similarity between
members, the summed pairwise similarity used to pick the most/least similar
groups, and simple descriptive helpers used by the experiments and tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.cf.matrix import RatingMatrix
from repro.cf.similarity import pairwise_user_similarity, similarity_matrix
from repro.core.affinity import AffinityModel
from repro.core.timeline import Period
from repro.data.ratings import RatingsDataset
from repro.exceptions import GroupError


def pairwise_similarities(
    dataset: RatingsDataset, group: Sequence[int], metric: str = "cosine"
) -> dict[tuple[int, int], float]:
    """Rating similarity of every unordered pair within the group."""
    _validate(group)
    matrix = RatingMatrix(dataset.restrict_users(group))
    values: dict[tuple[int, int], float] = {}
    for index, left in enumerate(group):
        for right in group[index + 1 :]:
            values[(min(left, right), max(left, right))] = pairwise_user_similarity(
                matrix, left, right, metric=metric
            )
    return values


def summed_pairwise_similarity(
    dataset: RatingsDataset, group: Sequence[int], metric: str = "cosine"
) -> float:
    """Sum of pairwise similarities — the quantity the paper maximises/minimises."""
    return sum(pairwise_similarities(dataset, group, metric).values())


def mean_pairwise_similarity(
    dataset: RatingsDataset, group: Sequence[int], metric: str = "cosine"
) -> float:
    """Average pairwise similarity within the group."""
    values = pairwise_similarities(dataset, group, metric)
    return sum(values.values()) / len(values) if values else 0.0


def group_cohesiveness(
    dataset: RatingsDataset, group: Sequence[int], metric: str = "cosine"
) -> float:
    """Alias for :func:`mean_pairwise_similarity` (the paper's "cohesiveness")."""
    return mean_pairwise_similarity(dataset, group, metric)


def minimum_pairwise_affinity(
    affinity: AffinityModel, group: Sequence[int], period: Period | None = None
) -> float:
    """Smallest pairwise affinity within the group.

    The paper calls a group *high affinity* "if each pair-wise affinity in a
    group is equal to 0.4 or higher", i.e. if this minimum is at least 0.4.
    """
    _validate(group)
    values = affinity.pairwise(list(group), period)
    return min(values.values()) if values else 0.0


def is_high_affinity(
    affinity: AffinityModel,
    group: Sequence[int],
    period: Period | None = None,
    threshold: float = 0.4,
) -> bool:
    """The paper's high-affinity predicate (every pair >= ``threshold``)."""
    return minimum_pairwise_affinity(affinity, group, period) >= threshold


def full_similarity_matrix(dataset: RatingsDataset, metric: str = "cosine"):
    """User-by-user similarity matrix plus the user ordering (for group search)."""
    matrix = RatingMatrix(dataset)
    return similarity_matrix(matrix, metric=metric, axis="user"), matrix.users


def _validate(group: Sequence[int]) -> None:
    if len(group) < 2:
        raise GroupError("cohesion metrics require at least two members")
    if len(set(group)) != len(group):
        raise GroupError("the group contains duplicate members")
