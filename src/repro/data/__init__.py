"""Data substrates: ratings, MovieLens, social graph and study cohort."""

from repro.data.movielens import (
    MovieLensConfig,
    generate_movielens_like,
    load_movielens,
    movielens_1m_config,
)
from repro.data.ratings import (
    MAX_RATING,
    MIN_RATING,
    DatasetStats,
    Rating,
    RatingsDataset,
    dataset_from_tuples,
)
from repro.data.social import (
    N_PAGE_CATEGORIES,
    PageLike,
    SocialConfig,
    SocialNetwork,
    SocialNetworkGenerator,
)
from repro.data.study_cohort import (
    StudyCohort,
    StudyConfig,
    build_movie_sets,
    build_study_cohort,
)

__all__ = [
    "MAX_RATING",
    "MIN_RATING",
    "N_PAGE_CATEGORIES",
    "DatasetStats",
    "MovieLensConfig",
    "PageLike",
    "Rating",
    "RatingsDataset",
    "SocialConfig",
    "SocialNetwork",
    "SocialNetworkGenerator",
    "StudyCohort",
    "StudyConfig",
    "build_movie_sets",
    "build_study_cohort",
    "dataset_from_tuples",
    "generate_movielens_like",
    "load_movielens",
    "movielens_1m_config",
]
