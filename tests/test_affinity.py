"""Tests for repro.core.affinity (temporal affinity models)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affinity import (
    AffinityColumns,
    ComputedAffinities,
    ContinuousAffinityModel,
    DiscreteAffinityModel,
    ExplicitAffinityModel,
    NoAffinityModel,
    TimeAgnosticAffinityModel,
    build_affinity_model,
    clamp01,
    combine_continuous,
    combine_discrete,
    pair_key,
)
from repro.core.timeline import uniform_timeline
from repro.exceptions import AffinityError


class TestHelpers:
    def test_pair_key_is_canonical(self):
        assert pair_key(3, 1) == (1, 3)
        assert pair_key(1, 3) == (1, 3)

    def test_pair_key_rejects_self_pair(self):
        with pytest.raises(AffinityError):
            pair_key(2, 2)

    def test_clamp01(self):
        assert clamp01(-0.5) == 0.0
        assert clamp01(0.25) == 0.25
        assert clamp01(1.7) == 1.0

    def test_combine_discrete_matches_equation_one(self):
        # drift = (0.6 - 0.2) + (0.2 - 0.4) = 0.2, Gamma = 2 periods -> aff_V = 0.1
        value = combine_discrete(0.3, [0.6, 0.2], [0.2, 0.4])
        assert value == pytest.approx(0.4)

    def test_combine_discrete_without_periods_is_static(self):
        assert combine_discrete(0.7, [], []) == pytest.approx(0.7)

    def test_combine_continuous_growth_and_decay(self):
        growth = combine_continuous(0.3, [0.9], [0.1])
        decay = combine_continuous(0.3, [0.1], [0.9])
        assert growth == pytest.approx(min(1.0, 0.3 * math.exp(0.8)))
        assert decay == pytest.approx(0.3 * math.exp(-0.8))

    def test_combine_continuous_zero_static_stays_zero(self):
        assert combine_continuous(0.0, [1.0, 1.0], [0.0, 0.0]) == 0.0

    @given(
        static=st.floats(min_value=0, max_value=1),
        periodic=st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=6),
        averages=st.lists(st.floats(min_value=0, max_value=1), min_size=6, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_combinations_stay_normalised(self, static, periodic, averages):
        averages = averages[: len(periodic)]
        for combine in (combine_discrete, combine_continuous):
            value = combine(static, periodic, averages)
            assert 0.0 <= value <= 1.0

    @given(
        static=st.floats(min_value=0, max_value=1),
        low=st.lists(st.floats(min_value=0, max_value=0.5), min_size=2, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_combinations_are_monotone_in_periodic_values(self, static, low):
        """Raising any periodic affinity never lowers the combined affinity (Lemma 1)."""
        averages = [0.3] * len(low)
        high = [value + 0.5 for value in low]
        for combine in (combine_discrete, combine_continuous):
            assert combine(static, high, averages) >= combine(static, low, averages) - 1e-12


class TestNoAffinityModel:
    def test_always_zero(self):
        model = NoAffinityModel()
        assert model.affinity(1, 2) == 0.0
        assert model.mean_pairwise([1, 2, 3]) == 0.0

    def test_rejects_self_pair(self):
        with pytest.raises(AffinityError):
            NoAffinityModel().affinity(4, 4)


class TestExplicitAffinityModel:
    def test_static_only(self):
        model = ExplicitAffinityModel({(1, 2): 0.8, (2, 3): 0.3})
        assert model.affinity(2, 1) == pytest.approx(0.8)
        assert model.affinity(1, 3) == 0.0

    def test_periodic_requires_timeline(self):
        with pytest.raises(AffinityError):
            ExplicitAffinityModel({}, periodic={None: {}})

    def test_periodic_average_up_to_period(self, short_timeline):
        model = ExplicitAffinityModel(
            {(1, 2): 0.2},
            periodic={
                short_timeline[0]: {(1, 2): 0.4},
                short_timeline[1]: {(1, 2): 0.2},
            },
            timeline=short_timeline,
        )
        assert model.affinity(1, 2, short_timeline[0]) == pytest.approx(0.6)
        assert model.affinity(1, 2, short_timeline[1]) == pytest.approx(0.2 + 0.3)

    def test_pairwise_helper(self):
        model = ExplicitAffinityModel({(1, 2): 0.5, (1, 3): 0.1, (2, 3): 0.9})
        values = model.pairwise([1, 2, 3])
        assert values == {(1, 2): 0.5, (1, 3): 0.1, (2, 3): 0.9}
        assert model.mean_pairwise([1, 2, 3]) == pytest.approx(0.5)


class TestComputedAffinities:
    @pytest.fixture()
    def computed(self, tiny_social, short_timeline):
        return ComputedAffinities(tiny_social, short_timeline)

    def test_requires_two_users(self, tiny_social, short_timeline):
        with pytest.raises(AffinityError):
            ComputedAffinities(tiny_social, short_timeline, users=[1])

    def test_static_normalisation_by_max_pair(self, computed):
        """The paper normalises static affinity by the maximum pairwise value."""
        raw_max = max(
            computed.static_raw(a, b) for a, b in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        )
        assert raw_max > 0
        values = [
            computed.static_normalized(a, b)
            for a, b in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        ]
        assert max(values) == pytest.approx(1.0)
        assert all(0.0 <= value <= 1.0 for value in values)

    def test_periodic_raw_counts_common_category_likes(self, computed, short_timeline):
        assert computed.periodic_raw(1, 2, short_timeline[0]) == 2.0
        assert computed.periodic_raw(1, 2, short_timeline[2]) == 0.0
        assert computed.periodic_raw(3, 4, short_timeline[2]) == 1.0

    def test_population_average(self, computed, short_timeline):
        # Period 0: only the (1,2) pair shares 2 categories among 6 pairs.
        assert computed.population_average(short_timeline[0]) == pytest.approx(2.0 / 6.0)

    def test_unknown_period_rejected(self, computed):
        from repro.core.timeline import Period

        with pytest.raises(AffinityError):
            computed.periodic_raw(1, 2, Period(5_000, 6_000))
        with pytest.raises(AffinityError):
            computed.population_average(Period(5_000, 6_000))

    def test_drift_sign_tracks_population(self, computed, short_timeline):
        """Pairs liking more than average drift positively, others negatively."""
        assert computed.drift_sum(1, 2, short_timeline[0]) > 0
        assert computed.drift_sum(1, 4, short_timeline[0]) < 0

    def test_dynamic_discrete_normalises_by_period_count(self, computed, short_timeline):
        drift = computed.drift_sum(1, 2, short_timeline[1])
        assert computed.dynamic_discrete(1, 2, short_timeline[1]) == pytest.approx(drift / 2)

    def test_dynamic_continuous_rate_uses_elapsed_time(self, computed, short_timeline):
        drift = computed.drift_sum(1, 2, short_timeline[1])
        assert computed.dynamic_continuous_rate(1, 2, short_timeline[1]) == pytest.approx(drift / 199)


class TestModels:
    @pytest.fixture()
    def computed(self, tiny_social, short_timeline):
        return ComputedAffinities(tiny_social, short_timeline)

    def test_discrete_combines_static_and_drift(self, computed, short_timeline):
        model = DiscreteAffinityModel(computed)
        period = short_timeline[0]
        expected = clamp01(
            computed.static_normalized(1, 2) + computed.dynamic_discrete(1, 2, period)
        )
        assert model.affinity(1, 2, period) == pytest.approx(expected)

    def test_discrete_without_period_is_static(self, computed):
        model = DiscreteAffinityModel(computed)
        assert model.affinity(1, 2) == pytest.approx(computed.static_normalized(1, 2))

    def test_continuous_grows_with_positive_drift(self, computed, short_timeline):
        model = ContinuousAffinityModel(computed)
        period = short_timeline[0]
        static = computed.static_normalized(1, 2)
        assert model.affinity(1, 2, period) >= static  # (1,2) drift positively in p0

    def test_continuous_decays_with_negative_drift(self, computed, short_timeline):
        model = ContinuousAffinityModel(computed)
        static = computed.static_normalized(1, 4)
        if static > 0:
            assert model.affinity(1, 4, short_timeline[0]) < static

    def test_time_agnostic_ignores_period(self, computed, short_timeline):
        model = TimeAgnosticAffinityModel(computed)
        assert model.affinity(1, 2, short_timeline[0]) == model.affinity(1, 2, short_timeline[2])

    def test_all_models_symmetric_and_normalised(self, computed, short_timeline):
        models = [
            DiscreteAffinityModel(computed),
            ContinuousAffinityModel(computed),
            TimeAgnosticAffinityModel(computed),
        ]
        pairs = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        for model in models:
            for period in list(short_timeline) + [None]:
                for left, right in pairs:
                    value = model.affinity(left, right, period)
                    assert value == pytest.approx(model.affinity(right, left, period))
                    assert 0.0 <= value <= 1.0

    def test_factory(self, tiny_social, short_timeline):
        for name, cls in [
            ("discrete", DiscreteAffinityModel),
            ("continuous", ContinuousAffinityModel),
            ("time-agnostic", TimeAgnosticAffinityModel),
            ("none", NoAffinityModel),
        ]:
            model = build_affinity_model(name, tiny_social, short_timeline)
            assert isinstance(model, cls)

    def test_factory_rejects_unknown_model(self, tiny_social, short_timeline):
        with pytest.raises(AffinityError):
            build_affinity_model("quantum", tiny_social, short_timeline)


class TestAffinityColumns:
    """The columnar affinity representation and its exact dict façade."""

    STATIC = {(1, 2): 0.4, (3, 1): 0.7, (2, 3): 0.0}
    PERIODIC = {
        0: {(1, 2): 0.5, (1, 3): 0.25, (2, 3): 0.125},
        1: {(1, 2): 0.0, (1, 3): 1.0, (2, 3): 0.75},
    }
    AVERAGES = {0: 0.2, 1: 0.4}

    def test_round_trip_is_value_exact(self):
        columns = AffinityColumns.from_components(self.STATIC, self.PERIODIC, self.AVERAGES)
        static, periodic, averages = columns.to_components()
        # Keys come back canonicalised; values verbatim.
        assert static == {(1, 2): 0.4, (1, 3): 0.7, (2, 3): 0.0}
        assert periodic == self.PERIODIC
        assert averages == self.AVERAGES
        assert columns.n_pairs == 3 and columns.n_periods == 2
        assert columns.pair_index() == {(1, 2): 0, (1, 3): 1, (2, 3): 2}

    def test_prefix_selects_leading_periods(self):
        columns = AffinityColumns.from_components(self.STATIC, self.PERIODIC, self.AVERAGES)
        one = columns.prefix(1)
        static, periodic, averages = one.to_components()
        assert static == {(1, 2): 0.4, (1, 3): 0.7, (2, 3): 0.0}
        assert periodic == {0: self.PERIODIC[0]}
        assert averages == {0: 0.2}
        # The full prefix is the object itself; out-of-range prefixes fail.
        assert columns.prefix(2) is columns
        with pytest.raises(AffinityError):
            columns.prefix(3)
        with pytest.raises(AffinityError):
            columns.prefix(-1)

    def test_empty_components(self):
        columns = AffinityColumns.from_components({}, {}, {})
        assert columns.n_pairs == 0 and columns.n_periods == 0
        assert columns.to_components() == ({}, {}, {})

    def test_static_only_components(self):
        columns = AffinityColumns.from_components(self.STATIC)
        static, periodic, averages = columns.to_components()
        assert static == {(1, 2): 0.4, (1, 3): 0.7, (2, 3): 0.0}
        assert periodic == {} and averages == {}

    def test_missing_pairs_materialise_as_explicit_zero(self):
        # A pair only known periodically still gets a static column (0.0) —
        # exactly the value the index's own lookups default to.
        columns = AffinityColumns.from_components({(1, 2): 0.3}, {0: {(2, 3): 0.5}}, {0: 0.1})
        static, periodic, _ = columns.to_components()
        assert static == {(1, 2): 0.3, (2, 3): 0.0}
        assert periodic == {0: {(1, 2): 0.0, (2, 3): 0.5}}

    def test_non_contiguous_period_indices_rejected(self):
        with pytest.raises(AffinityError):
            AffinityColumns.from_components({}, {0: {}, 2: {}}, {0: 0.0, 2: 0.0})

    def test_orphan_averages_rejected_instead_of_dropped(self):
        # An average without a periodic row cannot be represented columnar;
        # dropping it silently would break the verbatim round-trip promise.
        with pytest.raises(AffinityError):
            AffinityColumns.from_components({}, {}, {0: 0.5})
        with pytest.raises(AffinityError):
            AffinityColumns.from_components({}, {0: {(1, 2): 0.1}}, {0: 0.2, 1: 0.3})

    def test_missing_average_materialises_as_explicit_zero(self):
        columns = AffinityColumns.from_components({}, {0: {(1, 2): 0.1}}, {})
        _, _, averages = columns.to_components()
        assert averages == {0: 0.0}

    def test_shape_validation(self):
        import numpy as np

        with pytest.raises(AffinityError):
            AffinityColumns(pairs=((1, 2),), static=np.zeros(2), periodic=np.zeros((0, 1)), averages=np.zeros(0))
        with pytest.raises(AffinityError):
            AffinityColumns(pairs=((1, 2),), static=np.zeros(1), periodic=np.zeros((2, 1)), averages=np.zeros(1))


class TestComputedAffinitiesColumnar:
    """The columnar substrate behind ComputedAffinities and its reconstruction."""

    @pytest.fixture()
    def computed(self, tiny_social, short_timeline):
        return ComputedAffinities(tiny_social, short_timeline)

    def test_from_columns_reconstruction_is_identical(self, computed, short_timeline):
        static, periodic = computed.raw_columns()
        rebuilt = ComputedAffinities.from_columns(
            short_timeline, computed.users, static, periodic, network=computed.network
        )
        pairs = [(a, b) for i, a in enumerate(computed.users) for b in computed.users[i + 1 :]]
        assert rebuilt.pairs == computed.pairs
        for left, right in pairs:
            assert rebuilt.static_raw(left, right) == computed.static_raw(left, right)
            assert rebuilt.static_normalized(left, right) == computed.static_normalized(left, right)
            for period in short_timeline:
                assert rebuilt.periodic_raw(left, right, period) == computed.periodic_raw(left, right, period)
                assert rebuilt.periodic_normalized(left, right, period) == computed.periodic_normalized(
                    left, right, period
                )
                assert rebuilt.drift_sum(left, right, period) == computed.drift_sum(left, right, period)
        for period in short_timeline:
            assert rebuilt.population_average(period) == computed.population_average(period)
            assert rebuilt.population_average_normalized(period) == computed.population_average_normalized(period)

    def test_group_columns_match_scalar_accessors_bit_for_bit(self, computed, short_timeline):
        pairs = [(2, 1), (1, 3), (4, 2)]  # uncanonical order on purpose
        columns = computed.group_columns(pairs)
        assert columns.pairs == ((1, 2), (1, 3), (2, 4))
        assert columns.n_periods == len(short_timeline)
        for position, (left, right) in enumerate(pairs):
            assert float(columns.static[position]) == computed.static_normalized(left, right)
            for row, period in enumerate(short_timeline):
                assert float(columns.periodic[row, position]) == computed.periodic_normalized(
                    left, right, period
                )
        for row, period in enumerate(short_timeline):
            assert float(columns.averages[row]) == computed.population_average_normalized(period)

    def test_group_columns_unknown_pairs_default_to_zero(self, computed):
        columns = computed.group_columns([(1, 2), (998, 999)])
        assert float(columns.static[1]) == 0.0
        assert not columns.periodic[:, 1].any()
