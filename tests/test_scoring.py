"""Tests for repro.core.scoring (vectorised scoring vs the scalar reference)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import Interval
from repro.core.consensus import (
    AVERAGE_PREFERENCE,
    LEAST_MISERY,
    PAIRWISE_DISAGREEMENT,
    PD_V2,
    ConsensusFunction,
    make_consensus,
)
from repro.core.scoring import consensus_bounds, consensus_scores, default_scale, preference_matrix
from repro.exceptions import AlgorithmError, ConsensusError

ALL_FUNCTIONS = (
    AVERAGE_PREFERENCE,
    LEAST_MISERY,
    PAIRWISE_DISAGREEMENT,
    PD_V2,
    ConsensusFunction(name="VAR", disagreement="variance", w1=0.5, w2=0.5),
)


class TestPreferenceMatrix:
    def test_matches_paper_formula(self):
        apref = np.array([[5.0, 1.0], [2.0, 4.0]])
        affinity = np.array([[0.0, 0.5], [0.5, 0.0]])
        prefs = preference_matrix(apref, affinity)
        # pref(u1, i1) = 5 + 0.5 * 2 ; pref(u2, i2) = 4 + 0.5 * 1
        np.testing.assert_allclose(prefs, [[6.0, 3.0], [4.5, 4.5]])

    def test_zero_affinity_is_identity(self):
        apref = np.random.default_rng(0).uniform(1, 5, size=(3, 7))
        prefs = preference_matrix(apref, np.zeros((3, 3)))
        np.testing.assert_allclose(prefs, apref)

    def test_shape_validation(self):
        with pytest.raises(AlgorithmError):
            preference_matrix(np.zeros(4), np.zeros((2, 2)))
        with pytest.raises(AlgorithmError):
            preference_matrix(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(AlgorithmError):
            preference_matrix(np.zeros((2, 3)), np.eye(2))


class TestConsensusScores:
    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(1)
        prefs = rng.uniform(0, 10, size=(4, 9))
        for consensus in ALL_FUNCTIONS:
            vectorised = consensus_scores(consensus, prefs, scale=10.0)
            for col in range(prefs.shape[1]):
                scalar = consensus.score(list(prefs[:, col]), scale=10.0)
                assert vectorised[col] == pytest.approx(scalar, abs=1e-9)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConsensusError):
            consensus_scores(AVERAGE_PREFERENCE, np.zeros((2, 2)), scale=0.0)

    def test_single_member_group(self):
        prefs = np.array([[2.0, 4.0]])
        scores = consensus_scores(PAIRWISE_DISAGREEMENT, prefs, scale=5.0)
        # disagreement of a single member is 0
        np.testing.assert_allclose(scores, 0.5 * prefs[0] / 5.0 + 0.5)


class TestConsensusBounds:
    def test_matches_interval_reference(self):
        rng = np.random.default_rng(2)
        low = rng.uniform(0, 5, size=(3, 6))
        high = low + rng.uniform(0, 5, size=(3, 6))
        for consensus in ALL_FUNCTIONS:
            f_low, f_high = consensus_bounds(consensus, low, high, scale=10.0)
            for col in range(low.shape[1]):
                intervals = [Interval(low[row, col], high[row, col]) for row in range(3)]
                reference = consensus.score_bounds(intervals, scale=10.0)
                assert f_low[col] == pytest.approx(reference.low, abs=1e-9)
                assert f_high[col] == pytest.approx(reference.high, abs=1e-9)

    def test_bounds_bracket_exact(self):
        rng = np.random.default_rng(3)
        low = rng.uniform(0, 5, size=(4, 8))
        width = rng.uniform(0, 3, size=(4, 8))
        high = low + width
        exact = low + width * rng.uniform(0, 1, size=(4, 8))
        for consensus in ALL_FUNCTIONS:
            f_low, f_high = consensus_bounds(consensus, low, high, scale=10.0)
            scores = consensus_scores(consensus, exact, scale=10.0)
            assert np.all(f_low <= scores + 1e-9)
            assert np.all(f_high >= scores - 1e-9)

    def test_degenerate_bounds_equal_exact_scores(self):
        rng = np.random.default_rng(4)
        prefs = rng.uniform(0, 5, size=(3, 5))
        for consensus in (AVERAGE_PREFERENCE, LEAST_MISERY, PAIRWISE_DISAGREEMENT, PD_V2):
            f_low, f_high = consensus_bounds(consensus, prefs, prefs, scale=5.0)
            scores = consensus_scores(consensus, prefs, scale=5.0)
            np.testing.assert_allclose(f_low, scores, atol=1e-9)
            np.testing.assert_allclose(f_high, scores, atol=1e-9)

    def test_degenerate_variance_bounds_still_bracket(self):
        """The variance disagreement keeps conservative (but sound) bounds."""
        rng = np.random.default_rng(5)
        prefs = rng.uniform(0, 5, size=(3, 5))
        consensus = ConsensusFunction(name="VAR", disagreement="variance", w1=0.5, w2=0.5)
        f_low, f_high = consensus_bounds(consensus, prefs, prefs, scale=5.0)
        scores = consensus_scores(consensus, prefs, scale=5.0)
        assert np.all(f_low <= scores + 1e-9)
        assert np.all(f_high >= scores - 1e-9)

    def test_shape_and_order_validation(self):
        with pytest.raises(AlgorithmError):
            consensus_bounds(AVERAGE_PREFERENCE, np.zeros((2, 2)), np.zeros((3, 2)), scale=1.0)
        with pytest.raises(AlgorithmError):
            consensus_bounds(AVERAGE_PREFERENCE, np.ones((2, 2)), np.zeros((2, 2)), scale=1.0)


class TestDefaultScale:
    def test_value(self):
        assert default_scale(5.0, 4) == 20.0

    def test_validation(self):
        with pytest.raises(ConsensusError):
            default_scale(0.0, 3)
        with pytest.raises(ConsensusError):
            default_scale(5.0, 0)


@given(
    n_members=st.integers(min_value=1, max_value=5),
    n_items=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_vectorised_matches_scalar_property(n_members, n_items, seed):
    """consensus_scores agrees with ConsensusFunction.score on random matrices."""
    rng = np.random.default_rng(seed)
    prefs = rng.uniform(0, 8, size=(n_members, n_items))
    for name in ("AP", "MO", "PD"):
        consensus = make_consensus(name)
        vectorised = consensus_scores(consensus, prefs, scale=8.0)
        for col in range(n_items):
            assert vectorised[col] == pytest.approx(
                consensus.score(list(prefs[:, col]), scale=8.0), abs=1e-9
            )
