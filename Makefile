# Developer entry points for the reproduction.  Run from the repository root.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: all test test-fast bench bench-engine bench-record bench-all golden

# Default: the fast equivalence suite (golden grid + property/metamorphic
# tests) plus the perf budget gate, so access-equivalence and performance
# regressions both fail fast.
all: test-fast bench

# Tier-1 verification: the full unit/property suite (includes benchmarks/).
test:
	$(PYTHON) -m pytest -x -q

# Tier-1 minus the benchmark harness: unit, golden-grid and property tests.
test-fast:
	$(PYTHON) -m pytest tests/ -x -q

# Fail-fast perf gate: one scalability point (3,900 items, 8 groups) under a
# wall-clock budget.  Exits non-zero when the engine regresses past the budget.
bench:
	$(PYTHON) -m repro.experiments.runner --quick

# Engine micro-benchmarks (GRECA end-to-end + sequential_block vs per-entry).
bench-engine:
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py -q

# Append a measured engine record to BENCH_engine.json (LABEL=... required).
bench-record:
	$(PYTHON) scripts/bench_engine.py --label $(LABEL)

# Every paper figure/table benchmark (minutes).
bench-all:
	$(PYTHON) -m pytest benchmarks/ -q

# Regenerate the engine-equivalence goldens.  Only run from a revision whose
# access semantics are known-equivalent to the seed engine.
golden:
	PYTHONPATH=src:tests $(PYTHON) scripts/capture_engine_golden.py
