"""Benchmark regenerating Figure 6 (%SA per period, discrete time model)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure6


def test_figure6_accesses_per_period(benchmark, scalability_env):
    """Run GRECA with the query period set to each period of the timeline."""
    result = run_once(benchmark, figure6.run, environment=scalability_env)
    print()
    print(result.format_table())
    rows = result.rows()
    assert len(rows) == len(scalability_env.timeline)
    # The absolute number of accesses grows (weakly) with the period index,
    # since later periods add more periodic affinity lists (paper: ~linear).
    assert rows[-1]["mean_sequential_accesses"] >= rows[0]["mean_sequential_accesses"]
