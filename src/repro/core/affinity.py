"""Temporal affinity models (Section 2.1 of the paper).

Affinity describes the bonding between a pair of users and has two
components:

* **Static affinity** ``aff_S(u, u')`` — time-independent closeness.  In the
  paper's experiments it is the number of common Facebook friends, normalised
  by the maximum pairwise value within the considered user set.
* **Dynamic affinity** ``aff_V(u, u', p)`` — the aggregated *drift* that a
  pair's periodic affinity exhibits compared to the population average, over
  every period from the beginning of time to the end of ``p`` (Equation 1):

  ``aff_V(u, u', p) = sum_{p' <= p} (aff_P(u, u', p') - Avg_aff_P(p')) / Gamma``

  where ``aff_P`` is the periodic affinity (common page-category likes during
  ``p'``) and ``Gamma`` depends on the time model: the number of periods for
  the discrete model, the elapsed time ``f - s0`` for the continuous one.

Two dynamic models combine these components:

* **Discrete**:   ``aff_D(u, u', p) = aff_S(u, u') + aff_V(u, u', p)``
* **Continuous**: ``aff_C(u, u', p) = aff_S(u, u') * exp(lambda * (f - s0))``
  with ``lambda`` the per-second drift rate (i.e. ``aff_V`` with the
  continuous ``Gamma``), capturing exponential growth/decay of affinity.

Following Section 4.1.2, all affinity values handed to the recommendation
machinery are normalised to ``[0, 1]``; this also preserves the monotonicity
required by GRECA (Lemma 1).

The module also provides the ablation models used in the evaluation:
:class:`NoAffinityModel` (affinity-agnostic recommendations) and
:class:`TimeAgnosticAffinityModel` (affinity without the temporal dimension),
plus :class:`ExplicitAffinityModel` to plug in hand-specified values such as
the running example of Tables 2-4.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.timeline import Period, Timeline
from repro.data.social import SocialNetwork
from repro.exceptions import AffinityError


def pair_key(left: int, right: int) -> tuple[int, int]:
    """Canonical unordered key for a user pair (affinity is symmetric)."""
    if left == right:
        raise AffinityError(f"affinity of a user with themselves is undefined ({left})")
    return (left, right) if left < right else (right, left)


def clamp01(value: float) -> float:
    """Clamp a value into the normalised affinity range [0, 1]."""
    return min(1.0, max(0.0, value))


#: Clamp on the continuous-model exponent so exp() stays finite.
MAX_GROWTH_EXPONENT = 8.0


def combine_discrete(
    static: float,
    periodic: Sequence[float],
    averages: Sequence[float],
) -> float:
    """Discrete combination ``aff_D = clamp01(aff_S + aff_V)``.

    ``periodic`` holds the normalised periodic affinities ``aff_P`` of the
    pair for every period up to the query period, ``averages`` the matching
    population averages.  ``Gamma`` is the number of periods (Equation 1).
    The combination is monotone non-decreasing in ``static`` and in every
    ``periodic`` value, which is what GRECA's bound computations rely on.
    """
    if not periodic:
        return clamp01(static)
    drift = sum(value - average for value, average in zip(periodic, averages))
    return clamp01(static + drift / len(periodic))


def combine_continuous(
    static: float,
    periodic: Sequence[float],
    averages: Sequence[float],
) -> float:
    """Continuous combination ``aff_C = clamp01(aff_S * exp(lambda * (f - s0)))``.

    The exponent ``lambda * (f - s0)`` telescopes to the cumulative drift sum
    (the elapsed time cancels), clamped to avoid overflow.  Monotone
    non-decreasing in ``static`` and in every ``periodic`` value.
    """
    if not periodic:
        return clamp01(static)
    drift = sum(value - average for value, average in zip(periodic, averages))
    exponent = max(-MAX_GROWTH_EXPONENT, min(MAX_GROWTH_EXPONENT, drift))
    return clamp01(static * math.exp(exponent))


def _drift_sum(periodic: Sequence[np.ndarray], averages: Sequence[float]) -> np.ndarray:
    """Cumulative drift over many pairs at once, in scalar summation order.

    ``periodic`` holds one array per period (each covering the same pairs).
    The accumulation starts from zero and adds one period at a time — exactly
    the float operation order of ``sum(value - average for ...)`` in the
    scalar combiners — so batch and scalar paths agree bit-for-bit.
    """
    drift = np.zeros_like(periodic[0], dtype=float)
    for values, average in zip(periodic, averages):
        drift = drift + (np.asarray(values, dtype=float) - average)
    return drift


def combine_discrete_batch(
    static: np.ndarray,
    periodic: Sequence[np.ndarray],
    averages: Sequence[float],
) -> np.ndarray:
    """Vectorised :func:`combine_discrete` over arrays of pair components.

    ``static`` is an array of static components (one per pair); ``periodic``
    holds one same-shaped array per period.  Element ``i`` of the result
    equals ``combine_discrete(static[i], [p[i] for p in periodic], averages)``
    bit-for-bit.
    """
    static = np.asarray(static, dtype=float)
    if not len(periodic):
        return np.clip(static, 0.0, 1.0)
    drift = _drift_sum(periodic, averages)
    return np.clip(static + drift / len(periodic), 0.0, 1.0)


def combine_continuous_batch(
    static: np.ndarray,
    periodic: Sequence[np.ndarray],
    averages: Sequence[float],
) -> np.ndarray:
    """Vectorised :func:`combine_continuous` over arrays of pair components.

    The exponential goes through ``math.exp`` per element — ``np.exp``
    differs from libm in the last ulp on a few percent of inputs, which
    would break the bit-for-bit agreement with the scalar combiner that the
    golden grid relies on.  The arrays here hold at most ``n(n-1)/2`` dirty
    pairs, so the scalar loop is not a hot path.
    """
    static = np.asarray(static, dtype=float)
    if not len(periodic):
        return np.clip(static, 0.0, 1.0)
    drift = _drift_sum(periodic, averages)
    exponent = np.clip(drift, -MAX_GROWTH_EXPONENT, MAX_GROWTH_EXPONENT)
    growth = np.asarray([math.exp(value) for value in exponent.tolist()])
    return np.clip(static * growth, 0.0, 1.0)


@dataclass(frozen=True, eq=False)
class AffinityColumns:
    """Columnar form of one group's affinity components.

    The per-(group, period) affinity inputs of a GRECA index are three small
    dictionaries — ``{pair: aff_S}``, ``{period_index: {pair: aff_P}}`` and
    ``{period_index: Avg_aff_P}`` — and after the shared-memory factory
    shipment they are the last large Python-object payload still pickled by
    value into every parallel task.  This class holds the same information
    densely: a ``(n_pairs,)`` static array, a ``(n_periods, n_pairs)``
    periodic matrix and a ``(n_periods,)`` averages vector, with ``pairs``
    mapping columns back to canonical user pairs.  The arrays can be placed
    in shared memory and shipped by descriptor
    (:class:`repro.parallel.shm.ShmAffinityHandle`).

    The dict API stays a façade: :meth:`to_components` reconstructs the
    dictionaries with the exact float values (no arithmetic is involved), so
    an index built from the reconstruction is bit-identical to one built
    from the original dicts.  ``pairs`` are canonicalised through
    :func:`pair_key` and every period covers every pair (missing entries
    materialise as the explicit ``0.0`` the index's own lookups would have
    defaulted to — the sorted affinity lists come out identical either way).

    ``periodic[i]`` covers period index ``i``; :meth:`prefix` slices the
    first ``n`` periods zero-copy, which is how one full-timeline column set
    per (group, affinity model) serves every query period of a sweep.
    """

    pairs: tuple[tuple[int, int], ...]
    static: np.ndarray
    periodic: np.ndarray
    averages: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "static", np.asarray(self.static, dtype=float))
        object.__setattr__(self, "periodic", np.asarray(self.periodic, dtype=float))
        object.__setattr__(self, "averages", np.asarray(self.averages, dtype=float))
        n_pairs = len(self.pairs)
        if self.static.shape != (n_pairs,):
            raise AffinityError(
                f"static column covers {self.static.shape} values for {n_pairs} pairs"
            )
        if self.periodic.shape != (len(self.averages), n_pairs):
            raise AffinityError(
                f"periodic matrix {self.periodic.shape} does not match "
                f"{len(self.averages)} averages x {n_pairs} pairs"
            )

    @property
    def n_pairs(self) -> int:
        """Number of user pairs covered (columns of the periodic matrix)."""
        return len(self.pairs)

    @property
    def n_periods(self) -> int:
        """Number of periods covered (rows of the periodic matrix)."""
        return len(self.averages)

    def pair_index(self) -> dict[tuple[int, int], int]:
        """The pair-index map: canonical pair -> column position."""
        return {pair: column for column, pair in enumerate(self.pairs)}

    def prefix(self, n_periods: int) -> "AffinityColumns":
        """The first ``n_periods`` periods of the same pairs (zero-copy slices).

        This is how a query at period index ``p`` derives its inputs from
        the full-timeline columns: periods ``0..p`` are exactly the first
        ``p + 1`` rows.
        """
        if n_periods < 0 or n_periods > self.n_periods:
            raise AffinityError(
                f"cannot take a {n_periods}-period prefix of {self.n_periods} periods"
            )
        if n_periods == self.n_periods:
            return self
        return AffinityColumns(
            pairs=self.pairs,
            static=self.static,
            periodic=self.periodic[:n_periods],
            averages=self.averages[:n_periods],
        )

    @classmethod
    def from_components(
        cls,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None = None,
        averages: Mapping[int, float] | None = None,
    ) -> "AffinityColumns":
        """Build columns from the dict components (the reverse of :meth:`to_components`).

        Period indices must be contiguous ``0..n-1`` (the shape produced by
        :meth:`repro.core.recommender.GroupRecommender.affinity_components`
        and the engine-test cases), and every ``averages`` key must have a
        matching periodic row — an orphan average cannot be represented and
        raises instead of being silently dropped.  A *missing* average
        materialises as the explicit ``0.0`` the index installs for it
        anyway.  Exotic sparse layouts should stay on the dict path.
        """
        period_indices = sorted(int(index) for index in (periodic or {}))
        if period_indices != list(range(len(period_indices))):
            raise AffinityError(
                "periodic affinities must cover contiguous period indices 0..n-1, "
                f"got {period_indices}"
            )
        orphans = sorted(int(index) for index in (averages or {}))
        orphans = [index for index in orphans if index not in set(period_indices)]
        if orphans:
            raise AffinityError(
                f"averages cover period indices {orphans} that have no periodic row"
            )
        pairs: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        sources: list[Mapping[tuple[int, int], float]] = [static or {}]
        sources.extend((periodic or {})[index] for index in period_indices)
        for source in sources:
            for pair in source:
                key = pair_key(*pair)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
        pair_col = {pair: column for column, pair in enumerate(pairs)}
        static_col = np.zeros(len(pairs))
        for pair, value in (static or {}).items():
            static_col[pair_col[pair_key(*pair)]] = float(value)
        periodic_mat = np.zeros((len(period_indices), len(pairs)))
        for row in period_indices:
            for pair, value in (periodic or {})[row].items():
                periodic_mat[row, pair_col[pair_key(*pair)]] = float(value)
        averages_col = np.asarray(
            [float((averages or {}).get(index, 0.0)) for index in period_indices]
        )
        return cls(
            pairs=tuple(pairs),
            static=static_col,
            periodic=periodic_mat,
            averages=averages_col,
        )

    def to_components(
        self,
    ) -> tuple[
        dict[tuple[int, int], float],
        dict[int, dict[tuple[int, int], float]],
        dict[int, float],
    ]:
        """The dict façade: ``(static, periodic, averages)`` with exact values.

        Reconstruction involves no arithmetic — every float comes back
        verbatim — so indexes built from the reconstruction are bit-identical
        to ones built from the original dictionaries.
        """
        static = dict(zip(self.pairs, self.static.tolist()))
        periodic = {
            index: dict(zip(self.pairs, row))
            for index, row in enumerate(self.periodic.tolist())
        }
        averages = dict(enumerate(self.averages.tolist()))
        return static, periodic, averages


class AffinityModel(abc.ABC):
    """Interface of every (temporal) affinity model.

    Implementations must be symmetric: ``affinity(u, v, p) == affinity(v, u, p)``.
    Returned values are normalised to ``[0, 1]``.
    """

    #: Human-readable name used by experiment drivers and reports.
    name: str = "affinity"

    @abc.abstractmethod
    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        """The affinity of the pair during ``period`` (or overall when ``None``)."""

    def pairwise(
        self, users: Sequence[int], period: Period | None = None
    ) -> dict[tuple[int, int], float]:
        """Affinity of every unordered pair within ``users``."""
        values: dict[tuple[int, int], float] = {}
        for index, left in enumerate(users):
            for right in users[index + 1 :]:
                values[pair_key(left, right)] = self.affinity(left, right, period)
        return values

    def mean_pairwise(self, users: Sequence[int], period: Period | None = None) -> float:
        """Average pairwise affinity within ``users`` (0 for singleton groups)."""
        values = self.pairwise(users, period)
        return sum(values.values()) / len(values) if values else 0.0


class NoAffinityModel(AffinityModel):
    """Affinity-agnostic model: every pair has affinity 0.

    With this model the relative preference vanishes and group
    recommendations reduce to aggregating individual ``apref`` values — the
    baseline the paper compares against in Figures 1B and 3A.
    """

    name = "affinity-agnostic"

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        pair_key(left, right)  # validates the pair
        return 0.0


class ExplicitAffinityModel(AffinityModel):
    """Affinity values supplied explicitly, optionally per period.

    Parameters
    ----------
    static:
        Mapping of unordered pairs to static affinity values.
    periodic:
        Optional mapping ``period -> {pair: periodic value}`` used as the
        per-period drift contribution; when given, the discrete combination
        ``aff_S + mean of per-period values up to p`` is returned.
    timeline:
        Required when ``periodic`` is given, to know which periods precede
        the queried one.

    This model backs the paper's running example (Tables 2-4) and the unit
    tests for GRECA.
    """

    name = "explicit"

    def __init__(
        self,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[Period, Mapping[tuple[int, int], float]] | None = None,
        timeline: Timeline | None = None,
    ) -> None:
        self._static = {pair_key(*pair): float(value) for pair, value in static.items()}
        self._periodic: dict[Period, dict[tuple[int, int], float]] = {}
        if periodic:
            if timeline is None:
                raise AffinityError("a timeline is required when periodic values are given")
            for period, values in periodic.items():
                self._periodic[period] = {
                    pair_key(*pair): float(value) for pair, value in values.items()
                }
        self._timeline = timeline

    def static_affinity(self, left: int, right: int) -> float:
        """The supplied static affinity of the pair (0 when unknown)."""
        return self._static.get(pair_key(left, right), 0.0)

    def periodic_affinity(self, left: int, right: int, period: Period) -> float:
        """The supplied per-period value of the pair (0 when unknown)."""
        return self._periodic.get(period, {}).get(pair_key(left, right), 0.0)

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        key = pair_key(left, right)
        value = self._static.get(key, 0.0)
        if period is not None and self._periodic and self._timeline is not None:
            preceding = self._timeline.periods_until(period)
            contributions = [
                self._periodic.get(past, {}).get(key, 0.0) for past in preceding
            ]
            if contributions:
                value += sum(contributions) / len(contributions)
        return clamp01(value)


class ComputedAffinities:
    """Pre-computed static and periodic affinities from a social network.

    This object performs the expensive population-level computations once —
    raw common-friend counts, per-period common-category-like counts and the
    population averages ``Avg_aff_P(p')`` of Equation 1 — and serves them to
    the concrete :class:`DiscreteAffinityModel` / :class:`ContinuousAffinityModel`
    and to GRECA's index builder.

    Parameters
    ----------
    network:
        The social network providing friendships and page likes.
    timeline:
        The period discretisation.
    users:
        The user universe over which population averages and normalisation
        constants are computed.  Defaults to every user of the network.
    """

    def __init__(
        self,
        network: SocialNetwork,
        timeline: Timeline,
        users: Iterable[int] | None = None,
    ) -> None:
        self.network = network
        self.timeline = timeline
        self.users: tuple[int, ...] = tuple(sorted(users if users is not None else network.users))
        if len(self.users) < 2:
            raise AffinityError("need at least two users to compute affinities")

        # Columnar storage: one column per unordered pair (enumerated in
        # sorted-user order), one periodic row per timeline period.  The dict
        # accessors below are a façade over these arrays.
        pairs: list[tuple[int, int]] = []
        for index, left in enumerate(self.users):
            for right in self.users[index + 1 :]:
                pairs.append(pair_key(left, right))
        periods = tuple(timeline)
        static = np.empty(len(pairs))
        periodic = np.empty((len(periods), len(pairs)))
        for column, (left, right) in enumerate(pairs):
            static[column] = float(network.common_friends(left, right))
            for row, period in enumerate(periods):
                periodic[row, column] = float(
                    network.common_category_likes(left, right, period)
                )
        self._install_columns(pairs, periods, static, periodic)

    def _install_columns(
        self,
        pairs: Sequence[tuple[int, int]],
        periods: Sequence[Period],
        static: np.ndarray,
        periodic: np.ndarray,
    ) -> None:
        """Install the raw columnar substrate and derive maxima and averages.

        The population averages are accumulated with the scalar ``sum`` over
        each periodic row in pair order — the exact float summation order of
        the historical dict implementation — so any construction path through
        here (the network scan or :meth:`from_columns`) yields bit-identical
        averages.
        """
        self.pairs: tuple[tuple[int, int], ...] = tuple(pairs)
        self._pair_col: dict[tuple[int, int], int] = {
            pair: column for column, pair in enumerate(self.pairs)
        }
        self._periods: tuple[Period, ...] = tuple(periods)
        self._period_row: dict[Period, int] = {
            period: row for row, period in enumerate(self._periods)
        }
        self._static_col = np.asarray(static, dtype=float)
        self._periodic_mat = np.asarray(periodic, dtype=float)
        if self._static_col.shape != (len(self.pairs),):
            raise AffinityError(
                f"static column covers {self._static_col.shape} values for "
                f"{len(self.pairs)} pairs"
            )
        if self._periodic_mat.shape != (len(self._periods), len(self.pairs)):
            raise AffinityError(
                f"periodic matrix {self._periodic_mat.shape} does not match "
                f"{len(self._periods)} periods x {len(self.pairs)} pairs"
            )
        self._static_max = float(self._static_col.max()) if self._static_col.size else 0.0
        self._periodic_max = (
            float(self._periodic_mat.max()) if self._periodic_mat.size else 0.0
        )
        n_pairs = len(self.pairs)
        self._avg_col = np.asarray(
            [
                sum(self._periodic_mat[row].tolist()) / n_pairs if n_pairs else 0.0
                for row in range(len(self._periods))
            ]
        )
        self._population_average: dict[Period, float] = {
            period: float(self._avg_col[row]) for row, period in enumerate(self._periods)
        }

    @classmethod
    def from_columns(
        cls,
        timeline: Timeline,
        users: Sequence[int],
        static: np.ndarray,
        periodic: np.ndarray,
        network: SocialNetwork | None = None,
    ) -> "ComputedAffinities":
        """Reconstruct the object from raw columnar components.

        ``static`` holds the raw pairwise values in the canonical pair order
        (sorted users, lexicographic pairs — the order :attr:`pairs`
        reports), ``periodic`` one row per timeline period.  The maxima and
        population averages are recomputed from the arrays in the same float
        operation order as the network-scanning constructor, so the
        reconstruction is FP-identical to the original object.  ``network``
        is optional: it is only needed by consumers that go back to the raw
        like history (e.g. :class:`TimeAgnosticAffinityModel`).
        """
        instance = cls.__new__(cls)
        instance.network = network
        instance.timeline = timeline
        instance.users = tuple(sorted(users))
        if len(instance.users) < 2:
            raise AffinityError("need at least two users to compute affinities")
        pairs = [
            pair_key(left, right)
            for index, left in enumerate(instance.users)
            for right in instance.users[index + 1 :]
        ]
        instance._install_columns(pairs, tuple(timeline), static, periodic)
        return instance

    def extended(
        self,
        network: SocialNetwork,
        timeline: Timeline,
        touched_users: Iterable[int] = (),
    ) -> "ComputedAffinities":
        """A new instance reflecting appended like history and appended periods.

        ``network`` must cover the same users with the same friendships (the
        static column is carried over verbatim); ``timeline`` must extend
        ``self.timeline`` — existing periods unchanged, new ones appended;
        and only users in ``touched_users`` may have gained likes.  Periodic
        columns of pairs involving a touched user are recounted across the
        whole timeline (a new like can land in any period) and the rows of
        appended periods are counted for every pair; all other cells are
        copied.  Raw counts are integers-as-floats, so the copied cells are
        value-identical to a recount, and the maxima/averages derivation runs
        through the same ``_install_columns`` path as a fresh network scan —
        the result is bit-identical to ``ComputedAffinities(network,
        timeline, self.users)``.
        """
        periods = tuple(timeline)
        old_periods = self._periods
        if periods[: len(old_periods)] != old_periods:
            raise AffinityError(
                "an extended timeline must keep the existing periods unchanged"
            )
        touched = set(touched_users)
        unknown = touched - set(self.users)
        if unknown:
            raise AffinityError(
                f"touched users {sorted(unknown)} are outside the affinity universe"
            )
        periodic = np.zeros((len(periods), len(self.pairs)))
        periodic[: len(old_periods)] = self._periodic_mat
        for column, (left, right) in enumerate(self.pairs):
            if left in touched or right in touched:
                rows: range = range(len(periods))
            else:
                rows = range(len(old_periods), len(periods))
            for row in rows:
                periodic[row, column] = float(
                    network.common_category_likes(left, right, periods[row])
                )
        return ComputedAffinities.from_columns(
            timeline,
            self.users,
            self._static_col.copy(),
            periodic,
            network=network,
        )

    def raw_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(static, periodic)`` columnar substrate (shared, read-only use)."""
        return self._static_col, self._periodic_mat

    # -- raw and normalised components ---------------------------------------------

    def static_raw(self, left: int, right: int) -> float:
        """Raw static affinity (common friends count)."""
        column = self._pair_col.get(pair_key(left, right))
        return float(self._static_col[column]) if column is not None else 0.0

    def static_normalized(self, left: int, right: int) -> float:
        """Static affinity normalised by the maximum pairwise value (paper §4.1.2)."""
        if self._static_max == 0:
            return 0.0
        return clamp01(self.static_raw(left, right) / self._static_max)

    def periodic_raw(self, left: int, right: int, period: Period) -> float:
        """Raw periodic affinity ``aff_P`` (common category likes during ``period``)."""
        row = self._period_row.get(period)
        if row is None:
            raise AffinityError(f"period {period} is not part of the timeline")
        column = self._pair_col.get(pair_key(left, right))
        return float(self._periodic_mat[row, column]) if column is not None else 0.0

    def periodic_normalized(self, left: int, right: int, period: Period) -> float:
        """Periodic affinity normalised by the global per-period maximum."""
        if self._periodic_max == 0:
            return 0.0
        return clamp01(self.periodic_raw(left, right, period) / self._periodic_max)

    def population_average(self, period: Period) -> float:
        """``Avg_aff_P(p)``: mean raw periodic affinity over all user pairs."""
        if period not in self._population_average:
            raise AffinityError(f"period {period} is not part of the timeline")
        return self._population_average[period]

    def population_average_normalized(self, period: Period) -> float:
        """Population average on the same normalised scale as :meth:`periodic_normalized`."""
        if self._periodic_max == 0:
            return 0.0
        return self._population_average[period] / self._periodic_max

    def group_columns(self, pairs: Sequence[tuple[int, int]]) -> AffinityColumns:
        """Normalised full-timeline :class:`AffinityColumns` for selected pairs.

        Element ``i`` of the static column equals
        ``static_normalized(*pairs[i])`` and cell ``(p, i)`` of the periodic
        matrix equals ``periodic_normalized(*pairs[i], periods[p])``, bit for
        bit (one clamped IEEE division per element either way); the averages
        row matches :meth:`population_average_normalized` per period.  Pairs
        outside the universe contribute the same ``0.0`` the scalar
        accessors default to.  This is what the parallel layer ships instead
        of the per-task affinity dictionaries.
        """
        canonical = [pair_key(left, right) for left, right in pairs]
        columns = [self._pair_col.get(pair) for pair in canonical]
        known = [position for position, column in enumerate(columns) if column is not None]
        index = np.asarray([columns[position] for position in known], dtype=np.intp)
        n_periods = len(self._periods)
        static = np.zeros(len(canonical))
        periodic = np.zeros((n_periods, len(canonical)))
        if known and self._static_max:
            static[known] = np.clip(self._static_col[index] / self._static_max, 0.0, 1.0)
        if known and self._periodic_max:
            periodic[:, known] = np.clip(
                self._periodic_mat[:, index] / self._periodic_max, 0.0, 1.0
            )
        if self._periodic_max:
            averages = self._avg_col / self._periodic_max
        else:
            averages = np.zeros(n_periods)
        return AffinityColumns(
            pairs=tuple(canonical), static=static, periodic=periodic, averages=averages
        )

    # -- drift (Equation 1) ----------------------------------------------------------

    def drift_sum(self, left: int, right: int, period: Period) -> float:
        """Un-normalised numerator of Equation 1 on the normalised periodic scale.

        ``sum_{p' <= p} (aff_P(u, u', p') - Avg_aff_P(p'))`` computed on the
        [0, 1]-normalised periodic affinities so that drift magnitudes are
        comparable with the static component.
        """
        total = 0.0
        for past in self.timeline.periods_until(period):
            total += self.periodic_normalized(left, right, past) - self.population_average_normalized(past)
        return total

    def dynamic_discrete(self, left: int, right: int, period: Period) -> float:
        """``aff_V`` with the discrete ``Gamma`` = number of periods up to ``p``."""
        n_periods = len(self.timeline.periods_until(period))
        return self.drift_sum(left, right, period) / n_periods if n_periods else 0.0

    def dynamic_continuous_rate(self, left: int, right: int, period: Period) -> float:
        """``lambda``: the continuous-model drift rate (per second)."""
        elapsed = self.timeline.elapsed(period)
        return self.drift_sum(left, right, period) / elapsed if elapsed else 0.0


class DiscreteAffinityModel(AffinityModel):
    """The paper's discrete dynamic affinity model ``aff_D = aff_S + aff_V``."""

    name = "discrete"

    def __init__(self, computed: ComputedAffinities) -> None:
        self.computed = computed

    def static_affinity(self, left: int, right: int) -> float:
        """The normalised static component."""
        return self.computed.static_normalized(left, right)

    def dynamic_affinity(self, left: int, right: int, period: Period) -> float:
        """The (possibly negative) dynamic component ``aff_V``."""
        return self.computed.dynamic_discrete(left, right, period)

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        static = self.computed.static_normalized(left, right)
        if period is None:
            return clamp01(static)
        preceding = self.computed.timeline.periods_until(period)
        periodic = [self.computed.periodic_normalized(left, right, past) for past in preceding]
        averages = [self.computed.population_average_normalized(past) for past in preceding]
        return combine_discrete(static, periodic, averages)


class ContinuousAffinityModel(AffinityModel):
    """The paper's continuous model ``aff_C = aff_S * exp(lambda * (f - s0))``.

    ``lambda * (f - s0)`` equals the cumulative drift sum, so increasing
    affinity pairs see exponential growth and decreasing ones exponential
    decay.  The exponent is clamped to avoid numerical overflow and the final
    value is normalised back into [0, 1].
    """

    name = "continuous"

    #: Clamp on the exponent so exp() stays finite even for extreme drifts.
    MAX_EXPONENT = 8.0

    def __init__(self, computed: ComputedAffinities) -> None:
        self.computed = computed

    def static_affinity(self, left: int, right: int) -> float:
        """The normalised static component."""
        return self.computed.static_normalized(left, right)

    def growth_exponent(self, left: int, right: int, period: Period) -> float:
        """``lambda * (f - s0)``: the cumulative (clamped) growth/decay exponent."""
        rate = self.computed.dynamic_continuous_rate(left, right, period)
        elapsed = self.computed.timeline.elapsed(period)
        exponent = rate * elapsed
        return max(-self.MAX_EXPONENT, min(self.MAX_EXPONENT, exponent))

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        static = self.computed.static_normalized(left, right)
        if period is None:
            return clamp01(static)
        preceding = self.computed.timeline.periods_until(period)
        periodic = [self.computed.periodic_normalized(left, right, past) for past in preceding]
        averages = [self.computed.population_average_normalized(past) for past in preceding]
        return combine_continuous(static, periodic, averages)


class TimeAgnosticAffinityModel(AffinityModel):
    """Affinity-aware but time-agnostic model (the ablation of Figure 1C / 3B).

    The whole history is treated as a single period: affinity is the static
    component plus the overall (drift-free) normalised common-like affinity,
    with no notion of evolution over time.
    """

    name = "time-agnostic"

    def __init__(self, computed: ComputedAffinities) -> None:
        self.computed = computed
        whole = Period(computed.timeline.beginning, computed.timeline.end)
        self._whole_history = whole
        self._overall_raw: dict[tuple[int, int], float] = {}
        users = computed.users
        for index, left in enumerate(users):
            for right in users[index + 1 :]:
                self._overall_raw[pair_key(left, right)] = float(
                    computed.network.common_category_likes(left, right, whole)
                )
        self._overall_max = max(self._overall_raw.values(), default=0.0)

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        static = self.computed.static_normalized(left, right)
        overall = 0.0
        if self._overall_max > 0:
            overall = self._overall_raw.get(pair_key(left, right), 0.0) / self._overall_max
        return clamp01(0.5 * (static + overall))


def build_affinity_model(
    model: str,
    network: SocialNetwork,
    timeline: Timeline,
    users: Iterable[int] | None = None,
) -> AffinityModel:
    """Factory building an affinity model by name.

    Parameters
    ----------
    model:
        ``"discrete"``, ``"continuous"``, ``"time-agnostic"`` or ``"none"``.
    network, timeline, users:
        Forwarded to :class:`ComputedAffinities` (ignored for ``"none"``).
    """
    if model == "none":
        return NoAffinityModel()
    computed = ComputedAffinities(network, timeline, users)
    if model == "discrete":
        return DiscreteAffinityModel(computed)
    if model == "continuous":
        return ContinuousAffinityModel(computed)
    if model == "time-agnostic":
        return TimeAgnosticAffinityModel(computed)
    raise AffinityError(
        f"unknown affinity model {model!r}; expected 'discrete', 'continuous', "
        f"'time-agnostic' or 'none'"
    )
