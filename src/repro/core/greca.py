"""GRECA — Group Recommendation with Temporal Affinities (Section 3 of the paper).

GRECA adapts the NRA flavour of Fagin-style threshold algorithms to compute
the top-k itemset for an ad-hoc group under a temporal-affinity-aware
consensus function, using *sequential accesses only* over:

* one preference list ``PL_u`` per group member (items sorted by ``apref``),
* ``n - 1`` static affinity lists (pairs sorted by ``aff_S``), and
* ``n - 1`` periodic affinity lists per time period (pairs sorted by
  ``aff_P``).

It maintains, for every encountered item, lower and upper bounds on its
consensus score and stops as soon as either

* the **threshold condition** holds — the best possible score of any unseen
  item (the global threshold) cannot beat the ``k``-th best lower bound and
  exactly ``k`` items are buffered — or
* the **buffer condition** holds — the ``k``-th best lower bound is no
  smaller than the upper bound of every other buffered item (Theorem 1 shows
  this implies the threshold condition).

Batched columnar engine
-----------------------

The implementation executes the paper's round-robin with *exactly* the
paper's access accounting, but runs it as a batched columnar engine rather
than a per-entry interpreter loop:

* Every sorted list is columnar (contiguous score array + integer key-index
  array, see :mod:`repro.core.lists`); the engine advances all lists by
  ``check_interval`` rounds per iteration through
  :meth:`SortedAccessList.sequential_block`, recording the sequential
  accesses in bulk.  Because the stopping conditions are only evaluated every
  ``check_interval`` rounds anyway (and at exhaustion), the batched cursor
  trajectory, access counts and check schedule are identical to the
  entry-at-a-time loop.
* Partial preference knowledge lives in two ``(members × items)`` arrays
  (``apref_low`` / ``apref_high``) updated *in place*: block reads scatter
  their scores with fancy indexing, and the not-yet-seen tail of each member
  row — which is exactly the suffix of that list's sort permutation — is
  refreshed to the list's cursor score at check time.
* Pairwise affinity bounds are maintained incrementally by
  :class:`repro.core.bounds.PairwiseAffinityBounds`, which recombines only
  the pairs whose lists moved since the previous check.
* The candidate buffer is the numpy-backed
  :class:`repro.core.buffer.ColumnarCandidateBuffer`; the stopping decision
  itself works directly on the bound arrays, and the final ranking uses the
  buffer's vectorised top-k with the deterministic ``repr`` tie-break.
* The terminal exact rescore touches only the returned top-k items
  (:meth:`GrecaIndex.exact_scores_for`) instead of re-scoring the full
  catalogue, which would otherwise cost the O(n·m) work GRECA just avoided.

The main entry points are :class:`GrecaIndex` (the pre-computed lists for a
group and a query period) and :class:`Greca` (the algorithm itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.affinity import (
    AffinityColumns,
    ComputedAffinities,
    combine_continuous,
    combine_continuous_batch,
    combine_discrete,
    combine_discrete_batch,
)
from repro.core.bounds import PairwiseAffinityBounds
from repro.core.buffer import ColumnarCandidateBuffer
from repro.core.consensus import ConsensusFunction
from repro.core.kernels import make_round_state, resolve_kernel
from repro.core.lists import (
    KIND_PERIODIC_AFFINITY,
    KIND_PREFERENCE,
    KIND_STATIC_AFFINITY,
    AccessCounter,
    SortedAccessList,
    build_affinity_lists,
    repr_tie_break_ranks,
    total_entries,
)
from repro.core.scoring import consensus_bounds, consensus_scores, default_scale, preference_matrix
from repro.core.timeline import Period
from repro.exceptions import AlgorithmError, GroupError

#: Time-model names accepted by :class:`GrecaIndex`.
TIME_MODEL_DISCRETE = "discrete"
TIME_MODEL_CONTINUOUS = "continuous"

#: Stopping reasons reported in :class:`GrecaResult`.
STOP_THRESHOLD = "threshold"
STOP_BUFFER = "buffer"
STOP_EXHAUSTED = "exhausted"


class GrecaIndex:
    """Pre-computed preference and affinity lists for one group and period.

    The index is the data structure described in Section 3.1: absolute
    preference lists for every member, static affinity values for every pair
    and periodic affinity values for every pair and period up to the query
    period, together with the per-period population averages needed by the
    drift computation (Equation 1).

    Absolute preferences are held columnar — one ``(members × items)``
    float64 matrix — which is what both the exact scorers and the batched
    engine consume; the sorted lists are materialised from matrix rows via a
    single vectorised argsort per member (sharing one ``repr`` tie-break
    ranking across members).

    Parameters
    ----------
    members:
        Group members, in a fixed order.
    aprefs:
        ``{user: {item: apref}}`` absolute preferences.  Every member must
        cover the same item universe (missing entries default to 0).
    static:
        ``{(u, v): aff_S}`` normalised static affinities.
    periodic:
        ``{period_index: {(u, v): aff_P}}`` normalised periodic affinities
        for each period up to (and including) the query period, indexed by
        their chronological position (0 = oldest).
    averages:
        ``{period_index: Avg_aff_P}`` population averages on the same
        normalised scale.
    time_model:
        ``"discrete"`` or ``"continuous"`` — selects how the components are
        combined into the pairwise affinity.
    max_apref:
        Upper bound on absolute preference values (used for the score
        normalisation constant); defaults to the observed maximum.
    """

    def __init__(
        self,
        members: Sequence[int],
        aprefs: Mapping[int, Mapping[int, float]],
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None = None,
        averages: Mapping[int, float] | None = None,
        time_model: str = TIME_MODEL_DISCRETE,
        max_apref: float | None = None,
    ) -> None:
        members = list(members)
        if len(members) < 2:
            raise GroupError("GRECA requires a group of at least two members")
        if len(set(members)) != len(members):
            raise GroupError("the group contains duplicate members")
        for member in members:
            if member not in aprefs:
                raise GroupError(f"no absolute preferences supplied for member {member}")
        if time_model not in (TIME_MODEL_DISCRETE, TIME_MODEL_CONTINUOUS):
            raise AlgorithmError(f"unknown time model {time_model!r}")

        self.members: tuple[int, ...] = tuple(members)
        self.time_model = time_model

        item_universe: set[int] = set()
        for member in members:
            item_universe.update(aprefs[member])
        self.items: tuple[int, ...] = tuple(sorted(item_universe))
        if not self.items:
            raise AlgorithmError("the preference lists contain no items")

        matrix = np.empty((len(members), len(self.items)))
        for row, member in enumerate(members):
            prefs = aprefs[member]
            matrix[row] = [float(prefs.get(item, 0.0)) for item in self.items]
            if matrix[row].min() < 0:
                col = int(matrix[row].argmin())
                raise AlgorithmError(
                    f"negative absolute preference for user {member}, item {self.items[col]}"
                )
        self._install_columns(self.members, self.items, matrix, time_model, max_apref)
        self._install_affinities(static, periodic, averages)

    def _install_columns(
        self,
        members: tuple[int, ...],
        items: tuple[int, ...],
        matrix: np.ndarray,
        time_model: str,
        max_apref: float | None,
        item_col: dict[int, int] | None = None,
        repr_rank: np.ndarray | None = None,
        item_objects: np.ndarray | None = None,
        buffer_pool: list[ColumnarCandidateBuffer] | None = None,
    ) -> None:
        """Install the columnar substrate (optionally shared with a sibling index)."""
        self.members = members
        self.items = items
        self.time_model = time_model
        self._apref_matrix = matrix
        self._item_col: dict[int, int] = (
            item_col if item_col is not None else {item: col for col, item in enumerate(items)}
        )
        self._repr_rank = repr_rank
        self._item_objects = item_objects
        # Candidate buffers are item-universe-scoped and fully overwritten by
        # replace_bounds, so siblings over the same substrate share one pool
        # instead of paying the O(items) slot registration per Greca.run.
        self._buffer_pool: list[ColumnarCandidateBuffer] = (
            buffer_pool if buffer_pool is not None else []
        )
        if max_apref is not None:
            self.max_apref = float(max_apref)
        else:
            self.max_apref = max(float(matrix.max()), 1e-9)
        self.scale = default_scale(self.max_apref, len(members))

    def _install_affinities(
        self,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None,
        averages: Mapping[int, float] | None,
    ) -> None:
        """Install (canonicalised) static/periodic affinity values and averages."""
        self._static = {self._pair(*pair): float(value) for pair, value in static.items()}
        self._periodic: dict[int, dict[tuple[int, int], float]] = {}
        for period_index, values in (periodic or {}).items():
            self._periodic[int(period_index)] = {
                self._pair(*pair): float(value) for pair, value in values.items()
            }
        self.period_indices: tuple[int, ...] = tuple(sorted(self._periodic))
        self._averages = {int(index): float(value) for index, value in (averages or {}).items()}
        for period_index in self.period_indices:
            self._averages.setdefault(period_index, 0.0)

    # -- constructors --------------------------------------------------------------------

    @classmethod
    def _from_columns(
        cls,
        members: tuple[int, ...],
        items: tuple[int, ...],
        matrix: np.ndarray,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None,
        averages: Mapping[int, float] | None,
        time_model: str,
        max_apref: float | None,
        item_col: dict[int, int] | None = None,
        repr_rank: np.ndarray | None = None,
        item_objects: np.ndarray | None = None,
        buffer_pool: list[ColumnarCandidateBuffer] | None = None,
    ) -> "GrecaIndex":
        """Build an index directly from an existing columnar substrate.

        The matrix (and the optional tie-break ranking / item-object /
        candidate-buffer caches) are *shared*, not copied: the index never
        mutates the read-only ones, and pooled buffers are wholesale
        overwritten before every use.
        """
        if time_model not in (TIME_MODEL_DISCRETE, TIME_MODEL_CONTINUOUS):
            raise AlgorithmError(f"unknown time model {time_model!r}")
        instance = cls.__new__(cls)
        instance._install_columns(
            members,
            items,
            matrix,
            time_model,
            max_apref,
            item_col,
            repr_rank,
            item_objects,
            buffer_pool,
        )
        instance._install_affinities(static, periodic, averages)
        return instance

    def with_affinities(
        self,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None = None,
        averages: Mapping[int, float] | None = None,
        time_model: str | None = None,
    ) -> "GrecaIndex":
        """A sibling index with different affinity data over the same preferences.

        The columnar substrate (preference matrix, item universe, tie-break
        ranking) is shared, so deriving a per-period index costs only the
        affinity dictionaries — this is what lets figure drivers sweep the
        query period without paying per-point index construction.
        """
        return GrecaIndex._from_columns(
            self.members,
            self.items,
            self._apref_matrix,
            static,
            periodic,
            averages,
            self.time_model if time_model is None else time_model,
            self.max_apref,
            item_col=self._item_col,
            repr_rank=self._tie_break_ranking(),
            item_objects=self._item_object_array(),
            buffer_pool=self._buffer_pool,
        )

    def restrict_items(self, items: Sequence[int]) -> "GrecaIndex":
        """A sibling index over a subset of the candidate items.

        The preference matrix is column-sliced and the global ``repr``
        tie-break ranking is sliced alongside it (a restriction of a ranking
        induces the same relative order, so list construction and the
        candidate buffer behave exactly as if the ranking had been recomputed
        for the subset).  The parent's ``max_apref``/``scale`` are kept:
        construct the parent with an explicit ``max_apref`` (as the
        recommender does) when bit-identical equivalence with fresh
        per-subset construction is required.
        """
        requested = sorted(set(items))
        if not requested:
            raise AlgorithmError("the restricted item universe is empty")
        try:
            cols = np.asarray([self._item_col[item] for item in requested], dtype=np.intp)
        except KeyError as error:
            raise AlgorithmError(f"unknown item in restriction: {error.args[0]!r}") from None
        return GrecaIndex._from_columns(
            self.members,
            tuple(requested),
            self._apref_matrix[:, cols],
            self._static,
            self._periodic,
            self._averages,
            self.time_model,
            self.max_apref,
            repr_rank=self._tie_break_ranking()[cols],
            item_objects=self._item_object_array()[cols],
        )

    @classmethod
    def from_computed(
        cls,
        members: Sequence[int],
        aprefs: Mapping[int, Mapping[int, float]],
        computed: ComputedAffinities,
        period: Period,
        time_model: str = TIME_MODEL_DISCRETE,
        max_apref: float | None = None,
    ) -> "GrecaIndex":
        """Build the index from pre-computed social-network affinities.

        The static component is normalised per Section 4.1.2 and the periodic
        components (and their population averages) cover every period of the
        timeline up to ``period``.
        """
        members = list(members)
        static = {}
        for index, left in enumerate(members):
            for right in members[index + 1 :]:
                static[(left, right)] = computed.static_normalized(left, right)
        periodic: dict[int, dict[tuple[int, int], float]] = {}
        averages: dict[int, float] = {}
        for period_index, past in enumerate(computed.timeline.periods_until(period)):
            values = {}
            for index, left in enumerate(members):
                for right in members[index + 1 :]:
                    values[(left, right)] = computed.periodic_normalized(left, right, past)
            periodic[period_index] = values
            averages[period_index] = computed.population_average_normalized(past)
        return cls(
            members=members,
            aprefs=aprefs,
            static=static,
            periodic=periodic,
            averages=averages,
            time_model=time_model,
            max_apref=max_apref,
        )

    # -- helpers --------------------------------------------------------------------------

    @staticmethod
    def _pair(left: int, right: int) -> tuple[int, int]:
        if left == right:
            raise AlgorithmError("affinity pairs must involve two distinct users")
        return (left, right) if left < right else (right, left)

    def pairs(self) -> list[tuple[int, int]]:
        """Every unordered member pair, in member order."""
        result = []
        for index, left in enumerate(self.members):
            for right in self.members[index + 1 :]:
                result.append(self._pair(left, right))
        return result

    def static_value(self, left: int, right: int) -> float:
        """Normalised static affinity of a pair (0 when absent)."""
        return self._static.get(self._pair(left, right), 0.0)

    def periodic_value(self, left: int, right: int, period_index: int) -> float:
        """Normalised periodic affinity of a pair during one period."""
        return self._periodic.get(period_index, {}).get(self._pair(left, right), 0.0)

    def average_value(self, period_index: int) -> float:
        """Population average for one period."""
        return self._averages.get(period_index, 0.0)

    def combine(self, static: float, periodic: Sequence[float]) -> float:
        """Combine component values into a pairwise affinity (model-dependent)."""
        averages = [self._averages.get(index, 0.0) for index in self.period_indices]
        if self.time_model == TIME_MODEL_DISCRETE:
            return combine_discrete(static, list(periodic), averages)
        return combine_continuous(static, list(periodic), averages)

    def combine_batch(
        self, static: np.ndarray, periodic: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Vectorised :meth:`combine` over arrays of pair components.

        ``static`` holds one static component per pair; ``periodic`` holds
        one same-shaped array per period (ordered like ``period_indices``).
        Elementwise bit-identical to calling :meth:`combine` per pair.
        """
        averages = [self._averages.get(index, 0.0) for index in self.period_indices]
        if self.time_model == TIME_MODEL_DISCRETE:
            return combine_discrete_batch(static, periodic, averages)
        return combine_continuous_batch(static, periodic, averages)

    def affinity(self, left: int, right: int) -> float:
        """The exact combined affinity of a pair at the query period."""
        periodic = [self.periodic_value(left, right, index) for index in self.period_indices]
        return self.combine(self.static_value(left, right), periodic)

    # -- dense views (used by the exact scorers and by GRECA's bound maintenance) ---------

    def apref_matrix(self) -> np.ndarray:
        """``(n_members, n_items)`` matrix of absolute preferences."""
        return self._apref_matrix.copy()

    def affinity_matrix(self) -> np.ndarray:
        """``(n_members, n_members)`` exact combined affinity matrix (zero diagonal)."""
        n = len(self.members)
        matrix = np.zeros((n, n))
        for row in range(n):
            for col in range(row + 1, n):
                value = self.affinity(self.members[row], self.members[col])
                matrix[row, col] = value
                matrix[col, row] = value
        return matrix

    def exact_scores(self, consensus: ConsensusFunction) -> dict[int, float]:
        """Exact consensus scores of every item (no access accounting)."""
        prefs = preference_matrix(self._apref_matrix, self.affinity_matrix())
        scores = consensus_scores(consensus, prefs, self.scale)
        return {item: float(scores[col]) for col, item in enumerate(self.items)}

    def exact_scores_for(
        self, items: Sequence[int], consensus: ConsensusFunction
    ) -> dict[int, float]:
        """Exact consensus scores of selected items only (no access accounting).

        All supported consensus functions score items independently, so
        restricting the matrices to the requested columns computes the same
        values as :meth:`exact_scores` at O(members × |items|) instead of a
        full-catalogue rescore.
        """
        if not items:
            return {}
        cols = np.asarray([self._item_col[item] for item in items], dtype=np.intp)
        prefs = preference_matrix(self._apref_matrix[:, cols], self.affinity_matrix())
        scores = consensus_scores(consensus, prefs, self.scale)
        return {item: float(scores[position]) for position, item in enumerate(items)}

    # -- list construction ------------------------------------------------------------------

    def _tie_break_ranking(self) -> np.ndarray:
        """Rank of every item column under the ``repr`` ordering (cached)."""
        if self._repr_rank is None:
            self._repr_rank = repr_tie_break_ranks(self.items)
        return self._repr_rank

    def _item_object_array(self) -> np.ndarray:
        if self._item_objects is None:
            objects = np.empty(len(self.items), dtype=object)
            objects[:] = self.items
            self._item_objects = objects
        return self._item_objects

    def _acquire_buffer(self) -> ColumnarCandidateBuffer:
        """A candidate buffer over this item universe, pooled across runs.

        ``list.pop``/``append`` are atomic under the GIL, so concurrent
        callers either share pooled buffers safely or fall back to a fresh
        allocation — never to a buffer another run is still ranking.
        """
        try:
            return self._buffer_pool.pop()
        except IndexError:
            return ColumnarCandidateBuffer(self.items, repr_rank=self._tie_break_ranking())

    def _release_buffer(self, buffer: ColumnarCandidateBuffer) -> None:
        """Return a buffer to the pool once its top-k has been materialised."""
        self._buffer_pool.append(buffer)

    def build_lists(
        self, counter: AccessCounter
    ) -> tuple[
        list[SortedAccessList[int]],
        list[SortedAccessList[tuple[int, int]]],
        dict[int, list[SortedAccessList[tuple[int, int]]]],
    ]:
        """Materialise the sorted lists GRECA scans (preference, static, periodic).

        Preference lists are built columnar: one ``np.lexsort`` per member
        over the shared preference matrix row (score-descending, ``repr``
        tie-break), with the sort permutation doubling as the list's
        ``key_index`` so block reads can be scattered straight into item
        columns.
        """
        repr_rank = self._tie_break_ranking()
        item_objects = self._item_object_array()
        preference_lists = []
        for row, member in enumerate(self.members):
            scores = self._apref_matrix[row]
            order = np.lexsort((repr_rank, -scores))
            preference_lists.append(
                SortedAccessList.from_columns(
                    name=f"PL(u{member})",
                    kind=KIND_PREFERENCE,
                    keys=item_objects[order].tolist(),
                    scores=scores[order],
                    counter=counter,
                    key_index=order,
                )
            )
        static_lists = build_affinity_lists(
            self.members, self._static, KIND_STATIC_AFFINITY, "affS", counter
        )
        periodic_lists = {
            period_index: build_affinity_lists(
                self.members,
                self._periodic.get(period_index, {}),
                KIND_PERIODIC_AFFINITY,
                f"affV[p{period_index}]",
                counter,
            )
            for period_index in self.period_indices
        }
        return preference_lists, static_lists, periodic_lists

    def total_index_entries(self) -> int:
        """Total number of entries across every list (the naive scan cost)."""
        n = len(self.members)
        n_pairs = n * (n - 1) // 2
        return n * len(self.items) + n_pairs * (1 + len(self.period_indices))


class GrecaIndexFactory:
    """Derives :class:`GrecaIndex` instances for one group from a shared substrate.

    Figure drivers sweep one knob — query period, item count, ``k``,
    consensus — over a fixed set of groups, and after the batched engine
    refactor the per-point ``{user: {item: apref}}``-to-matrix conversion
    rivals the engine runtime itself.  The factory pays that conversion once
    per group; :meth:`build` then derives each sweep point's index by sharing
    the columnar substrate (and memoising column-sliced substrates per item
    subset), so only the small per-period affinity dictionaries are rebuilt.

    Indexes derived this way are bit-identical — results *and* access
    accounting — to fresh ``GrecaIndex(members, aprefs, ...)`` construction
    at every point, provided ``max_apref`` is pinned (the recommender pins it
    to the rating-scale maximum).  ``tests/test_engine_properties.py`` and
    the golden-grid reuse test enforce this.

    Parameters
    ----------
    members / aprefs / max_apref:
        As for :class:`GrecaIndex`.  Supply ``max_apref`` explicitly so that
        restricted indexes keep the same normalisation constant as fresh
        per-subset construction (otherwise the observed maximum may differ
        between the full universe and a subset).
    """

    def __init__(
        self,
        members: Sequence[int],
        aprefs: Mapping[int, Mapping[int, float]],
        max_apref: float | None = None,
    ) -> None:
        self._base = GrecaIndex(
            members=members, aprefs=aprefs, static={}, max_apref=max_apref
        )
        # Materialise the shared caches once so every derived index reuses them.
        self._base._tie_break_ranking()
        self._base._item_object_array()
        self._restricted: dict[tuple[int, ...], GrecaIndex] = {}

    @classmethod
    def from_columns(
        cls,
        members: Sequence[int],
        items: Sequence[int],
        matrix: np.ndarray,
        max_apref: float,
        repr_rank: np.ndarray | None = None,
    ) -> "GrecaIndexFactory":
        """Rebuild a factory around an existing columnar substrate.

        This is the zero-copy receiving end of the shared-memory shipment
        path (:mod:`repro.parallel.shm`): ``matrix`` (and the optional
        tie-break ranking) are *shared*, never copied, and ``max_apref``
        must be the sending factory's resolved value so derived indexes keep
        the identical normalisation constant.  Bit-identical to pickling the
        original factory by construction: the matrix bytes, tie-break
        ranking and scale are exactly the sender's.
        """
        factory = cls.__new__(cls)
        factory._base = GrecaIndex._from_columns(
            tuple(members),
            tuple(items),
            matrix,
            {},
            None,
            None,
            TIME_MODEL_DISCRETE,
            float(max_apref),
            repr_rank=None if repr_rank is None else np.asarray(repr_rank),
        )
        factory._base._tie_break_ranking()
        factory._base._item_object_array()
        factory._restricted = {}
        return factory

    def columnar_substrate(
        self,
    ) -> tuple[tuple[int, ...], tuple[int, ...], np.ndarray, np.ndarray, float]:
        """The shareable substrate: ``(members, items, matrix, repr_rank, max_apref)``.

        Everything :meth:`from_columns` needs to reconstruct an equivalent
        factory on the far side of a process boundary.
        """
        base = self._base
        return base.members, base.items, base._apref_matrix, base._tie_break_ranking(), base.max_apref

    @property
    def members(self) -> tuple[int, ...]:
        """The group members, in index order."""
        return self._base.members

    @property
    def items(self) -> tuple[int, ...]:
        """The full candidate item universe."""
        return self._base.items

    def build(
        self,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[int, Mapping[tuple[int, int], float]] | None = None,
        averages: Mapping[int, float] | None = None,
        time_model: str = TIME_MODEL_DISCRETE,
        items: Sequence[int] | None = None,
    ) -> GrecaIndex:
        """An index for the given affinity data (optionally item-restricted)."""
        base = self._base
        if items is not None:
            # Canonical key: restrict_items sorts and dedups, so equivalent
            # subsets must share one memoised substrate.
            key = tuple(sorted(set(items)))
            base = self._restricted.get(key)
            if base is None:
                base = self._base.restrict_items(items)
                self._restricted[key] = base
        return base.with_affinities(
            static, periodic=periodic, averages=averages, time_model=time_model
        )

    def build_columns(
        self,
        columns: AffinityColumns,
        time_model: str = TIME_MODEL_DISCRETE,
        items: Sequence[int] | None = None,
        n_periods: int | None = None,
    ) -> GrecaIndex:
        """An index from a columnar affinity representation.

        ``columns`` usually covers the full timeline; ``n_periods`` selects
        the prefix a query period needs.  The reconstruction goes through
        :meth:`AffinityColumns.to_components` — exact float values, no
        arithmetic — so the result is bit-identical to :meth:`build` with
        the equivalent dictionaries.  This is the worker-side entry point of
        the shared-memory affinity shipment.
        """
        if n_periods is not None:
            columns = columns.prefix(n_periods)
        static, periodic, averages = columns.to_components()
        return self.build(
            static, periodic=periodic, averages=averages, time_model=time_model, items=items
        )


@dataclass(frozen=True)
class GrecaResult:
    """Outcome of one GRECA execution."""

    items: tuple[int, ...]
    bounds: Mapping[int, tuple[float, float]]
    exact_scores: Mapping[int, float]
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    rounds: int
    stopping: str
    consensus: str
    k: int

    @property
    def percent_sequential_accesses(self) -> float:
        """Percentage of list entries read sequentially (the paper's ``%SA``)."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries

    @property
    def saveup(self) -> float:
        """Percentage of accesses avoided compared to a full scan."""
        return 100.0 - self.percent_sequential_accesses


class Greca:
    """The GRECA top-k algorithm (batched columnar execution).

    Parameters
    ----------
    consensus:
        The (monotone) consensus function ``F``.
    k:
        Size of the itemset to recommend.
    check_interval:
        Number of round-robin cycles between two evaluations of the stopping
        conditions.  ``None`` selects an adaptive default that keeps the
        bookkeeping overhead negligible while bounding the overshoot to a
        small fraction of the lists.
    kernel:
        Round-kernel backend executing the advance/refresh steps —
        ``"reference"`` (the default), ``"fused"``, or ``"numba"`` when the
        optional dependency is installed.  Every registered kernel is
        bit-identical to the reference tier (see :mod:`repro.core.kernels`);
        unknown names raise :class:`ValueError` at the single choice point
        (:func:`repro.core.kernels.validate_kernel_name`).
    """

    def __init__(
        self,
        consensus: ConsensusFunction,
        k: int = 10,
        check_interval: int | None = None,
        kernel: str | None = None,
    ) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        if check_interval is not None and check_interval <= 0:
            raise AlgorithmError("check_interval must be positive")
        self.consensus = consensus
        self.k = k
        self.check_interval = check_interval
        self.kernel = kernel
        self._kernel = resolve_kernel(kernel)

    # -- public API ---------------------------------------------------------------------------

    def run(self, index: GrecaIndex) -> GrecaResult:
        """Execute GRECA over a pre-built index and return the top-k itemset."""
        counter = AccessCounter()
        preference_lists, static_lists, periodic_lists = index.build_lists(counter)
        affinity_bounds = PairwiseAffinityBounds(
            index.members,
            index.period_indices,
            index.combine,
            static_lists,
            periodic_lists,
            combine_batch=index.combine_batch,
        )
        # Partial knowledge, maintained in place by the round kernel.
        # apref_low holds 0 for unseen (member, item) cells and the exact
        # score once seen; apref_high additionally carries each member's
        # cursor score over the unseen suffix of their sort permutation,
        # refreshed at check time.
        state = make_round_state(
            preference_lists, affinity_bounds, len(index.members), len(index.items)
        )
        kernel = self._kernel
        all_lists: list[SortedAccessList] = state.all_lists
        total = total_entries(all_lists)

        n_items = state.n_items
        k = min(self.k, n_items)
        check_interval = self.check_interval or self._default_check_interval(n_items)

        stopping = STOP_EXHAUSTED
        finished = False
        lower = np.zeros(n_items)
        upper = np.zeros(n_items)

        while not finished:
            # Advance every list up to the next stopping-condition check (or
            # to exhaustion, whichever is closer).  This reaches exactly the
            # cursor state — and records exactly the accesses — of running
            # `block` one-entry round-robin cycles, because no check happens
            # in between either way.
            max_remaining = max(access_list.remaining for access_list in all_lists)
            block = self._round_block(max_remaining, state.rounds, check_interval)
            kernel.advance(state, block)
            exhausted = max_remaining <= block

            pref_low, pref_high = kernel.refresh_bounds(state)
            lower, upper = consensus_bounds(self.consensus, pref_low, pref_high, index.scale)

            # Global threshold: the best score a completely unseen item could
            # reach (the kernel filled the reusable virtual_* columns).
            _, threshold_arr = consensus_bounds(
                self.consensus, state.virtual_low, state.virtual_high, index.scale
            )
            threshold = float(threshold_arr[0])

            decision = self._check_stop(lower, upper, threshold, state.buffered, k, exhausted)
            if decision is not None:
                stopping = decision
                finished = True
            elif exhausted:
                stopping = STOP_EXHAUSTED
                finished = True

        buffer = index._acquire_buffer()
        try:
            buffer.replace_bounds(lower, upper, state.buffered)
            top = buffer.top_k(k) if state.buffered.any() else []
        finally:
            index._release_buffer(buffer)
        top_items = tuple(entry.item for entry in top)
        exact = index.exact_scores_for(top_items, self.consensus)
        return GrecaResult(
            items=top_items,
            bounds={entry.item: (entry.lower, entry.upper) for entry in top},
            exact_scores=exact,
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total,
            rounds=state.rounds,
            stopping=stopping,
            consensus=self.consensus.name,
            k=k,
        )

    # -- internals ------------------------------------------------------------------------------

    @staticmethod
    def _round_block(max_remaining: int, rounds: int, check_interval: int) -> int:
        """Rounds to advance before the next stopping-condition check."""
        if max_remaining == 0:
            # Unreachable: preference lists always hold >= 1 entry (empty
            # catalogues raise in GrecaIndex) and exhaustion finishes the
            # loop.  Kept as a defensive guard so a broken invariant
            # degrades into one idle round instead of an infinite loop.
            return 1
        return min(check_interval - rounds % check_interval, max_remaining)

    @staticmethod
    def _default_check_interval(n_items: int) -> int:
        """Adaptive default spacing of stopping-condition checks.

        With the batched engine the stopping-condition check (bound refresh +
        consensus bounds + argsort) dominates runtime, so wider intervals are
        faster but overshoot the paper's %SA metric by up to one extra
        interval per list.  Measured on the default 3,900-item scalability
        substrate (8 groups of 6, AP consensus, k = 10, best of 3):

        ======== ========== ======= =========
        interval  wall time  SAs     mean %SA
        ======== ========== ======= =========
        n/100      0.109 s   43,428   23.10
        n/200      0.172 s   42,906   22.82
        n/400      0.354 s   42,636   22.67
        n/800      0.692 s   42,576   22.64
        ======== ========== ======= =========

        ``n_items // 200`` stays the default: halving the interval (n/400)
        doubles the runtime to recover only 0.15 pp of %SA, while doubling it
        (n/100) saves 37 % runtime but inflates the headline access metric by
        0.28 pp and changes every reported access count.  The floor of 1
        keeps tiny catalogues exact.
        """
        return max(1, n_items // 200)

    @staticmethod
    def _check_stop(
        lower: np.ndarray,
        upper: np.ndarray,
        threshold: float,
        buffered: np.ndarray,
        k: int,
        exhausted: bool,
        tolerance: float = 1e-9,
    ) -> str | None:
        """Evaluate GRECA's stopping conditions; return the reason or ``None``."""
        buffered_indices = np.flatnonzero(buffered)
        if buffered_indices.size < k:
            return None

        buffered_lower = lower[buffered_indices]
        order = np.argsort(-buffered_lower)
        kth_lower = float(buffered_lower[order[k - 1]])

        # Threshold condition: no unseen item can beat the k-th lower bound.
        any_unseen = bool((~buffered).any())
        threshold_ok = (not any_unseen) or threshold <= kth_lower + tolerance

        # Buffer condition: no other buffered item can beat the k-th lower bound.
        rest = buffered_indices[order[k:]]
        buffer_ok = rest.size == 0 or float(upper[rest].max()) <= kth_lower + tolerance

        if threshold_ok and buffer_ok:
            if exhausted:
                return STOP_EXHAUSTED
            return STOP_BUFFER if rest.size > 0 else STOP_THRESHOLD
        return None
