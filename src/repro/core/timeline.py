"""Time periods and timeline discretisation.

The paper (Section 2) models time as a sequence of consecutive timestamps
segmented into *periods* ``p = [s, f]``.  Dynamic affinity is computed per
period, and the evaluation (Section 4.2.1, Figure 4) explores discretising a
one-year page-like history into periods of different granularities: week,
month, two-month, season (three months) and half-year.

This module provides:

* :class:`Period` — an immutable, half-open-ish inclusive time interval.
* :class:`Timeline` — an ordered, non-overlapping sequence of periods covering
  ``[beginning_of_time, end_of_time]``.
* :func:`discretize` — build a timeline from a granularity name, reproducing
  the period counts of Figure 4 (53 weeks, 12 months, 6 two-month periods,
  4 seasons, 2 half-years for a one-year history).

Timestamps are plain integers (seconds since an arbitrary epoch), which keeps
the library independent from wall-clock / timezone concerns and matches how
rating datasets such as MovieLens store time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import TimelineError

#: Number of seconds in one day; used by the granularity helpers.
SECONDS_PER_DAY = 86_400

#: Granularity name -> approximate period length in days.
GRANULARITY_DAYS = {
    "week": 7,
    "month": 31,
    "two-month": 61,
    "season": 92,
    "half-year": 183,
}

#: Canonical ordering of granularities from finest to coarsest (Figure 4).
GRANULARITIES = ("week", "month", "two-month", "season", "half-year")


@dataclass(frozen=True, order=True)
class Period:
    """A time period ``[start, end]`` (both inclusive, in seconds).

    Periods compare by ``(start, end)`` which yields chronological ordering
    for the non-overlapping periods produced by :class:`Timeline`.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TimelineError(
                f"period end ({self.end}) precedes its start ({self.start})"
            )

    @property
    def length(self) -> int:
        """Duration of the period in seconds (at least 1)."""
        return max(1, self.end - self.start)

    def contains(self, timestamp: int) -> bool:
        """Return ``True`` if ``timestamp`` falls inside this period."""
        return self.start <= timestamp <= self.end

    def precedes(self, other: "Period") -> bool:
        """Paper's ``p_i <= p_j`` relation: starts and ends no later."""
        return self.start <= other.start and self.end <= other.end

    def overlaps(self, other: "Period") -> bool:
        """Return ``True`` if the two periods share at least one timestamp."""
        return self.start <= other.end and other.start <= self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end}]"


class Timeline:
    """An ordered sequence of consecutive, non-overlapping periods.

    The timeline starts at the *beginning of time* ``s0`` (the start of its
    first period) — the anchor used by both the discrete and the continuous
    dynamic-affinity models.

    Parameters
    ----------
    periods:
        Chronologically ordered periods.  They must not overlap; gaps are
        allowed (a gap simply means no activity is attributed to it).
    """

    def __init__(self, periods: Sequence[Period]) -> None:
        periods = list(periods)
        if not periods:
            raise TimelineError("a timeline requires at least one period")
        for earlier, later in zip(periods, periods[1:]):
            if later.start <= earlier.end:
                raise TimelineError(
                    f"periods must be ordered and non-overlapping: "
                    f"{earlier} followed by {later}"
                )
        self._periods: tuple[Period, ...] = tuple(periods)

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._periods)

    def __iter__(self) -> Iterator[Period]:
        return iter(self._periods)

    def __getitem__(self, index: int) -> Period:
        return self._periods[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return self._periods == other._periods

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timeline({len(self._periods)} periods, [{self.beginning}, {self.end}])"

    # -- accessors ----------------------------------------------------------------

    @property
    def periods(self) -> tuple[Period, ...]:
        """The periods of this timeline, in chronological order."""
        return self._periods

    @property
    def beginning(self) -> int:
        """The beginning of time ``s0`` (start of the first period)."""
        return self._periods[0].start

    @property
    def end(self) -> int:
        """The end of the last period."""
        return self._periods[-1].end

    @property
    def current(self) -> Period:
        """The most recent period ``p_now``."""
        return self._periods[-1]

    # -- queries ------------------------------------------------------------------

    def index_of(self, period: Period) -> int:
        """Return the index of ``period`` in the timeline.

        Raises
        ------
        TimelineError
            If the period does not belong to the timeline.
        """
        try:
            return self._periods.index(period)
        except ValueError as exc:
            raise TimelineError(f"period {period} is not part of the timeline") from exc

        return -1  # unreachable; single exit kept for clarity

    def period_of(self, timestamp: int) -> Period | None:
        """Return the period containing ``timestamp`` or ``None`` if in a gap."""
        found = None
        for period in self._periods:
            if period.contains(timestamp):
                found = period
                break
        return found

    def periods_until(self, period: Period) -> tuple[Period, ...]:
        """All periods ``p'`` with ``p' <= period`` (the drift-sum range in Eq. 1)."""
        idx = self.index_of(period)
        return self._periods[: idx + 1]

    def elapsed(self, period: Period) -> int:
        """``f - s0``: seconds between the beginning of time and the end of ``period``."""
        self.index_of(period)  # validates membership
        return max(1, period.end - self.beginning)

    # -- incremental extension ----------------------------------------------------

    def extended(self, period: Period) -> "Timeline":
        """A new timeline with ``period`` appended after the current one.

        The existing periods are carried over unchanged (prefix-identical),
        which is what lets the affinity layer extend its periodic columns
        append-only instead of recomputing history.  The constructor enforces
        that the new period starts after the current end.
        """
        return Timeline((*self._periods, period))


def discretize(
    start: int,
    end: int,
    granularity: str = "two-month",
) -> Timeline:
    """Discretise ``[start, end]`` into equal-length periods of ``granularity``.

    The final period is truncated at ``end`` so that the timeline exactly
    covers the requested span.

    Parameters
    ----------
    start, end:
        Bounds of the observed history (seconds).
    granularity:
        One of :data:`GRANULARITIES`.

    Returns
    -------
    Timeline
        A timeline whose period count matches the paper's Figure 4 for a
        one-year history (e.g. 6 two-month periods, 53 week periods).
    """
    if granularity not in GRANULARITY_DAYS:
        raise TimelineError(
            f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}"
        )
    if end <= start:
        raise TimelineError("timeline end must be after its start")

    step = GRANULARITY_DAYS[granularity] * SECONDS_PER_DAY
    periods = []
    cursor = start
    while cursor <= end:
        period_end = min(cursor + step - 1, end)
        periods.append(Period(cursor, period_end))
        cursor = period_end + 1
    return Timeline(periods)


def uniform_timeline(start: int, n_periods: int, period_length: int) -> Timeline:
    """Build a timeline of ``n_periods`` consecutive periods of equal length.

    This is the convenience constructor used throughout tests and synthetic
    experiments (e.g. "6 two-month periods covering one year").
    """
    if n_periods <= 0:
        raise TimelineError("n_periods must be positive")
    if period_length <= 0:
        raise TimelineError("period_length must be positive")
    periods = []
    cursor = start
    for _ in range(n_periods):
        periods.append(Period(cursor, cursor + period_length - 1))
        cursor += period_length
    return Timeline(periods)


def one_year_timeline(start: int = 0, granularity: str = "two-month") -> Timeline:
    """A one-year history discretised at ``granularity`` (the paper's setup)."""
    return discretize(start, start + 365 * SECONDS_PER_DAY - 1, granularity)


def count_periods(granularity: str, span_days: int = 365) -> int:
    """Number of periods obtained when discretising ``span_days`` of history."""
    if granularity not in GRANULARITY_DAYS:
        raise TimelineError(
            f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}"
        )
    days = GRANULARITY_DAYS[granularity]
    return -(-span_days // days)  # ceiling division


def merge_timelines(timelines: Iterable[Timeline]) -> Timeline:
    """Concatenate chronologically ordered, non-overlapping timelines."""
    periods: list[Period] = []
    for timeline in timelines:
        periods.extend(timeline.periods)
    return Timeline(periods)
