"""Chaos suite for the fault-tolerant dispatch supervisor.

Drives :class:`repro.parallel.SupervisedDispatch` through deterministic
injected faults — worker crashes (``os._exit``), raised exceptions and
stalls — and pins the three invariants the resilience layer promises:

* **bit-identical results**: every recovered dispatch returns exactly the
  serial reference records, for every fault mode and every shard count
  (recovery may change *where* a shard runs, never *what* it computes);
* **honest reporting**: the :class:`~repro.parallel.DispatchReport` records
  each attempt, retry, pool rebuild, segment re-export and degradation that
  actually happened;
* **no leaks**: `/dev/shm` segments are unlinked after every chaos run, the
  crashed-worker and stalled-worker cases included.

The fault plans are pure functions of (shard, task-position, attempt), so
every scenario here replays exactly — there is no flakiness budget.
"""

from __future__ import annotations

import time
from dataclasses import replace
from multiprocessing import shared_memory

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.core.consensus import make_consensus
from repro.core.greca import GrecaIndexFactory
from repro.exceptions import (
    AlgorithmError,
    ConfigurationError,
    DispatchError,
    InjectedFaultError,
)
from repro.parallel import (
    DispatchReport,
    FaultPlan,
    FaultSpec,
    GroupEvalTask,
    PersistentShardExecutor,
    ProcessShardExecutor,
    SerialShardExecutor,
    SharedArrayRegistry,
    SupervisedDispatch,
    SupervisionPolicy,
    build_payloads,
    evaluate_tasks,
    executor_names,
    fault_plan_from_env,
    group_key,
    plan_shards,
    run_shard,
    summarise_reports,
    validate_executor_name,
)
from test_shm_lifecycle import assert_unlinked

#: Fast-retry policy for chaos runs: tiny backoff, generous shard budget.
FAST = dict(max_retries=2, backoff_base=0.001)


def _make_factory(members, seed):
    rng = np.random.default_rng(seed)
    items = list(range(101, 141))
    aprefs = {
        member: {item: round(float(rng.uniform(0.0, 5.0)), 3) for item in items}
        for member in members
    }
    return GrecaIndexFactory(members=members, aprefs=aprefs)


@pytest.fixture(scope="module")
def workload():
    """Two groups x four k-values: eight tasks over two factories."""
    groups = {
        group_key([1, 2, 3]): _make_factory([1, 2, 3], seed=7),
        group_key([4, 5, 6]): _make_factory([4, 5, 6], seed=11),
    }
    statics = {
        group_key([1, 2, 3]): {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.8},
        group_key([4, 5, 6]): {(4, 5): 0.6, (4, 6): 0.3, (5, 6): 0.2},
    }
    tasks = [
        GroupEvalTask(
            group=key,
            k=k,
            consensus=make_consensus("AP"),
            static=statics[key],
            periodic={},
            averages={},
            time_model="discrete",
        )
        for key in groups
        for k in (3, 5, 4, 6)
    ]
    return groups, tasks


@pytest.fixture(scope="module")
def reference(workload):
    """The serial reference records the recovered runs must reproduce exactly."""
    factories, tasks = workload
    return evaluate_tasks(tasks, factories)


def _supervised_run(workload, n_shards, fault_plan, policy):
    """One supervised dispatch over a fresh pool+registry; closes both."""
    factories, tasks = workload
    pool = PersistentShardExecutor(2)
    registry = SharedArrayRegistry()
    supervisor = SupervisedDispatch(pool, policy=policy, owns_executor=True)
    reports: list[DispatchReport] = []
    try:
        records = evaluate_tasks(
            tasks,
            factories,
            n_shards=n_shards,
            executor=supervisor,
            registry=registry,
            fault_plan=fault_plan,
            reports=reports,
        )
    finally:
        supervisor.shutdown()
        names = registry.segment_names
        registry.close()
    assert_unlinked(names)
    (report,) = reports
    return records, report


# -- the chaos matrix ---------------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
@pytest.mark.parametrize("mode", ["crash", "raise", "stall"])
def test_supervised_dispatch_recovers_bit_identically(workload, reference, mode, n_shards):
    """Every fault mode, every shard count: recovery reproduces the serial records."""
    fault_shard = min(1, n_shards - 1)
    policy = SupervisionPolicy(
        timeout=1.0 if mode == "stall" else 30.0, **FAST
    )
    plan = FaultPlan(
        (FaultSpec(shard=fault_shard, position=0, mode=mode, fires=1, stall_seconds=6.0),)
    )
    records, report = _supervised_run(workload, n_shards, plan, policy)
    assert records == reference
    assert report.ok
    assert report.n_shards == n_shards
    assert report.retries >= 1
    assert not report.degraded  # one fire, two retries: recovery beats the budget
    outcomes = {attempt.outcome for attempt in report.attempts}
    if mode == "crash":
        assert "crash" in outcomes
        assert report.rebuilds >= 1
    elif mode == "stall":
        assert "timeout" in outcomes
        assert report.rebuilds >= 1  # the wedged worker was terminated
    else:
        assert "error" in outcomes
        assert report.rebuilds == 0  # a clean exception never poisons the pool
    # The failing shard's last attempt succeeded on the pooled backend.
    last = [a for a in report.attempts if a.shard == fault_shard][-1]
    assert last.outcome == "ok" and last.backend == "pooled"


def test_fault_that_outlives_the_budget_degrades_to_serial(workload, reference):
    """fires > max_retries: the shard degrades — and the records still match."""
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="raise", fires=99),))
    records, report = _supervised_run(
        workload, 2, plan, SupervisionPolicy(max_retries=1, backoff_base=0.001)
    )
    assert records == reference
    assert report.ok
    assert report.degraded == (0,)
    degraded = [a for a in report.attempts if a.backend == "serial-degraded"]
    assert [a.shard for a in degraded] == [0]
    assert degraded[0].outcome == "ok"


def test_crash_degradation_strips_the_fault_plan(workload, reference):
    """A crash plan outliving the budget must not ``os._exit`` the parent.

    The degraded serial re-run executes the payload in-process; if the fault
    plan still rode along, the planned crash would kill pytest itself.  The
    supervisor strips it, so this test *completing* is the assertion — the
    record check on top proves degradation stayed bit-identical.
    """
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="crash", fires=99),))
    records, report = _supervised_run(
        workload, 2, plan, SupervisionPolicy(max_retries=1, backoff_base=0.001)
    )
    assert records == reference
    # Shard 0 is planned; shard 1 degrades too (every crash round breaks the
    # shared pool under it) — collateral damage, recovered identically.
    assert 0 in report.degraded
    assert report.rebuilds >= 1


def test_degradation_disabled_raises_dispatch_error(workload):
    factories, tasks = workload
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="raise", fires=99),))
    pool = PersistentShardExecutor(2)
    registry = SharedArrayRegistry()
    supervisor = SupervisedDispatch(
        pool,
        policy=SupervisionPolicy(max_retries=1, backoff_base=0.001, degrade=False),
        owns_executor=True,
    )
    reports: list[DispatchReport] = []
    try:
        with pytest.raises(DispatchError) as excinfo:
            evaluate_tasks(
                tasks,
                factories,
                n_shards=2,
                executor=supervisor,
                registry=registry,
                fault_plan=plan,
                reports=reports,
            )
    finally:
        supervisor.shutdown()
        names = registry.segment_names
        registry.close()
    assert isinstance(excinfo.value.__cause__, InjectedFaultError)
    assert_unlinked(names)
    # The report still landed in the sink, with the full failure chronology.
    (report,) = reports
    assert not report.ok
    assert all(a.outcome == "error" for a in report.attempts if a.shard == 0)


def test_genuine_task_error_propagates_after_degradation(workload):
    """A deterministic task bug fails every tier — and surfaces as itself."""
    factories, tasks = workload
    poisoned = tasks + [replace(tasks[0], k=0)]  # Greca rejects k <= 0
    pool = PersistentShardExecutor(2)
    registry = SharedArrayRegistry()
    supervisor = SupervisedDispatch(
        pool, policy=SupervisionPolicy(max_retries=1, backoff_base=0.001), owns_executor=True
    )
    reports: list[DispatchReport] = []
    try:
        with pytest.raises(AlgorithmError):
            evaluate_tasks(
                poisoned,
                factories,
                n_shards=2,
                executor=supervisor,
                registry=registry,
                reports=reports,
            )
    finally:
        supervisor.shutdown()
        names = registry.segment_names
        registry.close()
    assert_unlinked(names)
    (report,) = reports
    assert not report.ok
    assert report.degraded  # the retry budget was honestly spent first
    assert any(a.backend == "serial-degraded" and a.outcome == "error" for a in report.attempts)


def test_multiple_faults_across_shards(workload, reference):
    """Independent faults in different shards all recover in one dispatch."""
    plan = FaultPlan(
        (
            FaultSpec(shard=0, position=1, mode="raise", fires=1),
            FaultSpec(shard=2, position=0, mode="raise", fires=2),
        )
    )
    records, report = _supervised_run(workload, 3, plan, SupervisionPolicy(**FAST))
    assert records == reference
    assert report.ok
    assert report.retries >= 3  # shard 0 once, shard 2 twice


# -- shared-memory self-healing -----------------------------------------------------------------


def test_registry_reexport_missing_recreates_vanished_segments(workload):
    factories, _ = workload
    registry = SharedArrayRegistry()
    old_names: list[str] = []
    try:
        handle = registry.export(next(iter(factories.values())))
        old_names = list(registry.segment_names)
        assert registry.reexport_missing() == {}  # nothing missing yet
        victim = shared_memory.SharedMemory(name=handle.matrix.segment)
        original = bytes(victim.buf)
        victim.unlink()
        victim.close()
        mapping = registry.reexport_missing()
        assert set(mapping) == {handle.matrix.segment}
        fresh_name = mapping[handle.matrix.segment]
        assert fresh_name in registry.segment_names
        # Byte-identical content under the fresh name, memoised handle rewritten.
        probe = shared_memory.SharedMemory(name=fresh_name)
        assert bytes(probe.buf) == original
        probe.close()
        rewritten = registry.export(next(iter(factories.values())))
        assert rewritten.matrix.segment == fresh_name
    finally:
        names = set(registry.segment_names) | set(old_names)
        registry.close()
    assert_unlinked(names)


def test_supervisor_heals_externally_unlinked_segments(workload, reference):
    """Vanished segments are re-exported mid-dispatch and the retry succeeds.

    The supervisor wraps a :class:`ProcessShardExecutor` here, so retry
    workers fork fresh (empty caches) and genuinely re-attach through the
    healed handles.
    """
    factories, tasks = workload
    registry = SharedArrayRegistry()
    warmup = SupervisedDispatch(
        ProcessShardExecutor(2), policy=SupervisionPolicy(**FAST), owns_executor=True
    )
    records = evaluate_tasks(
        tasks, factories, n_shards=2, executor=warmup, registry=registry
    )
    assert records == reference
    names_before = list(registry.segment_names)
    victim = shared_memory.SharedMemory(name=names_before[0])
    victim.unlink()  # an over-eager tracker / foreign cleanup nukes the file
    victim.close()
    supervisor = SupervisedDispatch(
        ProcessShardExecutor(2), policy=SupervisionPolicy(**FAST), owns_executor=True
    )
    reports: list[DispatchReport] = []
    healed = evaluate_tasks(
        tasks,
        factories,
        n_shards=2,
        executor=supervisor,
        registry=registry,
        reports=reports,
    )
    (report,) = reports
    assert healed == reference
    assert report.ok
    assert report.reexported_segments >= 1
    names = set(names_before) | set(registry.segment_names)
    registry.close()
    assert_unlinked(names)


# -- the inline tier ----------------------------------------------------------------------------


def test_inline_supervision_retries_in_process(workload, reference):
    """A supervised serial executor retries exceptions without any pool."""
    factories, tasks = workload
    supervisor = SupervisedDispatch(
        SerialShardExecutor(), policy=SupervisionPolicy(**FAST)
    )
    plan = FaultPlan((FaultSpec(shard=1, position=0, mode="raise", fires=1),))
    reports: list[DispatchReport] = []
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=2,
        executor=supervisor,
        fault_plan=plan,
        reports=reports,
    )
    (report,) = reports
    assert records == reference
    assert report.ok
    assert {a.backend for a in report.attempts} == {"inline"}
    assert [a.outcome for a in report.attempts if a.shard == 1] == ["error", "ok"]


def test_supervision_keyword_wraps_any_backend(workload, reference):
    """evaluate_tasks(supervision=...) supervises a plain string backend."""
    factories, tasks = workload
    reports: list[DispatchReport] = []
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="raise", fires=1),))
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=2,
        executor="process",
        supervision=SupervisionPolicy(**FAST),
        fault_plan=plan,
        reports=reports,
    )
    (report,) = reports
    assert records == reference
    assert report.ok and report.retries >= 1


# -- the harness itself -------------------------------------------------------------------------


def test_fault_plan_from_string_and_env(monkeypatch):
    plan = FaultPlan.from_string("crash:0:0;raise:1:2:3", stall_seconds=9.0)
    assert plan.specs[0].mode == "crash" and plan.specs[0].fires == 1
    assert plan.specs[1] == FaultSpec(shard=1, position=2, mode="raise", fires=3, stall_seconds=9.0)
    assert plan.spec_at(1, 2).fires == 3
    assert plan.spec_at(5, 5) is None
    with pytest.raises(ConfigurationError):
        FaultPlan.from_string("explode:0:0")
    with pytest.raises(ConfigurationError):
        FaultPlan.from_string("crash:0")
    with pytest.raises(ConfigurationError):
        FaultPlan.from_string(";")
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    assert fault_plan_from_env() is None
    monkeypatch.setenv("REPRO_FAULT_PLAN", "stall:0:1")
    monkeypatch.setenv("REPRO_FAULT_STALL_SECONDS", "2.5")
    plan = fault_plan_from_env()
    assert plan.specs[0].mode == "stall" and plan.specs[0].stall_seconds == 2.5


def test_fault_plan_trigger_respects_fires_and_attempt():
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="raise", fires=2),))
    with pytest.raises(InjectedFaultError):
        plan.trigger(0, 0, attempt=0)
    with pytest.raises(InjectedFaultError):
        plan.trigger(0, 0, attempt=1)
    plan.trigger(0, 0, attempt=2)  # beyond fires: silent
    plan.trigger(1, 0, attempt=0)  # other coordinates: silent


def test_backoff_is_deterministic_bounded_and_shard_decorrelated():
    policy = SupervisionPolicy(backoff_base=0.05, backoff_cap=0.2, jitter=0.25, seed=3)
    assert policy.backoff_seconds(1, 1) == policy.backoff_seconds(1, 1)
    assert policy.backoff_seconds(1, 1) != policy.backoff_seconds(2, 1)
    for shard in range(4):
        for attempt in range(1, 6):
            backoff = policy.backoff_seconds(shard, attempt)
            assert 0.0 < backoff <= 0.2 * 1.25
    assert SupervisionPolicy(backoff_base=0.0).backoff_seconds(0, 1) == 0.0


def test_policy_and_spec_validation():
    with pytest.raises(ConfigurationError):
        SupervisionPolicy(timeout=0.0)
    with pytest.raises(ConfigurationError):
        SupervisionPolicy(max_retries=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec(shard=0, position=0, mode="nope")
    with pytest.raises(ConfigurationError):
        FaultSpec(shard=-1, position=0, mode="raise")
    with pytest.raises(ConfigurationError):
        FaultSpec(shard=0, position=0, mode="raise", fires=0)


def test_supervisors_do_not_nest():
    inner = SupervisedDispatch(SerialShardExecutor())
    with pytest.raises(ConfigurationError):
        SupervisedDispatch(inner)


def test_report_properties_and_summaries(workload, reference):
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="raise", fires=1),))
    _, report = _supervised_run(workload, 2, plan, SupervisionPolicy(**FAST))
    assert report.n_attempts == len(report.attempts)
    seconds = report.shard_seconds()
    assert set(seconds) == {0, 1} and all(value >= 0.0 for value in seconds.values())
    assert "ok" in report.format_summary()
    line = summarise_reports([report, report])
    assert "2 dispatch(es)" in line
    assert summarise_reports([]) == "supervised dispatch: no dispatches recorded"


def test_supervised_registers_at_the_single_choice_point():
    assert "supervised" in executor_names()
    assert validate_executor_name("supervised") == "supervised"
    with pytest.raises(ValueError, match="'supervised'"):
        validate_executor_name("definitely-not-a-backend")


def test_supervised_string_backend_round_trips(workload, reference):
    """executor='supervised' resolves, runs, recovers and shuts down cleanly."""
    factories, tasks = workload
    reports: list[DispatchReport] = []
    plan = FaultPlan((FaultSpec(shard=1, position=0, mode="raise", fires=1),))
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=2,
        executor="supervised",
        fault_plan=plan,
        reports=reports,
    )
    (report,) = reports
    assert records == reference
    assert report.ok and report.retries >= 1


# -- satellite: the persistent pool after a break ------------------------------------------------


def _crash_payloads(workload, n_shards):
    factories, tasks = workload
    payloads = build_payloads(plan_shards(len(tasks), n_shards), tasks, factories)
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="crash", fires=99),))
    return [replace(payload, fault_plan=plan) for payload in payloads], payloads


def test_persistent_pool_recovers_without_manual_shutdown(workload):
    """Satellite regression: a broken pool is lazily recreated by the next run()."""
    crashing, clean = _crash_payloads(workload, 2)
    pool = PersistentShardExecutor(2)
    try:
        with pytest.raises(BrokenProcessPool):
            pool.run(crashing)
        assert not pool.warm  # the poisoned pool was discarded, not kept
        records = pool.run(clean)  # no shutdown() in between
        assert len(records) == 2
    finally:
        pool.shutdown()


# -- satellite: the environment under faults -----------------------------------------------------


@pytest.fixture(scope="module")
def small_environment():
    """A scaled-down ScalabilityEnvironment (seconds, not minutes, to build)."""
    from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment

    config = ScalabilityConfig(
        n_users=40,
        n_items=300,
        n_ratings=3_000,
        n_participants=12,
        n_groups=2,
        group_size=3,
    )
    environment = ScalabilityEnvironment(config)
    yield environment
    environment.close()


def test_environment_close_is_idempotent_and_reopens(small_environment):
    env = small_environment
    groups = env.random_groups()
    serial = env.run_records(groups)
    parallel = env.run_records(groups, n_workers=2, executor="persistent")
    assert parallel == serial
    names = env._shared_registry().segment_names
    env.close()
    env.close()  # idempotent: a second close must be a no-op, not an error
    assert_unlinked(names)
    # ...and the next parallel dispatch lazily recreates pool and registry.
    again = env.run_records(groups, n_workers=2, executor="persistent")
    assert again == serial


def test_environment_survives_mid_sweep_worker_crash(small_environment):
    """An unsupervised crash propagates — and the next evaluate just works."""
    env = small_environment
    groups = env.random_groups()
    serial = env.run_records(groups)
    tasks = [env.task_for(group) for group in groups]
    crash = FaultPlan((FaultSpec(shard=0, position=0, mode="crash", fires=99),))
    with pytest.raises(BrokenProcessPool):
        env.evaluate(tasks, n_workers=2, executor="persistent", fault_plan=crash)
    # No manual close() in between: the broken pool was discarded by its own
    # handler and the environment's registry is still serving segments.
    records = env.evaluate(tasks, n_workers=2, executor="persistent")
    assert records == serial


def test_environment_supervised_sweep_records_reports(small_environment):
    from repro.experiments.scalability import SweepPoint

    env = small_environment
    groups = tuple(tuple(group) for group in env.random_groups())
    points = [SweepPoint(groups=groups, k=3), SweepPoint(groups=groups, k=5)]
    serial = env.run_sweep(points)
    env.dispatch_reports.clear()
    plan = FaultPlan((FaultSpec(shard=1, position=0, mode="raise", fires=1),))
    supervised = env.run_sweep(points, n_workers=2, executor="supervised", fault_plan=plan)
    assert supervised == serial
    report = env.last_dispatch_report
    assert report is not None and report.ok and report.retries >= 1
    assert "1 dispatch(es)" in summarise_reports(env.dispatch_reports)


def test_environment_supervised_crash_mid_sweep_recovers(small_environment):
    """The supervised sweep absorbs a worker crash the persistent sweep cannot."""
    env = small_environment
    groups = env.random_groups()
    serial = env.run_records(groups)
    tasks = [env.task_for(group) for group in groups]
    crash = FaultPlan((FaultSpec(shard=0, position=0, mode="crash", fires=1),))
    env.dispatch_reports.clear()
    records = env.evaluate(tasks, n_workers=2, executor="supervised", fault_plan=crash)
    assert records == serial
    report = env.last_dispatch_report
    assert report.ok and report.rebuilds >= 1
    # The warm pool the supervisor wrapped belongs to the environment and
    # was rebuilt in place; a plain persistent dispatch reuses it.
    assert env.evaluate(tasks, n_workers=2, executor="persistent") == serial


def test_supervised_crash_during_epoch_adoption_recovers_on_new_epoch():
    """A worker crash on the first post-delta dispatch heals onto the new epoch.

    The crash fires while the warm workers are adopting a freshly applied
    :class:`~repro.updates.deltas.RatingDelta` — stale-epoch caches being
    purged in-worker, retired segments re-exported on demand — so the
    supervisor's rebuild + retry must land on the *new* epoch's substrate:
    the merged records equal the post-delta serial reference bit-for-bit,
    never the pre-delta one resurrected from a stale cache.
    """
    from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment
    from repro.updates import random_deltas

    config = ScalabilityConfig(
        n_users=40,
        n_items=300,
        n_ratings=3_000,
        n_participants=12,
        n_groups=2,
        group_size=3,
    )
    env = ScalabilityEnvironment(config)
    try:
        groups = env.random_groups()
        serial_before = env.run_records(groups)
        # Warm the supervised tier (pool + shm exports) on epoch 0.
        assert env.run_records(groups, n_workers=2, executor="supervised") == serial_before
        delta = random_deltas(env.ratings, env.social, env.timeline, n_deltas=1, seed=3)[0]
        report = env.apply_delta(delta)
        assert report.epoch == 1 and report.touched_users
        serial_after = env.run_records(groups)
        crash = FaultPlan((FaultSpec(shard=0, position=0, mode="crash", fires=1),))
        env.dispatch_reports.clear()
        records = env.run_records(
            groups, n_workers=2, executor="supervised", fault_plan=crash
        )
        assert records == serial_after
        dispatch = env.last_dispatch_report
        assert dispatch.ok and dispatch.rebuilds >= 1
        # The healed pool keeps serving the new epoch without further drama.
        assert env.run_records(groups, n_workers=2, executor="persistent") == serial_after
    finally:
        env.close()


def test_kill_discards_a_wedged_pool_promptly(workload):
    """kill() must never block on a stalled worker (shutdown(wait=True) would)."""
    factories, tasks = workload
    payloads = build_payloads(plan_shards(len(tasks), 1), tasks, factories)
    plan = FaultPlan((FaultSpec(shard=0, position=0, mode="stall", fires=1, stall_seconds=60.0),))
    wedged = replace(payloads[0], fault_plan=plan)
    pool = PersistentShardExecutor(1)
    try:
        future = pool.ensure_pool().submit(run_shard, wedged)
        time.sleep(0.3)  # let the worker pick the payload up and enter the stall
        started = time.perf_counter()
        pool.kill()
        assert time.perf_counter() - started < 5.0
        assert not pool.warm
        with pytest.raises(BrokenProcessPool):
            future.result(timeout=10.0)
        records = pool.run(payloads)  # and the executor is reusable
        assert len(records) == 1
    finally:
        pool.shutdown()


def test_queued_shard_does_not_burn_timeout_budget_while_waiting(workload, reference):
    """Stall-behind-queue: a shard queued behind a saturated pool keeps its budget.

    One worker, two shards, both stalling 0.9s on their first task, a 1.5s
    per-shard timeout.  Shard 1 spends ~0.9s queued behind shard 0 before a
    worker even picks it up; a submission-anchored budget (the old
    accounting) had already burnt that wait and preempted shard 1 mid-run —
    a spurious timeout, retry and pool rebuild for a shard that was merely
    *queued*, which is exactly what concurrent service dispatches provoke.
    The budget now starts when the shard reaches the worker, so neither
    shard times out and the dispatch is retry-free.
    """
    factories, tasks = workload
    plan = FaultPlan(
        (
            FaultSpec(shard=0, position=0, mode="stall", fires=1, stall_seconds=0.9),
            FaultSpec(shard=1, position=0, mode="stall", fires=1, stall_seconds=0.9),
        )
    )
    pool = PersistentShardExecutor(1)  # saturated: shard 1 must queue
    registry = SharedArrayRegistry()
    supervisor = SupervisedDispatch(
        pool, policy=SupervisionPolicy(timeout=1.5, **FAST), owns_executor=True
    )
    reports: list[DispatchReport] = []
    try:
        records = evaluate_tasks(
            tasks,
            factories,
            n_shards=2,
            executor=supervisor,
            registry=registry,
            fault_plan=plan,
            reports=reports,
        )
    finally:
        supervisor.shutdown()
        names = registry.segment_names
        registry.close()
    assert_unlinked(names)
    assert records == reference
    (report,) = reports
    assert report.ok
    outcomes = [attempt.outcome for attempt in report.attempts]
    assert "timeout" not in outcomes, outcomes
    assert report.retries == 0
    assert report.rebuilds == 0
