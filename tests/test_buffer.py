"""Tests for repro.core.buffer (GRECA's candidate buffer)."""

from __future__ import annotations

import pytest

from repro.core.buffer import BufferedItem, CandidateBuffer
from repro.exceptions import AlgorithmError


class TestBufferedItem:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(AlgorithmError):
            BufferedItem("x", 2.0, 1.0)


class TestCandidateBuffer:
    @pytest.fixture()
    def buffer(self):
        buffer = CandidateBuffer()
        buffer.update("a", 0.8, 0.9)
        buffer.update("b", 0.5, 0.95)
        buffer.update("c", 0.4, 0.6)
        buffer.update("d", 0.1, 0.3)
        return buffer

    def test_len_contains_get(self, buffer):
        assert len(buffer) == 4
        assert "a" in buffer and "z" not in buffer
        assert buffer.get("c").upper == 0.6
        assert buffer.get("z") is None

    def test_update_refreshes_bounds(self, buffer):
        buffer.update("a", 0.85, 0.88)
        assert buffer.get("a").lower == 0.85
        assert len(buffer) == 4

    def test_update_many_and_remove(self, buffer):
        buffer.update_many({"e": (0.2, 0.25), "f": (0.0, 0.05)})
        assert len(buffer) == 6
        buffer.remove(["e", "f", "not-there"])
        assert len(buffer) == 4

    def test_ranked_by_lower_bound(self, buffer):
        ranked = [entry.item for entry in buffer.ranked_by_lower_bound()]
        assert ranked == ["a", "b", "c", "d"]

    def test_top_k_and_kth_lower_bound(self, buffer):
        top = buffer.top_k(2)
        assert [entry.item for entry in top] == ["a", "b"]
        assert buffer.kth_lower_bound(2) == 0.5
        assert buffer.kth_lower_bound(10) is None
        with pytest.raises(AlgorithmError):
            buffer.top_k(0)

    def test_buffer_condition_not_met_when_other_upper_bound_higher(self, buffer):
        # kth (k=1) lower bound is 0.8 but item b can still reach 0.95.
        assert not buffer.satisfies_buffer_condition(1)

    def test_buffer_condition_met_after_tightening(self, buffer):
        buffer.update("b", 0.5, 0.75)
        assert buffer.satisfies_buffer_condition(1)

    def test_buffer_condition_with_exactly_k_items(self):
        buffer = CandidateBuffer()
        buffer.update("a", 0.3, 0.9)
        buffer.update("b", 0.2, 0.8)
        assert buffer.satisfies_buffer_condition(2)  # nothing left to prune
        assert not buffer.satisfies_buffer_condition(3)  # fewer than k items

    def test_max_upper_bound_outside_top_k(self, buffer):
        assert buffer.max_upper_bound_outside_top_k(1) == 0.95
        assert buffer.max_upper_bound_outside_top_k(4) is None

    def test_tie_breaking_is_deterministic(self):
        buffer = CandidateBuffer()
        buffer.update(2, 0.5, 0.6)
        buffer.update(1, 0.5, 0.6)
        ranked = [entry.item for entry in buffer.ranked_by_lower_bound()]
        assert ranked == sorted(ranked, key=repr)
