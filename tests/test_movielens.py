"""Tests for repro.data.movielens (loader + synthetic generator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.movielens import (
    MOVIELENS_1M_MOVIES,
    MOVIELENS_1M_RATINGS,
    MOVIELENS_1M_USERS,
    MovieLensConfig,
    generate_movielens_like,
    load_movielens,
    movielens_1m_config,
)
from repro.data.ratings import MAX_RATING, MIN_RATING
from repro.exceptions import ConfigurationError, DataError


class TestMovieLensConfig:
    def test_defaults_are_valid(self):
        config = MovieLensConfig()
        assert config.n_users > 1 and config.n_items > 1

    def test_rejects_too_many_ratings(self):
        with pytest.raises(ConfigurationError):
            MovieLensConfig(n_users=5, n_items=5, n_ratings=26)

    def test_rejects_too_few_ratings(self):
        with pytest.raises(ConfigurationError):
            MovieLensConfig(n_users=50, n_items=50, n_ratings=10)

    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            MovieLensConfig(n_users=1, n_items=10, n_ratings=5)

    def test_paper_scale_config(self):
        config = movielens_1m_config()
        assert config.n_users == MOVIELENS_1M_USERS
        assert config.n_items == MOVIELENS_1M_MOVIES
        assert config.n_ratings == MOVIELENS_1M_RATINGS


class TestGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_movielens_like(
            MovieLensConfig(n_users=100, n_items=150, n_ratings=4000, seed=11)
        )

    def test_requested_scale(self, generated):
        stats = generated.stats()
        assert stats.n_users == 100
        assert stats.n_ratings == 4000
        assert stats.n_items <= 150

    def test_every_user_has_a_rating(self, generated):
        assert len(generated.users) == 100

    def test_ratings_are_whole_stars_in_range(self, generated):
        for rating in generated:
            assert MIN_RATING <= rating.value <= MAX_RATING
            assert float(rating.value).is_integer()

    def test_timestamps_within_history(self, generated):
        stats = generated.stats()
        assert stats.min_timestamp >= 0
        assert stats.max_timestamp < MovieLensConfig().history_seconds

    def test_popularity_is_skewed(self, generated):
        """Long-tail: the most popular items gather far more ratings than the median."""
        counts = sorted(
            (generated.item_popularity(item) for item in generated.items), reverse=True
        )
        top_share = sum(counts[: len(counts) // 10]) / sum(counts)
        assert top_share > 0.2

    def test_mean_rating_plausible(self, generated):
        assert 3.0 <= generated.stats().mean_rating <= 4.2

    def test_deterministic_for_same_seed(self):
        config = MovieLensConfig(n_users=40, n_items=50, n_ratings=900, seed=5)
        first = generate_movielens_like(config)
        second = generate_movielens_like(config)
        assert [(r.user_id, r.item_id, r.value) for r in first] == [
            (r.user_id, r.item_id, r.value) for r in second
        ]

    def test_different_seeds_differ(self):
        first = generate_movielens_like(MovieLensConfig(n_users=40, n_items=50, n_ratings=900, seed=5))
        second = generate_movielens_like(MovieLensConfig(n_users=40, n_items=50, n_ratings=900, seed=6))
        assert [(r.user_id, r.item_id) for r in first] != [(r.user_id, r.item_id) for r in second]


class TestLoader:
    def test_loads_dat_format(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::5::978300760\n1::11::3::978302109\n2::10::4::978301968\n")
        dataset = load_movielens(str(path))
        assert len(dataset) == 3
        assert dataset.rating_value(1, 10) == 5.0
        assert dataset.ratings[0].timestamp == 978300760

    def test_loads_csv_format_with_header(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("userId,movieId,rating,timestamp\n1,10,4.0,964982703\n2,11,3.0,964981247\n")
        dataset = load_movielens(str(path))
        assert len(dataset) == 2
        assert dataset.rating_value(2, 11) == 3.0

    def test_missing_file(self):
        with pytest.raises(DataError):
            load_movielens("/nonexistent/ratings.dat")

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::5\n")
        with pytest.raises(DataError):
            load_movielens(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("\n\n")
        with pytest.raises(DataError):
            load_movielens(str(path))
