"""Temporal affinity models (Section 2.1 of the paper).

Affinity describes the bonding between a pair of users and has two
components:

* **Static affinity** ``aff_S(u, u')`` — time-independent closeness.  In the
  paper's experiments it is the number of common Facebook friends, normalised
  by the maximum pairwise value within the considered user set.
* **Dynamic affinity** ``aff_V(u, u', p)`` — the aggregated *drift* that a
  pair's periodic affinity exhibits compared to the population average, over
  every period from the beginning of time to the end of ``p`` (Equation 1):

  ``aff_V(u, u', p) = sum_{p' <= p} (aff_P(u, u', p') - Avg_aff_P(p')) / Gamma``

  where ``aff_P`` is the periodic affinity (common page-category likes during
  ``p'``) and ``Gamma`` depends on the time model: the number of periods for
  the discrete model, the elapsed time ``f - s0`` for the continuous one.

Two dynamic models combine these components:

* **Discrete**:   ``aff_D(u, u', p) = aff_S(u, u') + aff_V(u, u', p)``
* **Continuous**: ``aff_C(u, u', p) = aff_S(u, u') * exp(lambda * (f - s0))``
  with ``lambda`` the per-second drift rate (i.e. ``aff_V`` with the
  continuous ``Gamma``), capturing exponential growth/decay of affinity.

Following Section 4.1.2, all affinity values handed to the recommendation
machinery are normalised to ``[0, 1]``; this also preserves the monotonicity
required by GRECA (Lemma 1).

The module also provides the ablation models used in the evaluation:
:class:`NoAffinityModel` (affinity-agnostic recommendations) and
:class:`TimeAgnosticAffinityModel` (affinity without the temporal dimension),
plus :class:`ExplicitAffinityModel` to plug in hand-specified values such as
the running example of Tables 2-4.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.timeline import Period, Timeline
from repro.data.social import SocialNetwork
from repro.exceptions import AffinityError


def pair_key(left: int, right: int) -> tuple[int, int]:
    """Canonical unordered key for a user pair (affinity is symmetric)."""
    if left == right:
        raise AffinityError(f"affinity of a user with themselves is undefined ({left})")
    return (left, right) if left < right else (right, left)


def clamp01(value: float) -> float:
    """Clamp a value into the normalised affinity range [0, 1]."""
    return min(1.0, max(0.0, value))


#: Clamp on the continuous-model exponent so exp() stays finite.
MAX_GROWTH_EXPONENT = 8.0


def combine_discrete(
    static: float,
    periodic: Sequence[float],
    averages: Sequence[float],
) -> float:
    """Discrete combination ``aff_D = clamp01(aff_S + aff_V)``.

    ``periodic`` holds the normalised periodic affinities ``aff_P`` of the
    pair for every period up to the query period, ``averages`` the matching
    population averages.  ``Gamma`` is the number of periods (Equation 1).
    The combination is monotone non-decreasing in ``static`` and in every
    ``periodic`` value, which is what GRECA's bound computations rely on.
    """
    if not periodic:
        return clamp01(static)
    drift = sum(value - average for value, average in zip(periodic, averages))
    return clamp01(static + drift / len(periodic))


def combine_continuous(
    static: float,
    periodic: Sequence[float],
    averages: Sequence[float],
) -> float:
    """Continuous combination ``aff_C = clamp01(aff_S * exp(lambda * (f - s0)))``.

    The exponent ``lambda * (f - s0)`` telescopes to the cumulative drift sum
    (the elapsed time cancels), clamped to avoid overflow.  Monotone
    non-decreasing in ``static`` and in every ``periodic`` value.
    """
    if not periodic:
        return clamp01(static)
    drift = sum(value - average for value, average in zip(periodic, averages))
    exponent = max(-MAX_GROWTH_EXPONENT, min(MAX_GROWTH_EXPONENT, drift))
    return clamp01(static * math.exp(exponent))


def _drift_sum(periodic: Sequence[np.ndarray], averages: Sequence[float]) -> np.ndarray:
    """Cumulative drift over many pairs at once, in scalar summation order.

    ``periodic`` holds one array per period (each covering the same pairs).
    The accumulation starts from zero and adds one period at a time — exactly
    the float operation order of ``sum(value - average for ...)`` in the
    scalar combiners — so batch and scalar paths agree bit-for-bit.
    """
    drift = np.zeros_like(periodic[0], dtype=float)
    for values, average in zip(periodic, averages):
        drift = drift + (np.asarray(values, dtype=float) - average)
    return drift


def combine_discrete_batch(
    static: np.ndarray,
    periodic: Sequence[np.ndarray],
    averages: Sequence[float],
) -> np.ndarray:
    """Vectorised :func:`combine_discrete` over arrays of pair components.

    ``static`` is an array of static components (one per pair); ``periodic``
    holds one same-shaped array per period.  Element ``i`` of the result
    equals ``combine_discrete(static[i], [p[i] for p in periodic], averages)``
    bit-for-bit.
    """
    static = np.asarray(static, dtype=float)
    if not len(periodic):
        return np.clip(static, 0.0, 1.0)
    drift = _drift_sum(periodic, averages)
    return np.clip(static + drift / len(periodic), 0.0, 1.0)


def combine_continuous_batch(
    static: np.ndarray,
    periodic: Sequence[np.ndarray],
    averages: Sequence[float],
) -> np.ndarray:
    """Vectorised :func:`combine_continuous` over arrays of pair components.

    The exponential goes through ``math.exp`` per element — ``np.exp``
    differs from libm in the last ulp on a few percent of inputs, which
    would break the bit-for-bit agreement with the scalar combiner that the
    golden grid relies on.  The arrays here hold at most ``n(n-1)/2`` dirty
    pairs, so the scalar loop is not a hot path.
    """
    static = np.asarray(static, dtype=float)
    if not len(periodic):
        return np.clip(static, 0.0, 1.0)
    drift = _drift_sum(periodic, averages)
    exponent = np.clip(drift, -MAX_GROWTH_EXPONENT, MAX_GROWTH_EXPONENT)
    growth = np.asarray([math.exp(value) for value in exponent.tolist()])
    return np.clip(static * growth, 0.0, 1.0)


class AffinityModel(abc.ABC):
    """Interface of every (temporal) affinity model.

    Implementations must be symmetric: ``affinity(u, v, p) == affinity(v, u, p)``.
    Returned values are normalised to ``[0, 1]``.
    """

    #: Human-readable name used by experiment drivers and reports.
    name: str = "affinity"

    @abc.abstractmethod
    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        """The affinity of the pair during ``period`` (or overall when ``None``)."""

    def pairwise(
        self, users: Sequence[int], period: Period | None = None
    ) -> dict[tuple[int, int], float]:
        """Affinity of every unordered pair within ``users``."""
        values: dict[tuple[int, int], float] = {}
        for index, left in enumerate(users):
            for right in users[index + 1 :]:
                values[pair_key(left, right)] = self.affinity(left, right, period)
        return values

    def mean_pairwise(self, users: Sequence[int], period: Period | None = None) -> float:
        """Average pairwise affinity within ``users`` (0 for singleton groups)."""
        values = self.pairwise(users, period)
        return sum(values.values()) / len(values) if values else 0.0


class NoAffinityModel(AffinityModel):
    """Affinity-agnostic model: every pair has affinity 0.

    With this model the relative preference vanishes and group
    recommendations reduce to aggregating individual ``apref`` values — the
    baseline the paper compares against in Figures 1B and 3A.
    """

    name = "affinity-agnostic"

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        pair_key(left, right)  # validates the pair
        return 0.0


class ExplicitAffinityModel(AffinityModel):
    """Affinity values supplied explicitly, optionally per period.

    Parameters
    ----------
    static:
        Mapping of unordered pairs to static affinity values.
    periodic:
        Optional mapping ``period -> {pair: periodic value}`` used as the
        per-period drift contribution; when given, the discrete combination
        ``aff_S + mean of per-period values up to p`` is returned.
    timeline:
        Required when ``periodic`` is given, to know which periods precede
        the queried one.

    This model backs the paper's running example (Tables 2-4) and the unit
    tests for GRECA.
    """

    name = "explicit"

    def __init__(
        self,
        static: Mapping[tuple[int, int], float],
        periodic: Mapping[Period, Mapping[tuple[int, int], float]] | None = None,
        timeline: Timeline | None = None,
    ) -> None:
        self._static = {pair_key(*pair): float(value) for pair, value in static.items()}
        self._periodic: dict[Period, dict[tuple[int, int], float]] = {}
        if periodic:
            if timeline is None:
                raise AffinityError("a timeline is required when periodic values are given")
            for period, values in periodic.items():
                self._periodic[period] = {
                    pair_key(*pair): float(value) for pair, value in values.items()
                }
        self._timeline = timeline

    def static_affinity(self, left: int, right: int) -> float:
        """The supplied static affinity of the pair (0 when unknown)."""
        return self._static.get(pair_key(left, right), 0.0)

    def periodic_affinity(self, left: int, right: int, period: Period) -> float:
        """The supplied per-period value of the pair (0 when unknown)."""
        return self._periodic.get(period, {}).get(pair_key(left, right), 0.0)

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        key = pair_key(left, right)
        value = self._static.get(key, 0.0)
        if period is not None and self._periodic and self._timeline is not None:
            preceding = self._timeline.periods_until(period)
            contributions = [
                self._periodic.get(past, {}).get(key, 0.0) for past in preceding
            ]
            if contributions:
                value += sum(contributions) / len(contributions)
        return clamp01(value)


class ComputedAffinities:
    """Pre-computed static and periodic affinities from a social network.

    This object performs the expensive population-level computations once —
    raw common-friend counts, per-period common-category-like counts and the
    population averages ``Avg_aff_P(p')`` of Equation 1 — and serves them to
    the concrete :class:`DiscreteAffinityModel` / :class:`ContinuousAffinityModel`
    and to GRECA's index builder.

    Parameters
    ----------
    network:
        The social network providing friendships and page likes.
    timeline:
        The period discretisation.
    users:
        The user universe over which population averages and normalisation
        constants are computed.  Defaults to every user of the network.
    """

    def __init__(
        self,
        network: SocialNetwork,
        timeline: Timeline,
        users: Iterable[int] | None = None,
    ) -> None:
        self.network = network
        self.timeline = timeline
        self.users: tuple[int, ...] = tuple(sorted(users if users is not None else network.users))
        if len(self.users) < 2:
            raise AffinityError("need at least two users to compute affinities")

        self._static_raw: dict[tuple[int, int], float] = {}
        self._periodic_raw: dict[Period, dict[tuple[int, int], float]] = {
            period: {} for period in timeline
        }
        for index, left in enumerate(self.users):
            for right in self.users[index + 1 :]:
                key = pair_key(left, right)
                self._static_raw[key] = float(network.common_friends(left, right))
                for period in timeline:
                    self._periodic_raw[period][key] = float(
                        network.common_category_likes(left, right, period)
                    )

        self._static_max = max(self._static_raw.values(), default=0.0)
        self._periodic_max = max(
            (value for values in self._periodic_raw.values() for value in values.values()),
            default=0.0,
        )
        self._population_average: dict[Period, float] = {}
        n_pairs = len(self._static_raw)
        for period in timeline:
            total = sum(self._periodic_raw[period].values())
            self._population_average[period] = total / n_pairs if n_pairs else 0.0

    # -- raw and normalised components ---------------------------------------------

    def static_raw(self, left: int, right: int) -> float:
        """Raw static affinity (common friends count)."""
        return self._static_raw.get(pair_key(left, right), 0.0)

    def static_normalized(self, left: int, right: int) -> float:
        """Static affinity normalised by the maximum pairwise value (paper §4.1.2)."""
        if self._static_max == 0:
            return 0.0
        return clamp01(self._static_raw.get(pair_key(left, right), 0.0) / self._static_max)

    def periodic_raw(self, left: int, right: int, period: Period) -> float:
        """Raw periodic affinity ``aff_P`` (common category likes during ``period``)."""
        if period not in self._periodic_raw:
            raise AffinityError(f"period {period} is not part of the timeline")
        return self._periodic_raw[period].get(pair_key(left, right), 0.0)

    def periodic_normalized(self, left: int, right: int, period: Period) -> float:
        """Periodic affinity normalised by the global per-period maximum."""
        if self._periodic_max == 0:
            return 0.0
        return clamp01(self.periodic_raw(left, right, period) / self._periodic_max)

    def population_average(self, period: Period) -> float:
        """``Avg_aff_P(p)``: mean raw periodic affinity over all user pairs."""
        if period not in self._population_average:
            raise AffinityError(f"period {period} is not part of the timeline")
        return self._population_average[period]

    def population_average_normalized(self, period: Period) -> float:
        """Population average on the same normalised scale as :meth:`periodic_normalized`."""
        if self._periodic_max == 0:
            return 0.0
        return self._population_average[period] / self._periodic_max

    # -- drift (Equation 1) ----------------------------------------------------------

    def drift_sum(self, left: int, right: int, period: Period) -> float:
        """Un-normalised numerator of Equation 1 on the normalised periodic scale.

        ``sum_{p' <= p} (aff_P(u, u', p') - Avg_aff_P(p'))`` computed on the
        [0, 1]-normalised periodic affinities so that drift magnitudes are
        comparable with the static component.
        """
        total = 0.0
        for past in self.timeline.periods_until(period):
            total += self.periodic_normalized(left, right, past) - self.population_average_normalized(past)
        return total

    def dynamic_discrete(self, left: int, right: int, period: Period) -> float:
        """``aff_V`` with the discrete ``Gamma`` = number of periods up to ``p``."""
        n_periods = len(self.timeline.periods_until(period))
        return self.drift_sum(left, right, period) / n_periods if n_periods else 0.0

    def dynamic_continuous_rate(self, left: int, right: int, period: Period) -> float:
        """``lambda``: the continuous-model drift rate (per second)."""
        elapsed = self.timeline.elapsed(period)
        return self.drift_sum(left, right, period) / elapsed if elapsed else 0.0


class DiscreteAffinityModel(AffinityModel):
    """The paper's discrete dynamic affinity model ``aff_D = aff_S + aff_V``."""

    name = "discrete"

    def __init__(self, computed: ComputedAffinities) -> None:
        self.computed = computed

    def static_affinity(self, left: int, right: int) -> float:
        """The normalised static component."""
        return self.computed.static_normalized(left, right)

    def dynamic_affinity(self, left: int, right: int, period: Period) -> float:
        """The (possibly negative) dynamic component ``aff_V``."""
        return self.computed.dynamic_discrete(left, right, period)

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        static = self.computed.static_normalized(left, right)
        if period is None:
            return clamp01(static)
        preceding = self.computed.timeline.periods_until(period)
        periodic = [self.computed.periodic_normalized(left, right, past) for past in preceding]
        averages = [self.computed.population_average_normalized(past) for past in preceding]
        return combine_discrete(static, periodic, averages)


class ContinuousAffinityModel(AffinityModel):
    """The paper's continuous model ``aff_C = aff_S * exp(lambda * (f - s0))``.

    ``lambda * (f - s0)`` equals the cumulative drift sum, so increasing
    affinity pairs see exponential growth and decreasing ones exponential
    decay.  The exponent is clamped to avoid numerical overflow and the final
    value is normalised back into [0, 1].
    """

    name = "continuous"

    #: Clamp on the exponent so exp() stays finite even for extreme drifts.
    MAX_EXPONENT = 8.0

    def __init__(self, computed: ComputedAffinities) -> None:
        self.computed = computed

    def static_affinity(self, left: int, right: int) -> float:
        """The normalised static component."""
        return self.computed.static_normalized(left, right)

    def growth_exponent(self, left: int, right: int, period: Period) -> float:
        """``lambda * (f - s0)``: the cumulative (clamped) growth/decay exponent."""
        rate = self.computed.dynamic_continuous_rate(left, right, period)
        elapsed = self.computed.timeline.elapsed(period)
        exponent = rate * elapsed
        return max(-self.MAX_EXPONENT, min(self.MAX_EXPONENT, exponent))

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        static = self.computed.static_normalized(left, right)
        if period is None:
            return clamp01(static)
        preceding = self.computed.timeline.periods_until(period)
        periodic = [self.computed.periodic_normalized(left, right, past) for past in preceding]
        averages = [self.computed.population_average_normalized(past) for past in preceding]
        return combine_continuous(static, periodic, averages)


class TimeAgnosticAffinityModel(AffinityModel):
    """Affinity-aware but time-agnostic model (the ablation of Figure 1C / 3B).

    The whole history is treated as a single period: affinity is the static
    component plus the overall (drift-free) normalised common-like affinity,
    with no notion of evolution over time.
    """

    name = "time-agnostic"

    def __init__(self, computed: ComputedAffinities) -> None:
        self.computed = computed
        whole = Period(computed.timeline.beginning, computed.timeline.end)
        self._whole_history = whole
        self._overall_raw: dict[tuple[int, int], float] = {}
        users = computed.users
        for index, left in enumerate(users):
            for right in users[index + 1 :]:
                self._overall_raw[pair_key(left, right)] = float(
                    computed.network.common_category_likes(left, right, whole)
                )
        self._overall_max = max(self._overall_raw.values(), default=0.0)

    def affinity(self, left: int, right: int, period: Period | None = None) -> float:
        static = self.computed.static_normalized(left, right)
        overall = 0.0
        if self._overall_max > 0:
            overall = self._overall_raw.get(pair_key(left, right), 0.0) / self._overall_max
        return clamp01(0.5 * (static + overall))


def build_affinity_model(
    model: str,
    network: SocialNetwork,
    timeline: Timeline,
    users: Iterable[int] | None = None,
) -> AffinityModel:
    """Factory building an affinity model by name.

    Parameters
    ----------
    model:
        ``"discrete"``, ``"continuous"``, ``"time-agnostic"`` or ``"none"``.
    network, timeline, users:
        Forwarded to :class:`ComputedAffinities` (ignored for ``"none"``).
    """
    if model == "none":
        return NoAffinityModel()
    computed = ComputedAffinities(network, timeline, users)
    if model == "discrete":
        return DiscreteAffinityModel(computed)
    if model == "continuous":
        return ContinuousAffinityModel(computed)
    if model == "time-agnostic":
        return TimeAgnosticAffinityModel(computed)
    raise AffinityError(
        f"unknown affinity model {model!r}; expected 'discrete', 'continuous', "
        f"'time-agnostic' or 'none'"
    )
