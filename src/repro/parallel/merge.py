"""Deterministic merging of per-shard results back into task order.

The serial reference path produces one record per task, in task order; every
downstream aggregate (the %SA mean, its standard error, access checksums) is
computed from that ordered sequence.  Floating-point summation is not
associative, so the sharded path must reproduce *the same sequence* — not
just the same multiset — before anything is averaged.  The merger therefore
scatters each shard's records back to the original task indices recorded in
the shard plan, in shard order, and refuses plans and results that do not
line up exactly.  Given any partition of the tasks, the merged output is
byte-for-byte the serial sequence, which is the invariant
``tests/test_parallel_equivalence.py`` pins down.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.parallel.sharding import ShardPlan
from repro.parallel.worker import GroupRunRecord


def merge_shard_records(
    plan: ShardPlan, shard_records: Sequence[Sequence[GroupRunRecord]]
) -> list[GroupRunRecord]:
    """Scatter per-shard records back into original task order.

    ``shard_records[s][j]`` is the record of the ``j``-th task of shard
    ``s`` — exactly what :func:`repro.parallel.worker.run_shard` returns for
    :class:`~repro.parallel.worker.ShardPayload` ``s``.
    """
    if len(shard_records) != plan.n_shards:
        raise ConfigurationError(
            f"got records for {len(shard_records)} shards, plan has {plan.n_shards}"
        )
    merged: list[GroupRunRecord | None] = [None] * plan.n_tasks
    for shard_index, (indices, records) in enumerate(zip(plan.shards, shard_records)):
        if len(indices) != len(records):
            raise ConfigurationError(
                f"shard {shard_index} returned {len(records)} records "
                f"for {len(indices)} tasks"
            )
        for task_index, record in zip(indices, records):
            merged[task_index] = record
    # A valid plan covers every index exactly once, so nothing can be None here.
    return [record for record in merged if record is not None]
