"""Epoch-versioned incremental updates: the delta-equivalence matrix.

The contract of :mod:`repro.updates` + ``ScalabilityEnvironment.apply_delta``:
after N :class:`RatingDelta` batches applied *incrementally* — touched-row
similarity refresh, partial apref patching, append-only affinity extension,
memo invalidation, shm retirement — the environment is **bit-identical** to a
full rebuild over the merged history.  Not approximately: the same similarity
matrices, the same aprefs, the same affinity columns, and therefore the same
GRECA records (%SA, SA/RA counts, top-k, stopping reasons, rounds) on every
execution tier.

The oracle is a second environment built from
``base_substrate.with_deltas(deltas)`` — the "rebuilt from scratch over the
merged ratings/likes/timeline" world.  Every test compares the evolved
(incremental) environment against it:

* serial records across periods / consensus / k / item-subset knobs;
* the sharded tiers at shard counts {1, 2, 3, 7} — persistent warm pools,
  supervised dispatch, process pools under both pickle and shm shipment;
* the figure 6 / figure 8 drivers;
* the asyncio service: ``submit_delta`` between query waves, with epoch
  adoption and **zero pool restarts** (asserted via pool object identity);
* :class:`EpochManager` snapshot → restore replay reaching the same records.

Float equality is exact (``==``) throughout, matching the repo's
serial ≡ parallel discipline.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import figure6, figure8
from repro.experiments.scalability import (
    EnvironmentSubstrate,
    ScalabilityConfig,
    ScalabilityEnvironment,
)
from repro.parallel import ExecutionPolicy, evaluate_tasks, group_key
from repro.service import GrecaService, GroupQuery, ServiceConfig
from repro.updates import EpochManager, RatingDelta, random_deltas
from repro.updates.epoch import JOURNAL_VERSION, delta_from_json, delta_to_json
from repro.data.ratings import Rating

#: Shard counts required by the acceptance criteria.
SHARD_COUNTS = (1, 2, 3, 7)

CONFIG = ScalabilityConfig(
    n_users=40,
    n_items=150,
    n_ratings=1_600,
    n_participants=12,
    n_groups=3,
    seed=5,
)


@pytest.fixture(scope="module")
def base_substrate():
    return EnvironmentSubstrate.generate(CONFIG)


@pytest.fixture(scope="module")
def deltas(base_substrate):
    """Three cumulative batches; the second one appends a fresh period."""
    return random_deltas(
        base_substrate.ratings,
        base_substrate.social,
        base_substrate.timeline,
        n_deltas=3,
        seed=7,
        new_period_every=2,
    )


@pytest.fixture(scope="module")
def groups(base_substrate):
    """Fixed explicit groups — the comparison is about state, not the draw."""
    participants = base_substrate.participants
    return [
        tuple(participants[:3]),
        tuple(participants[3:7]),
        tuple(participants[7:10]),
    ]


@pytest.fixture(scope="module")
def oracle_env(base_substrate, deltas):
    """Full rebuild over the merged history: the equivalence oracle."""
    env = ScalabilityEnvironment(CONFIG, substrate=base_substrate.with_deltas(deltas))
    yield env
    env.close()


@pytest.fixture(scope="module")
def evolved(base_substrate, deltas, groups):
    """The incremental world: warm caches, then apply every delta in order.

    Factories (and the apref caches beneath them) are warmed *before* the
    deltas so the refresh/invalidation paths actually run — a cold
    environment would trivially rebuild everything on first use.
    """
    env = ScalabilityEnvironment(CONFIG, substrate=base_substrate)
    for group in groups:
        env.index_factory(group)
    manager = EpochManager(env)
    for delta in deltas:
        manager.apply(delta)
    yield env, manager
    env.close()


def assert_records_identical(actual, expected):
    assert len(actual) == len(expected)
    for position, (got, want) in enumerate(zip(actual, expected)):
        assert got == want, (
            f"group {position} diverged:\n  incremental: {got}\n  rebuilt:     {want}"
        )


# -- delta construction -------------------------------------------------------------------------


def test_delta_rejects_duplicate_pair_within_batch():
    rating = Rating(1, 2, 4.0, 100)
    again = Rating(1, 2, 3.0, 200)
    with pytest.raises(ConfigurationError):
        RatingDelta(ratings=(rating, again))
    assert RatingDelta().is_empty
    assert not RatingDelta(ratings=(rating,)).is_empty


def test_random_deltas_draw_valid_cumulative_events(base_substrate, deltas):
    """Pairs are unrated and never re-drawn; likes stay inside the span."""
    rated = {
        (r.user_id, r.item_id) for r in base_substrate.ratings.ratings
    }
    span_end = base_substrate.timeline.end
    for delta in deltas:
        for rating in delta.ratings:
            key = (rating.user_id, rating.item_id)
            assert key not in rated  # unrated at draw time, unique across deltas
            rated.add(key)
            assert rating.user_id in base_substrate.ratings.users
            assert rating.item_id in base_substrate.ratings.items
        if delta.new_period is not None:
            assert delta.new_period.start == span_end + 1
            span_end = delta.new_period.end
        for like in delta.page_likes:
            assert like.user_id in base_substrate.social.users
            assert base_substrate.timeline.beginning <= like.timestamp <= span_end
    assert any(delta.new_period is not None for delta in deltas)


# -- serial equivalence -------------------------------------------------------------------------


def test_incremental_serial_matches_full_rebuild(evolved, oracle_env, groups):
    """The core oracle: every sweep knob, incremental vs rebuilt, exact."""
    env, _ = evolved
    assert list(env.timeline) == list(oracle_env.timeline)
    appended = env.timeline.current  # the delta-appended period
    for knobs in (
        dict(),
        dict(k=4),
        dict(consensus="PD V2"),
        dict(period=appended),
        dict(period=env.timeline[0], n_items=80),
    ):
        assert_records_identical(
            env.run_records(groups, **knobs), oracle_env.run_records(groups, **knobs)
        )


def test_delta_reports_track_epochs_and_touched_state(evolved, deltas):
    env, manager = evolved
    assert env.epoch == len(deltas)
    assert [report.epoch for report in manager.reports] == [1, 2, 3]
    first = manager.reports[0]
    # Warm caches existed at epoch 1: aprefs moved and factories invalidated.
    assert first.touched_users and first.changed_users and first.invalidated_groups
    assert not first.full_rebuild
    assert all(report.affinity_changed for report in manager.reports)


def test_new_user_delta_falls_back_to_full_rebuild(base_substrate, deltas, groups, oracle_env):
    """A rating for an unknown user takes the slow path — still exact."""
    env = ScalabilityEnvironment(CONFIG, substrate=base_substrate)
    for group in groups:
        env.index_factory(group)
    stranger = max(base_substrate.ratings.users) + 10_000
    item = base_substrate.ratings.items[0]
    extra = RatingDelta(ratings=(Rating(stranger, item, 5.0, base_substrate.timeline.end),))
    for delta in deltas:
        env.apply_delta(delta)
    report = env.apply_delta(extra)
    assert report.full_rebuild
    oracle = ScalabilityEnvironment(
        CONFIG, substrate=base_substrate.with_deltas([*deltas, extra])
    )
    assert_records_identical(env.run_records(groups), oracle.run_records(groups))
    oracle.close()
    env.close()


# -- sharded tiers ------------------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_incremental_persistent_matrix(evolved, oracle_env, groups, n_shards):
    """Warm persistent pools over post-delta state, shard counts {1, 2, 3, 7}."""
    env, _ = evolved
    sharded = env.run_records(groups, n_workers=n_shards, executor="persistent")
    assert_records_identical(sharded, oracle_env.run_records(groups))


def test_incremental_supervised_matches_oracle(evolved, oracle_env, groups):
    env, _ = evolved
    sharded = env.run_records(groups, n_workers=2, executor="supervised")
    assert_records_identical(sharded, oracle_env.run_records(groups))
    assert env.dispatch_reports[-1].ok


@pytest.mark.parametrize("shipment", ("pickle", "shm"))
def test_incremental_process_shipment_matrix(evolved, oracle_env, groups, shipment):
    """Post-delta factories survive both shipment modes bit-identically."""
    env, _ = evolved
    tasks = [env.task_for(group) for group in groups]
    factories = {group_key(group): env.index_factory(group) for group in groups}
    records = evaluate_tasks(
        tasks, factories, n_shards=2, executor="process", shipment=shipment
    )
    assert_records_identical(records, oracle_env.run_records(groups))


def test_epoch_adoption_keeps_warm_pools_alive(base_substrate, deltas, groups, oracle_env):
    """Zero pool restarts: the pre-delta pool object survives every epoch."""
    env = ScalabilityEnvironment(CONFIG, substrate=base_substrate)
    env.run_records(groups, n_workers=2, executor="persistent")  # warm epoch 0
    pool = env._persistent_pools[2]
    inner = pool._pool
    registry = env._shared_registry()
    for delta in deltas:
        env.apply_delta(delta)
    post = env.run_records(groups, n_workers=2, executor="persistent")
    # Same pool wrapper, same live ProcessPoolExecutor, same registry object —
    # the new epoch was adopted by the existing workers, not by replacements.
    assert env._persistent_pools[2] is pool and pool._pool is inner
    assert env._shared_registry() is registry and not registry.closed
    assert_records_identical(post, oracle_env.run_records(groups))
    env.close()


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_incremental_mmap_storage_matrix(evolved, oracle_env, groups, n_shards):
    """File-backed columns over post-delta state, shard counts {1, 2, 3, 7}.

    The evolved environment sits three epoch swaps past its base substrate;
    dispatching it over the mmap backend must still reproduce the rebuilt
    oracle bit-for-bit — the spool files carry the *adopted* epoch's bytes.
    """
    env, _ = evolved
    sharded = env.run_records(
        groups, policy=ExecutionPolicy(n_workers=n_shards, storage="mmap")
    )
    assert_records_identical(sharded, oracle_env.run_records(groups))


def test_epoch_adoption_retires_spool_files_and_adopts(
    base_substrate, deltas, groups, oracle_env
):
    """mmap across epoch swaps: retired spool files delete, fresh ones adopt.

    Mirrors the warm-pool adoption contract on the file-backed tier — the
    epoch-0 exports live as spool files, each swap's retirement deletes the
    stale ones under the same generation-token floor that unlinks shm
    segments, and the post-swap dispatch serves the new epoch through the
    *same* registry object from fresh files.  Closing the environment leaves
    the spool directory gone entirely.
    """
    env = ScalabilityEnvironment(CONFIG, substrate=base_substrate)
    policy = ExecutionPolicy(n_workers=2, executor="persistent", storage="mmap")
    env.run_records(groups, policy=policy)  # epoch-0 spool exports
    registry = env._shared_registry("mmap")
    names_before = registry.segment_names
    assert names_before and all(os.path.isabs(name) for name in names_before)
    retired: list[str] = []
    for delta in deltas:
        report = env.apply_delta(delta)
        retired.extend(report.retired_segments)
    retired_files = [name for name in retired if os.path.isabs(name)]
    assert retired_files  # the swaps actually retired spool-file exports
    assert all(not os.path.exists(name) for name in retired_files)
    post = env.run_records(groups, policy=policy)
    assert env._shared_registry("mmap") is registry and not registry.closed
    assert set(registry.segment_names).isdisjoint(retired_files)
    assert_records_identical(post, oracle_env.run_records(groups))
    spool = registry.spool_path
    env.close()
    assert not os.path.exists(spool)
    assert all(not os.path.exists(name) for name in names_before)


def test_figure_drivers_match_full_rebuild(evolved, oracle_env, groups):
    """Figure 6 and Figure 8 over the evolved substrate equal the rebuilt one."""
    env, _ = evolved
    assert figure6.run(environment=env, groups=groups) == figure6.run(
        environment=oracle_env, groups=groups
    )
    assert figure8.run(environment=env, groups=groups) == figure8.run(
        environment=oracle_env, groups=groups
    )


# -- service ------------------------------------------------------------------------------------


def test_service_adopts_epochs_between_query_waves(
    base_substrate, deltas, groups, oracle_env
):
    """submit_delta between waves: wave 1 on epoch 0, wave 2 on epoch N.

    The service keeps its single dispatch thread and (supervised) worker
    pool across every epoch — responses after the deltas equal the rebuilt
    oracle, with no restart in between.
    """
    env = ScalabilityEnvironment(CONFIG, substrate=base_substrate)
    wave1_expected = env.run_records(groups)  # also warms the caches pre-delta
    config = ServiceConfig(n_workers=2, executor="supervised", max_batch_delay=0.01)

    async def session():
        service = GrecaService(environment=env, config=config)
        async with service:
            wave1 = await asyncio.gather(
                *(service.submit(GroupQuery(group=group)) for group in groups)
            )
            reports = [await service.submit_delta(delta) for delta in deltas]
            wave2 = await asyncio.gather(
                *(service.submit(GroupQuery(group=group)) for group in groups)
            )
        return wave1, reports, wave2

    wave1, reports, wave2 = asyncio.run(session())
    assert_records_identical([response.record for response in wave1], wave1_expected)
    assert [report.epoch for report in reports] == [1, 2, 3]
    assert env.epoch == len(deltas)
    assert_records_identical(
        [response.record for response in wave2], oracle_env.run_records(groups)
    )
    env.close()


# -- journal ------------------------------------------------------------------------------------


def test_delta_json_round_trip(deltas):
    for delta in deltas:
        assert delta_from_json(delta_to_json(delta)) == delta


def test_epoch_manager_snapshot_restore_reaches_identical_state(
    tmp_path, evolved, oracle_env, groups
):
    env, manager = evolved
    path = manager.snapshot(tmp_path / "journal.json")
    restored = EpochManager.restore(path)
    assert restored.epoch == manager.epoch
    assert restored.applied == manager.applied
    assert_records_identical(
        restored.environment.run_records(groups), oracle_env.run_records(groups)
    )
    restored.environment.close()


def test_restore_rejects_unknown_journal_version(tmp_path, evolved):
    _, manager = evolved
    path = manager.snapshot(tmp_path / "journal.json")
    import json

    payload = json.loads(path.read_text())
    payload["version"] = JOURNAL_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(ConfigurationError):
        EpochManager.restore(path)
