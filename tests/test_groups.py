"""Tests for repro.groups (cohesion metrics and group formation)."""

from __future__ import annotations

import pytest

from repro.core.affinity import ExplicitAffinityModel, NoAffinityModel
from repro.exceptions import GroupError
from repro.groups.cohesion import (
    group_cohesiveness,
    is_high_affinity,
    mean_pairwise_similarity,
    minimum_pairwise_affinity,
    pairwise_similarities,
    summed_pairwise_similarity,
)
from repro.groups.formation import GroupFormer, GroupProfile


class TestCohesion:
    def test_pairwise_similarities_cover_all_pairs(self, toy_ratings):
        values = pairwise_similarities(toy_ratings, [1, 2, 3])
        assert set(values) == {(1, 2), (1, 3), (2, 3)}
        assert all(-1.0 <= value <= 1.0 for value in values.values())

    def test_identical_raters_have_high_similarity(self, toy_ratings):
        values = pairwise_similarities(toy_ratings, [1, 2, 3])
        assert values[(1, 2)] > values[(1, 3)]

    def test_summed_and_mean_similarity(self, toy_ratings):
        total = summed_pairwise_similarity(toy_ratings, [1, 2, 3])
        mean = mean_pairwise_similarity(toy_ratings, [1, 2, 3])
        assert mean == pytest.approx(total / 3)
        assert group_cohesiveness(toy_ratings, [1, 2, 3]) == pytest.approx(mean)

    def test_validation(self, toy_ratings):
        with pytest.raises(GroupError):
            pairwise_similarities(toy_ratings, [1])
        with pytest.raises(GroupError):
            pairwise_similarities(toy_ratings, [1, 1, 2])

    def test_minimum_pairwise_affinity_and_threshold(self):
        affinity = ExplicitAffinityModel({(1, 2): 0.9, (1, 3): 0.5, (2, 3): 0.45})
        assert minimum_pairwise_affinity(affinity, [1, 2, 3]) == pytest.approx(0.45)
        assert is_high_affinity(affinity, [1, 2, 3])  # every pair >= 0.4 (paper threshold)
        assert not is_high_affinity(affinity, [1, 2, 3], threshold=0.5)

    def test_no_affinity_groups_are_low_affinity(self):
        assert not is_high_affinity(NoAffinityModel(), [1, 2, 3])


class TestGroupFormer:
    @pytest.fixture()
    def former(self, small_ratings):
        return GroupFormer(small_ratings, candidates=small_ratings.users[:20], seed=1)

    def test_requires_candidates(self, small_ratings):
        with pytest.raises(GroupError):
            GroupFormer(small_ratings, candidates=[small_ratings.users[0]])

    def test_similar_group_more_cohesive_than_dissimilar(self, former, small_ratings):
        similar = former.similar_group(4)
        dissimilar = former.dissimilar_group(4)
        assert len(similar) == 4 and len(set(similar)) == 4
        assert len(dissimilar) == 4 and len(set(dissimilar)) == 4
        assert summed_pairwise_similarity(small_ratings, similar) > summed_pairwise_similarity(
            small_ratings, dissimilar
        )

    def test_affinity_groups_respect_ordering(self, former):
        affinity = ExplicitAffinityModel(
            {
                (user_a, user_b): (0.9 if (user_a + user_b) % 3 == 0 else 0.05)
                for i, user_a in enumerate(former.candidates)
                for user_b in former.candidates[i + 1 :]
            }
        )
        high = former.high_affinity_group(3, affinity)
        low = former.low_affinity_group(3, affinity)
        assert minimum_pairwise_affinity(affinity, high) >= minimum_pairwise_affinity(affinity, low)

    def test_random_groups_are_valid_and_reproducible(self, small_ratings):
        former_a = GroupFormer(small_ratings, candidates=small_ratings.users[:20], seed=7)
        former_b = GroupFormer(small_ratings, candidates=small_ratings.users[:20], seed=7)
        groups_a = former_a.random_groups(5, 4)
        groups_b = former_b.random_groups(5, 4)
        assert groups_a == groups_b
        for group in groups_a:
            assert len(group) == 4 and len(set(group)) == 4

    def test_size_validation(self, former):
        with pytest.raises(GroupError):
            former.random_group(1)
        with pytest.raises(GroupError):
            former.random_group(500)
        with pytest.raises(GroupError):
            former.random_groups(0, 3)

    def test_study_groups_cover_the_paper_grid(self, former):
        affinity = NoAffinityModel()
        profiles = former.study_groups(affinity, small=3, large=6)
        assert len(profiles) == 8
        sizes = {profile.size for profile in profiles}
        assert sizes == {3, 6}
        labels = {(p.size_label, p.cohesiveness_label, p.affinity_label) for p in profiles}
        assert ("small", "similar", "mixed") in labels
        assert ("large", "mixed", "high-affinity") in labels

    def test_group_profile_describe(self):
        profile = GroupProfile((1, 2, 3), "small", "similar", "mixed")
        assert profile.size == 3
        assert "small" in profile.describe()
