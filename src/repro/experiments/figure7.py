"""Figure 7 — %SA for similar, dissimilar, high-affinity and low-affinity groups.

The paper compares GRECA's pruning ability across group classes and finds
that "the effectiveness is higher for similar groups in both cases (item
based similarity and high affinity)": cohesive groups have a clearly
separated top-k, so the buffer condition fires early.

The reproduction forms several groups of each class with the greedy group
former (over different random candidate subsets so the classes contain more
than one group) and reports mean %SA per class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.scalability import (
    AccessStats,
    ScalabilityConfig,
    ScalabilityEnvironment,
    SweepPoint,
    owned_environment,
    summarize_percent_sa,
)
from repro.groups.formation import GroupFormer

#: Group classes on the x-axis of Figure 7.
GROUP_CLASSES = ("Sim", "Diss", "High Aff", "Low Aff")

#: The paper's qualitative claim.
PAPER_REFERENCE = {
    "behaviour": "similar and high-affinity groups need fewer accesses than "
    "dissimilar and low-affinity groups"
}


@dataclass(frozen=True)
class Figure7Result:
    """%SA statistics per group class."""

    percent_sa: Mapping[str, AccessStats]

    def rows(self) -> list[dict[str, object]]:
        """One row per group class."""
        return [
            {
                "group_class": group_class,
                "mean_percent_sa": round(self.percent_sa[group_class].mean_percent_sa, 2),
                "std_error": round(self.percent_sa[group_class].std_error, 2),
                "saveup": round(self.percent_sa[group_class].mean_saveup, 2),
            }
            for group_class in GROUP_CLASSES
        ]

    def format_table(self) -> str:
        """Human-readable rendering."""
        lines = ["Figure 7 — average %SA per group class"]
        lines.append(f"{'class':<10} {'%SA':>8} {'+/-':>6} {'saveup':>8}")
        for row in self.rows():
            lines.append(
                f"{row['group_class']:<10} {row['mean_percent_sa']:>8.2f} "
                f"{row['std_error']:>6.2f} {row['saveup']:>8.2f}"
            )
        return "\n".join(lines)


def _class_groups(
    environment: ScalabilityEnvironment, n_groups: int, group_size: int, seed: int
) -> dict[str, list[list[int]]]:
    """Form ``n_groups`` groups of each class from varying candidate subsets."""
    rng = random.Random(seed)
    participants = list(environment.participants)
    affinity = environment.recommender.affinity_model("discrete")
    period = environment.timeline.current
    groups: dict[str, list[list[int]]] = {label: [] for label in GROUP_CLASSES}
    subset_size = max(group_size * 3, min(len(participants), 18))
    for _ in range(n_groups):
        subset = rng.sample(participants, min(subset_size, len(participants)))
        former = GroupFormer(environment.ratings, candidates=subset, seed=rng.randint(0, 10_000))
        groups["Sim"].append(former.similar_group(group_size))
        groups["Diss"].append(former.dissimilar_group(group_size))
        groups["High Aff"].append(former.high_affinity_group(group_size, affinity, period))
        groups["Low Aff"].append(former.low_affinity_group(group_size, affinity, period))
    return groups


def run(
    environment: ScalabilityEnvironment | None = None,
    config: ScalabilityConfig | None = None,
    n_groups_per_class: int = 4,
    group_size: int | None = None,
    n_workers: int | None = None,
    executor=None,
    policy=None,
) -> Figure7Result:
    """Regenerate Figure 7 (``n_workers=`` batches all classes into one dispatch).

    ``policy=`` takes the bundled :class:`~repro.parallel.ExecutionPolicy`
    spelling of the same knobs.  A driver-owned environment is closed on
    the way out, exception or not.
    """
    with owned_environment(environment, config) as environment:
        group_size = group_size or environment.config.group_size
        per_class = _class_groups(
            environment, n_groups_per_class, group_size, seed=environment.config.seed
        )

        class_names = list(per_class)
        points = [SweepPoint(groups=per_class[name]) for name in class_names]
        results = environment.run_sweep(
            points, n_workers=n_workers, executor=executor, policy=policy
        )
        percent_sa = {
            name: summarize_percent_sa([record.percent_sa for record in records])
            for name, records in zip(class_names, results)
        }
        return Figure7Result(percent_sa=percent_sa)
