"""Shared harness for the scalability experiments (Section 4.2, Figures 5-8).

The paper's setup: 20 random groups drawn from the quality-study
participants, default group size 6, ``k = 10``, 3,900 candidate items, AP
consensus, discrete time model over 6 two-month periods.  Every figure varies
exactly one of those knobs and reports the *average percentage of sequential
accesses* (%SA) GRECA needs, compared to a naive algorithm that scans every
list entirely (lower is better; the paper reports savings of 75% or more).

:class:`ScalabilityEnvironment` builds the shared substrate once (dataset,
social network, fitted recommender, participant pool) so that the individual
figure drivers only loop over their parameter of interest.

The environment also owns the **index-reuse layer**: one
:class:`~repro.core.greca.GrecaIndexFactory` per group (sharing the columnar
preference substrate across every sweep point) and a memo of fully built
indexes keyed by ``(group, affinity, period, n_items)``.  Sweeping ``k`` or
the consensus function therefore reuses the exact same index object, and
sweeping the period or the item count only rebuilds the small affinity
dictionaries — never the preference matrix.  Cached indexes are immutable
between runs (every :meth:`Greca.run` materialises fresh lists/counters), and
the reuse layer is proven bit-identical to per-point construction by
``tests/test_engine_properties.py`` and the golden-grid reuse test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import mean, stdev
from typing import Sequence

from repro.core.consensus import ConsensusFunction, make_consensus
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory
from repro.core.recommender import GroupRecommender
from repro.core.timeline import Period, Timeline, one_year_timeline
from repro.data.movielens import MovieLensConfig, generate_movielens_like
from repro.data.ratings import RatingsDataset
from repro.data.social import SocialConfig, SocialNetwork, SocialNetworkGenerator
from repro.exceptions import ConfigurationError
from repro.groups.formation import GroupFormer

#: Paper defaults (Section 4.2, "Experiment Settings").
DEFAULT_N_GROUPS = 20
DEFAULT_GROUP_SIZE = 6
DEFAULT_K = 10
DEFAULT_N_ITEMS = 3_900
DEFAULT_CONSENSUS = "AP"


@dataclass(frozen=True)
class ScalabilityConfig:
    """Configuration of the shared scalability substrate.

    The defaults are scaled down from the paper (which uses the full
    MovieLens 1M catalogue) so that the benchmark suite runs in seconds; the
    paper-scale values can be requested explicitly.
    """

    n_users: int = 150
    n_items: int = 3_900
    n_ratings: int = 80_000
    n_participants: int = 48
    n_groups: int = 8
    group_size: int = DEFAULT_GROUP_SIZE
    k: int = DEFAULT_K
    consensus: str = DEFAULT_CONSENSUS
    granularity: str = "two-month"
    seed: int = 17

    def __post_init__(self) -> None:
        if self.n_participants < self.group_size:
            raise ConfigurationError("need at least group_size participants")
        if self.n_groups <= 0 or self.group_size < 2:
            raise ConfigurationError("n_groups must be positive and group_size >= 2")


@dataclass(frozen=True)
class AccessStats:
    """Average %SA over a set of runs, with the spread reported by the paper's error bars."""

    mean_percent_sa: float
    std_error: float
    n_runs: int

    @property
    def mean_saveup(self) -> float:
        """Average percentage of accesses avoided."""
        return 100.0 - self.mean_percent_sa


def summarize_percent_sa(values: Sequence[float]) -> AccessStats:
    """Aggregate per-run %SA values into mean and standard error."""
    if not values:
        raise ConfigurationError("no %SA values to summarise")
    spread = stdev(values) / (len(values) ** 0.5) if len(values) > 1 else 0.0
    return AccessStats(mean_percent_sa=mean(values), std_error=spread, n_runs=len(values))


class ScalabilityEnvironment:
    """Shared substrate for Figures 5-8: data, recommender and group pool."""

    def __init__(self, config: ScalabilityConfig | None = None) -> None:
        self.config = config or ScalabilityConfig()
        config = self.config

        self.ratings: RatingsDataset = generate_movielens_like(
            MovieLensConfig(
                n_users=config.n_users,
                n_items=config.n_items,
                n_ratings=config.n_ratings,
                seed=config.seed,
            )
        )
        self.timeline: Timeline = one_year_timeline(granularity=config.granularity)
        self.participants: tuple[int, ...] = tuple(self.ratings.users[: config.n_participants])
        self.social: SocialNetwork = SocialNetworkGenerator(
            SocialConfig(seed=config.seed)
        ).generate(self.participants, self.timeline)
        self.recommender = GroupRecommender(
            ratings=self.ratings,
            social=self.social,
            timeline=self.timeline,
            affinity_universe=self.participants,
        ).fit()
        self.former = GroupFormer(self.ratings, candidates=self.participants, seed=config.seed)
        self._index_factories: dict[tuple[int, ...], GrecaIndexFactory] = {}
        self._index_cache: dict[tuple, GrecaIndex] = {}

    # -- index reuse -----------------------------------------------------------------------------

    def index_factory(self, group: Sequence[int]) -> GrecaIndexFactory:
        """The (memoised) per-group index factory over the full catalogue."""
        key = tuple(group)
        factory = self._index_factories.get(key)
        if factory is None:
            factory = self.recommender.index_factory(list(group), exclude_rated=False)
            self._index_factories[key] = factory
        return factory

    def cached_index(
        self,
        group: Sequence[int],
        period: Period | None = None,
        affinity: str = "discrete",
        n_items: int | None = None,
    ) -> GrecaIndex:
        """A GRECA index for one sweep point, built through the reuse layer.

        Bit-identical to ``recommender.build_index(group, period=period,
        affinity=affinity, exclude_rated=False, items=items[:n_items])`` —
        the scan-equivalence tests enforce this — but sweep points sharing a
        group reuse the columnar preference substrate, and repeated points
        reuse the index object outright.
        """
        if period is None and self.timeline is not None:
            period = self.timeline.current
        key = (tuple(group), affinity, period, n_items)
        index = self._index_cache.get(key)
        if index is None:
            static, periodic, averages, time_model = self.recommender.affinity_components(
                list(group), period=period, affinity=affinity
            )
            items = list(self.ratings.items[:n_items]) if n_items is not None else None
            index = self.index_factory(group).build(
                static,
                periodic=periodic,
                averages=averages,
                time_model=time_model,
                items=items,
            )
            self._index_cache[key] = index
        return index

    # -- groups ----------------------------------------------------------------------------------

    def random_groups(self, n_groups: int | None = None, group_size: int | None = None) -> list[list[int]]:
        """The paper's "20 different random groups" (counts from the config by default)."""
        return self.former.random_groups(
            n_groups or self.config.n_groups, group_size or self.config.group_size
        )

    def build_default_indexes(self) -> list:
        """Pre-built GRECA indexes for the default benchmark point.

        One index per default random group, discrete affinity model, full
        catalogue.  The perf gate (:func:`run_quick_smoke`), the recorded
        trajectory (``scripts/bench_engine.py``) and the engine benchmark
        (``benchmarks/test_bench_engine.py``) all measure exactly this
        workload, so it is defined in one place.
        """
        return [self.cached_index(group) for group in self.random_groups()]

    # -- measurement ------------------------------------------------------------------------------

    def percent_sa(
        self,
        group: Sequence[int],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
    ) -> float:
        """%SA of one GRECA run for one group (index built through the reuse layer)."""
        consensus_fn = (
            consensus
            if isinstance(consensus, ConsensusFunction)
            else make_consensus(consensus or self.config.consensus)
        )
        index = self.cached_index(group, period=period, affinity=affinity, n_items=n_items)
        result = Greca(consensus_fn, k=k or self.config.k).run(index)
        return result.percent_sequential_accesses

    def average_percent_sa(
        self,
        groups: Sequence[Sequence[int]],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
    ) -> AccessStats:
        """Average %SA over a collection of groups (one GRECA run each)."""
        values = [
            self.percent_sa(
                group, k=k, consensus=consensus, affinity=affinity, period=period, n_items=n_items
            )
            for group in groups
        ]
        return summarize_percent_sa(values)


# -- perf smoke gate ----------------------------------------------------------------------------

#: Default wall-clock budgets for :func:`run_quick_smoke` (seconds).  The
#: measurement budget is calibrated against the batched columnar engine
#: (~0.25 s for the 8 default groups, see BENCH_engine.json): a regression
#: back to per-entry speed (~1.3 s) blows it with margin, while normal CI
#: noise does not.
QUICK_SMOKE_TOTAL_BUDGET = 20.0
QUICK_SMOKE_MEASURE_BUDGET = 1.0


@dataclass(frozen=True)
class QuickSmokeResult:
    """Outcome of the one-point scalability smoke run."""

    stats: AccessStats
    setup_seconds: float
    measure_seconds: float
    total_budget: float
    measure_budget: float

    @property
    def within_budget(self) -> bool:
        """``True`` when both the total and the measurement budget held."""
        total = self.setup_seconds + self.measure_seconds
        return total <= self.total_budget and self.measure_seconds <= self.measure_budget

    def format_summary(self) -> str:
        """One-paragraph human-readable summary for the CLI."""
        verdict = "OK" if self.within_budget else "OVER BUDGET"
        return (
            f"quick smoke [{verdict}]: mean %SA={self.stats.mean_percent_sa:.2f} "
            f"(±{self.stats.std_error:.2f}, {self.stats.n_runs} groups) | "
            f"setup {self.setup_seconds:.2f}s + measure {self.measure_seconds:.2f}s "
            f"(budgets: total {self.total_budget:.0f}s, measure {self.measure_budget:.1f}s)"
        )


def run_quick_smoke(
    total_budget: float = QUICK_SMOKE_TOTAL_BUDGET,
    measure_budget: float = QUICK_SMOKE_MEASURE_BUDGET,
    config: ScalabilityConfig | None = None,
) -> QuickSmokeResult:
    """Run one default scalability point under a wall-clock budget.

    This is the fail-fast perf gate (``make bench`` /
    ``python -m repro.experiments.runner --quick``): it builds the shared
    substrate, measures GRECA's average %SA over the default groups at the
    paper's 3,900-item point, and reports whether the setup-plus-measurement
    time fits the budgets.  Callers (the Makefile, CI) should fail when
    :attr:`QuickSmokeResult.within_budget` is ``False``.
    """
    start = time.perf_counter()
    environment = ScalabilityEnvironment(config)
    consensus = make_consensus(environment.config.consensus)
    indexes = environment.build_default_indexes()
    setup_seconds = time.perf_counter() - start

    # Measure the engine only: indexes are pre-built, so the measured phase is
    # exactly what BENCH_engine.json tracks (list build + algorithm + result).
    start = time.perf_counter()
    results = [Greca(consensus, k=environment.config.k).run(index) for index in indexes]
    measure_seconds = time.perf_counter() - start
    stats = summarize_percent_sa([result.percent_sequential_accesses for result in results])
    return QuickSmokeResult(
        stats=stats,
        setup_seconds=setup_seconds,
        measure_seconds=measure_seconds,
        total_budget=total_budget,
        measure_budget=measure_budget,
    )
