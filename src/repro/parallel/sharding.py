"""Shard planning for parallel group evaluation.

A *shard plan* partitions a list of evaluation tasks (identified by their
position in the task list) into shards.  The planner is deliberately dumb and
deterministic: contiguous, balanced slices in task order.  Everything
downstream — the worker, the merger, the equivalence tests — works for *any*
partition of the task indices, which is exactly the property the
shard-plan-invariance tests exercise: however the tasks are split, the merged
records (and therefore the summary statistics) are identical to the serial
run, because the merger scatters every record back to its original task
position before anything is aggregated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ShardPlan:
    """A partition of ``n_tasks`` task indices into ordered shards.

    ``shards[s]`` holds the original task indices assigned to shard ``s``.
    The plan must be a true partition — every index in ``range(n_tasks)``
    appears in exactly one shard — but shards are *not* required to be
    contiguous or balanced; :func:`plan_shards` merely produces plans that
    are.
    """

    n_tasks: int
    shards: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen: list[int] = [index for shard in self.shards for index in shard]
        if sorted(seen) != list(range(self.n_tasks)):
            raise ConfigurationError(
                f"shard plan is not a partition of {self.n_tasks} task indices: {self.shards!r}"
            )

    @property
    def n_shards(self) -> int:
        """Number of (non-empty) shards in the plan."""
        return len(self.shards)

    def shard_sizes(self) -> tuple[int, ...]:
        """Number of tasks per shard, in shard order."""
        return tuple(len(shard) for shard in self.shards)


def plan_shards(n_tasks: int, n_shards: int) -> ShardPlan:
    """Partition ``n_tasks`` task indices into at most ``n_shards`` shards.

    Shards are contiguous balanced slices in task order: sizes differ by at
    most one, with the earlier shards taking the remainder.  Requesting more
    shards than tasks simply yields one single-task shard per task — empty
    shards are never emitted.
    """
    if n_shards <= 0:
        raise ConfigurationError("n_shards must be positive")
    if n_tasks < 0:
        raise ConfigurationError("n_tasks must be non-negative")
    n_shards = min(n_shards, n_tasks)
    shards: list[tuple[int, ...]] = []
    start = 0
    for shard_index in range(n_shards):
        size = n_tasks // n_shards + (1 if shard_index < n_tasks % n_shards else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return ShardPlan(n_tasks=n_tasks, shards=tuple(shards))
