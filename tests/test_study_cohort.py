"""Tests for repro.data.study_cohort (the synthetic Facebook study cohort)."""

from __future__ import annotations

import pytest

from repro.core.timeline import uniform_timeline
from repro.data.study_cohort import StudyConfig, build_movie_sets, build_study_cohort
from repro.exceptions import ConfigurationError


class TestStudyConfig:
    def test_defaults_valid(self):
        StudyConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_seeds": 0},
            {"min_invitees": 5, "max_invitees": 2},
            {"min_ratings_per_user": 0},
            {"popular_set_size": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            StudyConfig(**kwargs)

    def test_paper_scale(self):
        paper = StudyConfig().paper_scale()
        assert paper.n_seeds == 13
        assert paper.min_invitees == 10
        assert paper.max_invitees == 20


class TestMovieSets:
    def test_popular_and_diversity_sets(self, small_ratings):
        config = StudyConfig(popular_set_size=20, diversity_set_size=10, diversity_popularity_rank=60)
        popular, diversity, similar, dissimilar = build_movie_sets(small_ratings, config)
        assert len(popular) == 20
        assert len(diversity) == 10
        assert similar == popular
        # The dissimilar questionnaire mixes the popular head with the diversity movies.
        assert set(dissimilar) & set(popular)
        assert set(diversity) <= set(dissimilar)

    def test_popular_set_is_most_rated(self, small_ratings):
        popular, _, _, _ = build_movie_sets(small_ratings, StudyConfig(popular_set_size=5))
        counts = [small_ratings.item_popularity(item) for item in popular]
        threshold = sorted(
            (small_ratings.item_popularity(item) for item in small_ratings.items), reverse=True
        )[4]
        assert min(counts) >= threshold


class TestCohort:
    @pytest.fixture(scope="class")
    def cohort(self, request):
        small_ratings = request.getfixturevalue("small_ratings")
        timeline = uniform_timeline(0, 4, 1_000_000)
        return build_study_cohort(small_ratings, timeline, StudyConfig(seed=2)), timeline

    def test_recruitment_structure(self, cohort):
        built, _ = cohort
        config = StudyConfig()
        assert len(built.seeds) == config.n_seeds
        assert built.n_participants >= config.n_seeds * (1 + config.min_invitees)
        assert set(built.seeds) <= set(built.participants)

    def test_participants_do_not_collide_with_base_users(self, cohort, small_ratings):
        built, _ = cohort
        assert not set(built.participants) & set(small_ratings.users)

    def test_every_participant_rated_enough_movies(self, cohort):
        built, _ = cohort
        config = StudyConfig()
        for user in built.participants:
            assert len(built.ratings.user_ratings(user)) >= min(
                config.min_ratings_per_user, len(built.similar_set), len(built.dissimilar_set)
            ) - 15  # some questionnaires are shorter than the requested minimum

    def test_ratings_restricted_to_study_movies(self, cohort):
        built, _ = cohort
        study_items = set(built.similar_set) | set(built.dissimilar_set)
        assert set(built.ratings.items) <= study_items

    def test_social_network_covers_participants(self, cohort):
        built, timeline = cohort
        assert set(built.social.users) == set(built.participants)
        for like in built.social.page_likes[:50]:
            assert timeline.beginning <= like.timestamp <= timeline.end

    def test_deterministic_for_seed(self, small_ratings):
        timeline = uniform_timeline(0, 3, 1_000_000)
        first = build_study_cohort(small_ratings, timeline, StudyConfig(seed=9))
        second = build_study_cohort(small_ratings, timeline, StudyConfig(seed=9))
        assert first.participants == second.participants
        assert len(first.ratings) == len(second.ratings)
