"""Sharded parallel group-evaluation layer.

The paper's scalability study evaluates many independent groups over one
shared, read-only index substrate — an embarrassingly parallel workload.
This package partitions those evaluations across process workers while
keeping the serial semantics bit-exact:

* :mod:`repro.parallel.sharding` — deterministic shard planning (any
  partition of the task indices is a valid plan);
* :mod:`repro.parallel.worker` — picklable task/record/payload types and the
  worker-side loop (``factory.build`` + ``Greca.run`` per task);
* :mod:`repro.parallel.pool` — the ``serial`` (in-process) and ``process``
  (``concurrent.futures``) shard executors;
* :mod:`repro.parallel.merge` — order-restoring merge of per-shard records;
* :mod:`repro.parallel.evaluation` — the :func:`evaluate_tasks` pipeline
  gluing the four together.

Serial execution remains the reference semantics everywhere: the sharded
path must (and, per ``tests/test_parallel_equivalence.py``, does) reproduce
the serial records — access counts, %SA values, top-k items, stopping
reasons — bit-for-bit for every shard count and every partition.
"""

from repro.parallel.evaluation import build_payloads, evaluate_tasks
from repro.parallel.merge import merge_shard_records
from repro.parallel.pool import (
    EXECUTOR_PROCESS,
    EXECUTOR_SERIAL,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    resolve_executor,
)
from repro.parallel.sharding import ShardPlan, plan_shards
from repro.parallel.worker import (
    GroupEvalTask,
    GroupRunRecord,
    ShardPayload,
    group_key,
    record_from_result,
    run_shard,
    run_task,
)

__all__ = [
    "EXECUTOR_PROCESS",
    "EXECUTOR_SERIAL",
    "GroupEvalTask",
    "GroupRunRecord",
    "ProcessShardExecutor",
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardPayload",
    "ShardPlan",
    "build_payloads",
    "evaluate_tasks",
    "group_key",
    "merge_shard_records",
    "plan_shards",
    "record_from_result",
    "resolve_executor",
    "run_shard",
    "run_task",
]
