"""Fault-tolerant dispatch supervision for the sharded parallel layer.

PRs 3–5 made the parallel tier fast — persistent pools, zero-copy shm
shipment, batched multi-query dispatch — but left it fragile: one crashed or
wedged worker killed a whole figure sweep, and callers had no retry or
fallback.  This module turns dispatch into a supervised operation:

* :class:`SupervisedDispatch` wraps any
  :class:`~repro.parallel.pool.ShardExecutor` and adds four recovery tiers,
  none of which can change results (the architecture invariant: any shard
  partition, any backend, any shipment merges to the bit-identical serial
  sequence):

  1. **per-shard wall-clock timeouts** — each shard future is awaited
     against its own deadline, so a stalled worker costs one timeout, not
     the whole run (preemptive timeouts need a process boundary; in-process
     backends run unpreempted);
  2. **bounded retries with deterministic backoff** — failed or timed-out
     shards are re-dispatched up to :attr:`SupervisionPolicy.max_retries`
     times, sleeping exponentially with *seeded* jitter
     (:meth:`SupervisionPolicy.backoff_seconds` is a pure function of the
     policy seed, the shard and the attempt — chaos runs are replayable);
  3. **pool self-healing** — a crash or timeout poisons the worker pool, so
     the supervisor discards it with the non-blocking
     :meth:`~repro.parallel.pool.PersistentShardExecutor.kill`, lazily
     rebuilds it for the retry, and asks the shm registry to
     :meth:`~repro.parallel.shm.SharedArrayRegistry.reexport_missing` any
     segment that vanished with the dead workers, rewriting pending payload
     handles to the replacement segments;
  4. **graceful degradation** — a shard that exhausts its retry budget is
     re-run in-process on the serial executor (bit-identical by the
     architecture invariant, so degradation never changes results; the
     fault plan is stripped first, because a planned ``os._exit`` must
     never fire inside the parent).

  Every action is recorded in a structured :class:`DispatchReport`
  (per-shard attempt latencies, retries, pool rebuilds, segment re-exports,
  degradations) surfaced through ``SupervisedDispatch.last_report``,
  :func:`repro.parallel.evaluate_tasks`'s ``reports=`` sink,
  ``ScalabilityEnvironment.dispatch_reports`` and the runner's
  ``--executor supervised`` summary line.

* :class:`FaultPlan` is the deterministic fault-injection harness the chaos
  suite (``tests/test_fault_tolerance.py``) drives.  A plan ships *inside*
  the :class:`~repro.parallel.worker.ShardPayload`; ``run_shard`` consults
  it before each task and crashes (``os._exit``), raises
  (:class:`~repro.exceptions.InjectedFaultError`) or stalls at the planned
  (shard, task-position) coordinates.  A spec fires on dispatch attempts
  ``0 .. fires-1`` and the supervisor re-ships retries with the attempt
  counter incremented, so "fail twice then succeed" needs no cross-process
  state and replays exactly.  ``REPRO_FAULT_PLAN`` injects a plan into any
  dispatch from the environment for local chaos runs.

The ``supervised`` executor name registers here (a
:class:`SupervisedDispatch` around a fresh persistent pool), which is how it
appears in the single :class:`ValueError` choice point's backend list.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from concurrent.futures.process import BrokenProcessPool

from repro.exceptions import (
    ConfigurationError,
    DispatchError,
    InjectedFaultError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.parallel.pool import (
    PersistentShardExecutor,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    register_executor,
)
from repro.parallel.shm import (
    SharedArrayRegistry,
    ShmAffinityHandle,
    ShmFactoryHandle,
    rewrite_affinity_handle,
    rewrite_factory_handle,
)
from repro.parallel.worker import GroupRunRecord, ShardPayload, run_shard

#: The fault-tolerant executor spelling (registered at the bottom).
EXECUTOR_SUPERVISED = "supervised"

#: Fault modes the injection harness understands.
FAULT_CRASH = "crash"
FAULT_RAISE = "raise"
FAULT_STALL = "stall"
VALID_FAULT_MODES = (FAULT_CRASH, FAULT_RAISE, FAULT_STALL)

#: Environment variables for local chaos runs (see README "Fault tolerance").
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_STALL_SECONDS_ENV = "REPRO_FAULT_STALL_SECONDS"

#: Attempt-record backends (where a shard attempt actually ran).
BACKEND_POOLED = "pooled"
BACKEND_INLINE = "inline"
BACKEND_DEGRADED = "serial-degraded"

#: Attempt-record outcomes.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_CRASH = "crash"
OUTCOME_TIMEOUT = "timeout"


# -- deterministic fault injection ---------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at a (shard, task-position) coordinate.

    The spec fires on dispatch attempts ``0 .. fires-1`` of its shard and is
    silent afterwards — the supervisor increments
    :attr:`~repro.parallel.worker.ShardPayload.attempt` on every retry, so
    ``fires=1`` means "fail the first attempt, succeed on retry" and
    ``fires`` larger than the retry budget forces the degradation path.
    """

    shard: int
    position: int
    mode: str
    fires: int = 1
    stall_seconds: float = 30.0
    exit_code: int = 23

    def __post_init__(self) -> None:
        if self.mode not in VALID_FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}: valid modes are "
                + ", ".join(repr(mode) for mode in VALID_FAULT_MODES)
            )
        if self.shard < 0 or self.position < 0:
            raise ConfigurationError("fault coordinates must be non-negative")
        if self.fires < 1:
            raise ConfigurationError("a fault must fire at least once")
        if self.stall_seconds < 0:
            raise ConfigurationError("stall_seconds must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of planned faults, shipped inside each payload.

    Everything is decided from ``(shard, position, attempt)`` alone — no
    clocks, no randomness, no cross-process state — so a chaos scenario
    replays bit-identically, which is what lets the suite pin exact recovery
    behaviour.
    """

    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def spec_at(self, shard: int, position: int) -> FaultSpec | None:
        """The first spec planted at the given coordinate, if any."""
        for spec in self.specs:
            if spec.shard == shard and spec.position == position:
                return spec
        return None

    def trigger(self, shard: int, position: int, attempt: int) -> None:
        """Fire the planned fault for this coordinate/attempt, if any.

        Called by :func:`repro.parallel.worker.run_shard` before each task.
        ``crash`` exits the worker process without any cleanup (``os._exit``
        — the genuine SIGKILL-ish death the pool sees as a broken worker),
        ``raise`` throws :class:`InjectedFaultError`, ``stall`` sleeps past
        any sane shard timeout and then continues (so an *unenforced*
        timeout yields a slow-but-correct run, never a wrong one).
        """
        spec = self.spec_at(shard, position)
        if spec is None or attempt >= spec.fires:
            return
        if spec.mode == FAULT_CRASH:
            os._exit(spec.exit_code)
        if spec.mode == FAULT_RAISE:
            raise InjectedFaultError(shard, position, attempt)
        time.sleep(spec.stall_seconds)

    @classmethod
    def from_string(cls, text: str, stall_seconds: float = 30.0) -> "FaultPlan":
        """Parse ``mode:shard:position[:fires]`` entries separated by ``;``.

        The ``REPRO_FAULT_PLAN`` wire format, e.g.
        ``crash:0:0`` or ``raise:1:2:3;stall:0:1``.
        """
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) not in (3, 4):
                raise ConfigurationError(
                    f"bad fault entry {chunk!r}: expected mode:shard:position[:fires]"
                )
            try:
                shard, position = int(parts[1]), int(parts[2])
                fires = int(parts[3]) if len(parts) == 4 else 1
            except ValueError as exc:
                raise ConfigurationError(f"bad fault entry {chunk!r}: {exc}") from exc
            specs.append(
                FaultSpec(
                    shard=shard,
                    position=position,
                    mode=parts[0],
                    fires=fires,
                    stall_seconds=stall_seconds,
                )
            )
        if not specs:
            raise ConfigurationError(f"no fault entries in {text!r}")
        return cls(specs=tuple(specs))


def fault_plan_from_env(environ: Mapping[str, str] = os.environ) -> FaultPlan | None:
    """The :data:`FAULT_PLAN_ENV` plan, or ``None`` when chaos is off.

    Checked by :func:`repro.parallel.evaluate_tasks` on every dispatch, so
    ``REPRO_FAULT_PLAN="crash:0:0" python -m repro.experiments.runner
    figure6 --workers 2 --executor supervised`` is a complete local chaos
    run — no code changes, recovery visible in the dispatch summary.
    """
    text = environ.get(FAULT_PLAN_ENV, "").strip()
    if not text:
        return None
    stall = float(environ.get(FAULT_STALL_SECONDS_ENV, "30.0"))
    return FaultPlan.from_string(text, stall_seconds=stall)


def attach_fault_plan(
    payloads: Sequence[ShardPayload], plan: FaultPlan | None
) -> list[ShardPayload]:
    """The same payloads with ``plan`` riding along (a no-op for ``None``)."""
    if plan is None:
        return list(payloads)
    return [replace(payload, fault_plan=plan) for payload in payloads]


# -- supervision policy --------------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisionPolicy:
    """The knobs of one supervised dispatch.

    ``timeout`` is a per-shard wall-clock budget measured from the moment
    the shard reaches a worker — not from submission, so shards queued
    behind a saturated pool do not burn budget while waiting (``None``
    disables preemption); ``max_retries`` bounds re-dispatches
    *per shard* beyond the first attempt; the backoff before retry ``r``
    (1-based) is ``min(backoff_base * 2**(r-1), backoff_cap)`` stretched by
    up to ``jitter`` — the jitter is drawn from a generator seeded with
    ``(seed, shard, attempt)``, so it decorrelates shards without
    sacrificing replayability.  ``degrade=False`` turns the serial fallback
    into a :class:`~repro.exceptions.DispatchError` instead.
    """

    timeout: float | None = 30.0
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 17
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("timeout must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise ConfigurationError("backoff knobs must be non-negative")

    def backoff_seconds(self, shard: int, attempt: int) -> float:
        """Deterministic backoff before re-dispatching ``shard``'s ``attempt``-th retry."""
        if self.backoff_base <= 0:
            return 0.0
        base = min(self.backoff_base * (2 ** max(0, attempt - 1)), self.backoff_cap)
        # Seeding with a string routes through SHA-512, which is stable
        # across processes and runs (unlike hash(), which PYTHONHASHSEED
        # may randomise for strings).
        draw = random.Random(f"{self.seed}:{shard}:{attempt}").random()
        return base * (1.0 + self.jitter * draw)


def coerce_policy(supervision: "SupervisionPolicy | bool | None") -> "SupervisionPolicy | None":
    """Normalise the user-facing ``supervision=`` knob into a policy."""
    if supervision is None or supervision is False:
        return None
    if supervision is True:
        return SupervisionPolicy()
    if isinstance(supervision, SupervisionPolicy):
        return supervision
    raise ConfigurationError(
        f"supervision must be a SupervisionPolicy, True or None, got {supervision!r}"
    )


# -- structured reporting ------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardAttempt:
    """One dispatch attempt of one shard: where it ran, how it ended, how long."""

    shard: int
    attempt: int
    backend: str
    outcome: str
    seconds: float
    error: str = ""


@dataclass(frozen=True)
class DispatchReport:
    """What one supervised dispatch actually did, shard attempt by attempt.

    ``attempts`` is the complete chronology; ``rebuilds`` counts pool
    teardowns (crash or timeout triggered), ``reexported_segments`` counts
    shm segments the self-healing path recreated, ``degraded`` lists the
    shards that fell back to the serial executor after exhausting their
    retry budget.
    """

    n_shards: int
    attempts: tuple[ShardAttempt, ...] = ()
    rebuilds: int = 0
    reexported_segments: int = 0
    degraded: tuple[int, ...] = ()

    @property
    def n_attempts(self) -> int:
        """Total shard attempts, first tries included."""
        return len(self.attempts)

    @property
    def retries(self) -> int:
        """Attempts beyond each shard's first (degraded re-runs included)."""
        first_seen: set[int] = set()
        retries = 0
        for attempt in self.attempts:
            if attempt.shard in first_seen:
                retries += 1
            else:
                first_seen.add(attempt.shard)
        return retries

    @property
    def failures(self) -> tuple[ShardAttempt, ...]:
        """Every attempt that did not complete cleanly."""
        return tuple(a for a in self.attempts if a.outcome != OUTCOME_OK)

    @property
    def ok(self) -> bool:
        """``True`` when every shard's final attempt completed cleanly."""
        last: dict[int, ShardAttempt] = {}
        for attempt in self.attempts:
            last[attempt.shard] = attempt
        return len(last) == self.n_shards and all(
            a.outcome == OUTCOME_OK for a in last.values()
        )

    def shard_seconds(self) -> dict[int, float]:
        """Total wall-clock spent per shard, across all of its attempts."""
        totals: dict[int, float] = {}
        for attempt in self.attempts:
            totals[attempt.shard] = totals.get(attempt.shard, 0.0) + attempt.seconds
        return totals

    def format_summary(self) -> str:
        """One human-readable line for CLIs and logs."""
        verdict = "ok" if self.ok else "FAILED"
        return (
            f"dispatch [{verdict}]: {self.n_shards} shard(s), "
            f"{self.n_attempts} attempt(s) ({self.retries} retries), "
            f"{self.rebuilds} pool rebuild(s), "
            f"{self.reexported_segments} segment re-export(s), "
            f"{len(self.degraded)} degraded shard(s)"
        )


def summarise_reports(reports: Sequence[DispatchReport]) -> str:
    """Aggregate many dispatch reports (a whole figure suite) into one line."""
    if not reports:
        return "supervised dispatch: no dispatches recorded"
    return (
        f"supervised dispatch: {len(reports)} dispatch(es), "
        f"{sum(r.n_attempts for r in reports)} shard attempt(s) "
        f"({sum(r.retries for r in reports)} retries), "
        f"{sum(r.rebuilds for r in reports)} pool rebuild(s), "
        f"{sum(r.reexported_segments for r in reports)} segment re-export(s), "
        f"{sum(len(r.degraded) for r in reports)} degraded shard run(s)"
    )


@dataclass
class _ReportBuilder:
    """Mutable accumulator behind the frozen :class:`DispatchReport`."""

    attempts: list[ShardAttempt] = field(default_factory=list)
    rebuilds: int = 0
    reexported_segments: int = 0
    degraded: set[int] = field(default_factory=set)

    def record(
        self,
        shard: int,
        attempt: int,
        backend: str,
        outcome: str,
        seconds: float,
        error: object = None,
    ) -> None:
        self.attempts.append(
            ShardAttempt(
                shard=shard,
                attempt=attempt,
                backend=backend,
                outcome=outcome,
                seconds=seconds,
                error="" if error is None else repr(error),
            )
        )

    def build(self, n_shards: int) -> DispatchReport:
        return DispatchReport(
            n_shards=n_shards,
            attempts=tuple(self.attempts),
            rebuilds=self.rebuilds,
            reexported_segments=self.reexported_segments,
            degraded=tuple(sorted(self.degraded)),
        )


# -- the supervisor ------------------------------------------------------------------------------


def _rewrite_payload(payload: ShardPayload, mapping: dict[str, str]) -> ShardPayload:
    """A payload whose shm handles reference re-exported segments."""
    if not mapping:
        return payload
    factories = {
        key: rewrite_factory_handle(value, mapping)
        if isinstance(value, ShmFactoryHandle)
        else value
        for key, value in payload.factories.items()
    }
    tasks = tuple(
        replace(task, affinity_ref=rewrite_affinity_handle(task.affinity_ref, mapping))
        if isinstance(task.affinity_ref, ShmAffinityHandle)
        else task
        for task in payload.tasks
    )
    return replace(payload, factories=factories, tasks=tasks)


class SupervisedDispatch(ShardExecutor):
    """A fault-tolerant wrapper around any :class:`ShardExecutor`.

    Process-crossing inner executors get the full treatment — per-shard
    timeouts, retries, pool rebuilds, shm re-export, serial degradation.
    A wrapped :class:`ProcessShardExecutor` is normalised to a run-scoped
    persistent pool (same worker count, shut down before returning), so
    retries do not pay a pool spawn per attempt and the pool-per-call
    contract — no lingering workers — still holds.  In-process executors
    get retries and degradation only: preemptive timeouts need a process
    boundary, and a planned ``crash`` inside the parent is the caller's
    own foot-gun (the chaos suite injects crashes into pooled backends).

    ``registry`` is the shm registry whose segments the current payloads
    reference; :func:`repro.parallel.evaluate_tasks` assigns it for the
    duration of the call, which is what arms the self-healing re-export.
    ``owns_executor`` mirrors ``evaluate_tasks``'s ownership contract: a
    supervisor built around a caller's warm pool must not shut it down.
    """

    def __init__(
        self,
        executor: ShardExecutor,
        policy: SupervisionPolicy | None = None,
        registry: SharedArrayRegistry | None = None,
        owns_executor: bool = False,
    ) -> None:
        if isinstance(executor, SupervisedDispatch):
            raise ConfigurationError("supervisors do not nest: wrap the inner executor once")
        self.executor = executor
        self.policy = policy or SupervisionPolicy()
        self.registry = registry
        self.owns_executor = owns_executor
        self.last_report: DispatchReport | None = None

    @property
    def ships_payloads(self) -> bool:  # type: ignore[override]
        """Shipment crosses a process boundary iff the inner backend's does."""
        return self.executor.ships_payloads

    @property
    def warm(self) -> bool:
        """``True`` while the inner backend holds a live worker pool."""
        return bool(getattr(self.executor, "warm", False))

    def shutdown(self) -> None:
        """Release the inner executor's workers — only if this wrapper owns it."""
        if self.owns_executor:
            shutdown = getattr(self.executor, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "SupervisedDispatch":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- dispatch ------------------------------------------------------------------------

    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        if not payloads:
            self.last_report = DispatchReport(n_shards=0)
            return []
        builder = _ReportBuilder()
        try:
            if isinstance(self.executor, ProcessShardExecutor):
                pool = PersistentShardExecutor(self.executor.n_workers)
                try:
                    return self._run_pooled(pool, payloads, builder)
                finally:
                    pool.shutdown()
            if isinstance(self.executor, PersistentShardExecutor):
                return self._run_pooled(self.executor, payloads, builder)
            return self._run_inline(payloads, builder)
        finally:
            # The report survives failure too: a propagated error still
            # leaves the full attempt chronology on last_report.
            self.last_report = builder.build(len(payloads))

    # -- pooled tier ---------------------------------------------------------------------

    def _run_pooled(
        self,
        pool: PersistentShardExecutor,
        payloads: Sequence[ShardPayload],
        builder: _ReportBuilder,
    ) -> list[tuple[GroupRunRecord, ...]]:
        policy = self.policy
        results: list = [None] * len(payloads)
        pending: dict[int, ShardPayload] = dict(enumerate(payloads))
        attempts = {index: payload.attempt for index, payload in pending.items()}
        first_attempt = dict(attempts)
        while pending:
            executor_pool = pool.ensure_pool()
            submitted: dict[int, tuple] = {}
            failures: list[tuple[int, object]] = []
            needs_rebuild = False
            for index, payload in sorted(pending.items()):
                try:
                    submitted[index] = (
                        executor_pool.submit(run_shard, payload),
                        time.perf_counter(),
                    )
                except BrokenProcessPool:
                    # The pool broke under an earlier submit of this round.
                    shard = payload.shard_index
                    error = WorkerCrashError(shard, "pool broke before submission")
                    builder.record(
                        shard, attempts[index], BACKEND_POOLED, OUTCOME_CRASH, 0.0, error
                    )
                    failures.append((index, error))
                    needs_rebuild = True
            for index, (future, started) in submitted.items():
                shard = pending[index].shard_index
                # The timeout budget is measured from the moment collection
                # *reaches* this future, not from submission.  Futures are
                # collected in submission order over a FIFO pool, so by the
                # time the loop gets here every earlier shard has resolved
                # and this shard is executing (or finished) — a shard queued
                # behind a saturated pool no longer burns its wall-clock
                # budget while waiting for a worker, which under concurrent
                # dispatches used to time out shards that never got to run.
                budget = policy.timeout
                try:
                    records = future.result(timeout=budget)
                except FutureTimeoutError:
                    elapsed = time.perf_counter() - started
                    error = ShardTimeoutError(shard, policy.timeout)
                    builder.record(
                        shard, attempts[index], BACKEND_POOLED, OUTCOME_TIMEOUT, elapsed, error
                    )
                    failures.append((index, error))
                    needs_rebuild = True  # the wedged worker must die
                except BrokenProcessPool as exc:
                    elapsed = time.perf_counter() - started
                    error = WorkerCrashError(shard, str(exc))
                    builder.record(
                        shard, attempts[index], BACKEND_POOLED, OUTCOME_CRASH, elapsed, error
                    )
                    failures.append((index, error))
                    needs_rebuild = True
                except Exception as exc:
                    elapsed = time.perf_counter() - started
                    builder.record(
                        shard, attempts[index], BACKEND_POOLED, OUTCOME_ERROR, elapsed, exc
                    )
                    failures.append((index, exc))
                else:
                    elapsed = time.perf_counter() - started
                    builder.record(shard, attempts[index], BACKEND_POOLED, OUTCOME_OK, elapsed)
                    results[index] = records
                    del pending[index]
            if needs_rebuild:
                # Self-heal: discard the poisoned pool without blocking on
                # wedged workers; the next round's ensure_pool() rebuilds.
                pool.kill()
                builder.rebuilds += 1
            if failures:
                # Cheap even without a rebuild: one probe attach per owned
                # segment, re-exporting (and rewriting pending handles for)
                # anything that vanished with the dead workers.
                mapping = self._heal_segments(builder)
                if mapping:
                    pending = {
                        index: _rewrite_payload(payload, mapping)
                        for index, payload in pending.items()
                    }
                    if not needs_rebuild:
                        # Retry workers must fork *after* the re-export so
                        # they inherit ownership of the fresh segments (a
                        # pre-fork worker's attach would unregister them
                        # from the fork-shared resource tracker).
                        pool.kill()
                        builder.rebuilds += 1
            backoff = 0.0
            for index, error in failures:
                attempts[index] += 1
                performed = attempts[index] - first_attempt[index]
                if performed > policy.max_retries:
                    payload = pending.pop(index)
                    results[index] = self._degrade(payload, attempts[index], builder, error)
                else:
                    pending[index] = replace(pending[index], attempt=attempts[index])
                    backoff = max(
                        backoff, policy.backoff_seconds(pending[index].shard_index, performed)
                    )
            if pending and backoff > 0:
                time.sleep(backoff)
        return results

    # -- inline tier ---------------------------------------------------------------------

    def _run_inline(
        self, payloads: Sequence[ShardPayload], builder: _ReportBuilder
    ) -> list[tuple[GroupRunRecord, ...]]:
        policy = self.policy
        results = []
        for payload in payloads:
            attempt = payload.attempt
            current = payload
            while True:
                started = time.perf_counter()
                try:
                    if isinstance(self.executor, SerialShardExecutor):
                        records = run_shard(current)
                    else:
                        (records,) = self.executor.run([current])
                except Exception as exc:
                    elapsed = time.perf_counter() - started
                    builder.record(
                        current.shard_index, attempt, BACKEND_INLINE, OUTCOME_ERROR, elapsed, exc
                    )
                    attempt += 1
                    performed = attempt - payload.attempt
                    if performed > policy.max_retries:
                        records = self._degrade(current, attempt, builder, exc)
                        results.append(records)
                        break
                    backoff = policy.backoff_seconds(current.shard_index, performed)
                    if backoff > 0:
                        time.sleep(backoff)
                    current = replace(current, attempt=attempt)
                else:
                    elapsed = time.perf_counter() - started
                    builder.record(
                        current.shard_index, attempt, BACKEND_INLINE, OUTCOME_OK, elapsed
                    )
                    results.append(records)
                    break
        return results

    # -- recovery helpers ----------------------------------------------------------------

    def _heal_segments(self, builder: _ReportBuilder) -> dict[str, str]:
        """Re-export vanished shm segments; ``{old: new}`` for payload rewriting."""
        if self.registry is None or self.registry.closed:
            return {}
        mapping = self.registry.reexport_missing()
        builder.reexported_segments += len(mapping)
        return mapping

    def _degrade(
        self,
        payload: ShardPayload,
        attempt: int,
        builder: _ReportBuilder,
        cause: object,
    ) -> tuple[GroupRunRecord, ...]:
        """Last resort: the failing shard, serially, in-process.

        Bit-identical to a pooled success by the architecture invariant
        (same ``run_shard``, same FP order, merge untouched).  The fault
        plan is stripped first — degradation must be able to succeed, and a
        planned ``os._exit`` must never fire in the parent process.
        """
        shard = payload.shard_index
        if not self.policy.degrade:
            builder.degraded.add(shard)
            error = DispatchError(
                f"shard {shard} failed after {attempt} attempt(s) and degradation is disabled"
            )
            raise error from (cause if isinstance(cause, BaseException) else None)
        stripped = replace(payload, fault_plan=None, attempt=attempt)
        started = time.perf_counter()
        try:
            records = run_shard(stripped)
        except Exception as exc:
            builder.record(
                shard,
                attempt,
                BACKEND_DEGRADED,
                OUTCOME_ERROR,
                time.perf_counter() - started,
                exc,
            )
            builder.degraded.add(shard)
            raise
        builder.record(
            shard, attempt, BACKEND_DEGRADED, OUTCOME_OK, time.perf_counter() - started
        )
        builder.degraded.add(shard)
        return records


# -- executor registration -----------------------------------------------------------------------
# "supervised" = a SupervisedDispatch around a fresh persistent pool with the
# default policy.  Like "persistent", resolving the string builds a fresh
# instance; warmth across calls requires holding the instance (the
# ScalabilityEnvironment wraps its own memoised pool instead).

register_executor(
    EXECUTOR_SUPERVISED,
    lambda n_workers: SupervisedDispatch(
        PersistentShardExecutor(n_workers), owns_executor=True
    ),
    needs_workers=True,
)
