"""Social-graph substrate: friendships and timestamped page likes.

The paper computes affinities from a Facebook application (Section 4.1.2):

* **Static affinity** uses friendship, which is "relatively stable over
  time": ``aff_S(u, u') = |friends(u) ∩ friends(u')|`` (normalised per group).
* **Dynamic affinity** uses page likes: for every liked page the application
  records *when* it was liked and its *category* (197 categories exist on
  Facebook).  The periodic affinity of a pair in period ``p`` is the number of
  common liked categories during ``p``.

This module provides the data structures holding that information
(:class:`SocialNetwork`) and a configurable generator
(:class:`SocialNetworkGenerator`) that synthesises community-structured
friendship graphs and per-period like behaviour with controllable affinity
strength and drift — the substitution for the real Facebook data documented
in DESIGN.md §5.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.timeline import Period, Timeline
from repro.exceptions import ConfigurationError, DataError

#: Facebook exposes 197 page categories (paper, Section 4.1.2).
N_PAGE_CATEGORIES = 197


@dataclass(frozen=True)
class PageLike:
    """A user liking a page of some category at a point in time."""

    user_id: int
    category: int
    timestamp: int

    def __post_init__(self) -> None:
        if not (0 <= self.category < N_PAGE_CATEGORIES):
            raise DataError(
                f"page category {self.category} outside [0, {N_PAGE_CATEGORIES})"
            )


class SocialNetwork:
    """Friendship graph plus timestamped page-like history.

    Parameters
    ----------
    users:
        The user ids covered by the network.
    friendships:
        Unordered user-id pairs.  Self-friendships are rejected; duplicate
        pairs are collapsed.
    page_likes:
        The page-like events.
    """

    def __init__(
        self,
        users: Iterable[int],
        friendships: Iterable[tuple[int, int]] = (),
        page_likes: Iterable[PageLike] = (),
    ) -> None:
        self._users = tuple(sorted(set(users)))
        user_set = set(self._users)
        self._friends: dict[int, set[int]] = {user: set() for user in self._users}
        for left, right in friendships:
            if left == right:
                raise DataError(f"user {left} cannot be friends with themselves")
            if left not in user_set or right not in user_set:
                raise DataError(f"friendship ({left}, {right}) references unknown users")
            self._friends[left].add(right)
            self._friends[right].add(left)
        self._likes: list[PageLike] = []
        self._likes_by_user: dict[int, list[PageLike]] = defaultdict(list)
        for like in page_likes:
            if like.user_id not in user_set:
                raise DataError(f"page like references unknown user {like.user_id}")
            self._likes.append(like)
            self._likes_by_user[like.user_id].append(like)

    # -- accessors ----------------------------------------------------------------

    @property
    def users(self) -> tuple[int, ...]:
        """All user ids in the network."""
        return self._users

    @property
    def page_likes(self) -> tuple[PageLike, ...]:
        """All page-like events."""
        return tuple(self._likes)

    def friends(self, user_id: int) -> frozenset[int]:
        """The friends of ``user_id``."""
        if user_id not in self._friends:
            raise DataError(f"unknown user {user_id}")
        return frozenset(self._friends[user_id])

    def are_friends(self, left: int, right: int) -> bool:
        """Return ``True`` if the two users are friends."""
        return right in self._friends.get(left, set())

    def common_friends(self, left: int, right: int) -> int:
        """``|friends(left) ∩ friends(right)|`` — the raw static affinity."""
        return len(self.friends(left) & self.friends(right))

    def likes_of(self, user_id: int, period: Period | None = None) -> list[PageLike]:
        """Page likes of a user, optionally restricted to a period."""
        likes = self._likes_by_user.get(user_id, [])
        if period is None:
            return list(likes)
        return [like for like in likes if period.contains(like.timestamp)]

    def liked_categories(self, user_id: int, period: Period) -> frozenset[int]:
        """``page_likes(u, p)``: categories liked by ``user_id`` during ``period``."""
        return frozenset(like.category for like in self.likes_of(user_id, period))

    def common_category_likes(self, left: int, right: int, period: Period) -> int:
        """The paper's periodic affinity ``aff_P``: common liked categories in ``period``."""
        return len(self.liked_categories(left, period) & self.liked_categories(right, period))

    def non_empty_period_fraction(self, timeline: Timeline) -> float:
        """Fraction of (user, period) cells that contain at least one like.

        This is the quantity plotted in Figure 4 ("% of non-empty periods"):
        finer discretisations leave more periods without any like activity.
        """
        if not self._users:
            return 0.0
        non_empty = 0
        total = 0
        for user in self._users:
            for period in timeline:
                total += 1
                if self.liked_categories(user, period):
                    non_empty += 1
        return non_empty / total if total else 0.0

    def friendship_pairs(self) -> tuple[tuple[int, int], ...]:
        """Every friendship edge as a canonical ``(smaller, larger)`` pair."""
        return tuple(
            sorted(
                (left, right)
                for left in self._users
                for right in self._friends[left]
                if left < right
            )
        )

    def with_likes(self, new_likes: Iterable[PageLike]) -> "SocialNetwork":
        """A new network with ``new_likes`` appended — the affinity-delta path.

        The friendship graph is carried over unchanged (the paper treats
        friendship as "relatively stable over time", §4.1.2) and like order
        is preserved old-then-new, so the result is state-identical to
        rebuilding the network with the concatenated like history.  Likes
        referencing unknown users raise the constructor's usual
        :class:`~repro.exceptions.DataError`.
        """
        return SocialNetwork(
            self._users,
            self.friendship_pairs(),
            list(self._likes) + list(new_likes),
        )

    def restrict(self, user_ids: Iterable[int]) -> "SocialNetwork":
        """A sub-network containing only ``user_ids`` and their internal edges."""
        keep = set(user_ids)
        friendships = [
            (left, right)
            for left in keep
            for right in self._friends.get(left, set())
            if right in keep and left < right
        ]
        likes = [like for like in self._likes if like.user_id in keep]
        return SocialNetwork(keep & set(self._users), friendships, likes)


@dataclass(frozen=True)
class SocialConfig:
    """Configuration of :class:`SocialNetworkGenerator`.

    Attributes
    ----------
    n_communities:
        Users are partitioned into communities; within-community friendship
        and co-liking probabilities are much higher than across communities,
        which creates the high/low-affinity structure the paper's group
        formation relies on.
    intra_friend_prob / inter_friend_prob:
        Probability of a friendship edge within / across communities.
    likes_per_period:
        Expected number of page likes per user per period.
    like_activity_drop:
        Probability that a user is silent in a given period (creates the
        empty periods of Figure 4).
    drift_strength:
        Controls how strongly a pair's common-like behaviour trends up or
        down over the timeline, producing increasing/decreasing affinities.
    """

    n_communities: int = 4
    intra_friend_prob: float = 0.6
    inter_friend_prob: float = 0.05
    likes_per_period: float = 6.0
    like_activity_drop: float = 0.2
    n_categories: int = N_PAGE_CATEGORIES
    categories_per_community: int = 25
    drift_strength: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_communities <= 0:
            raise ConfigurationError("n_communities must be positive")
        for name in ("intra_friend_prob", "inter_friend_prob", "like_activity_drop"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be a probability, got {value}")
        if self.likes_per_period < 0:
            raise ConfigurationError("likes_per_period must be non-negative")
        if not (0 < self.categories_per_community <= self.n_categories):
            raise ConfigurationError(
                "categories_per_community must be in (0, n_categories]"
            )


class SocialNetworkGenerator:
    """Generate community-structured social networks with temporal like drift."""

    def __init__(self, config: SocialConfig | None = None) -> None:
        self.config = config or SocialConfig()

    def generate(self, users: Sequence[int], timeline: Timeline) -> SocialNetwork:
        """Generate a network over ``users`` with likes spread across ``timeline``.

        Users are assigned round-robin to communities.  Each community owns a
        pool of preferred page categories; members like mostly from that pool,
        which makes within-community periodic affinities high.  A per-pair
        drift factor makes some pairs' co-liking increase over periods and
        others' decrease, exercising both signs of the affinity drift.
        """
        config = self.config
        rng = random.Random(config.seed)
        users = list(users)
        if len(users) < 2:
            raise ConfigurationError("need at least two users to build a social network")

        community_of = {user: index % config.n_communities for index, user in enumerate(users)}

        friendships: list[tuple[int, int]] = []
        for i, left in enumerate(users):
            for right in users[i + 1 :]:
                same = community_of[left] == community_of[right]
                prob = config.intra_friend_prob if same else config.inter_friend_prob
                if rng.random() < prob:
                    friendships.append((left, right))

        category_pools = self._category_pools(rng)

        # Per-user drift slope in [-1, 1]: positive means the user becomes more
        # active/aligned with its community pool over time, negative less.
        drift_of = {user: rng.uniform(-1.0, 1.0) * config.drift_strength for user in users}

        likes: list[PageLike] = []
        n_periods = len(timeline)
        for user in users:
            pool = category_pools[community_of[user]]
            for index, period in enumerate(timeline):
                progress = index / max(1, n_periods - 1)
                activity = config.likes_per_period * (1.0 + drift_of[user] * (progress - 0.5))
                activity = max(0.0, activity)
                if rng.random() < config.like_activity_drop:
                    continue
                count = self._poisson(rng, activity)
                for _ in range(count):
                    if rng.random() < 0.75:
                        category = rng.choice(pool)
                    else:
                        category = rng.randrange(config.n_categories)
                    timestamp = rng.randint(period.start, period.end)
                    likes.append(PageLike(user, category, timestamp))

        return SocialNetwork(users, friendships, likes)

    # -- helpers ------------------------------------------------------------------

    def _category_pools(self, rng: random.Random) -> list[list[int]]:
        """One preferred-category pool per community (pools may overlap)."""
        pools = []
        for _ in range(self.config.n_communities):
            pool = rng.sample(range(self.config.n_categories), self.config.categories_per_community)
            pools.append(pool)
        return pools

    @staticmethod
    def _poisson(rng: random.Random, lam: float) -> int:
        """Sample a Poisson variate with the Knuth method (small lambda only)."""
        if lam <= 0.0:
            return 0
        import math

        threshold = math.exp(-lam)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count
