"""Vectorised scoring of items for a group.

Both the naive full-scan baseline and GRECA's bound maintenance need to score
*every* item for *every* group member.  Doing this item-by-item in Python is
prohibitively slow for MovieLens-scale item counts, so this module provides
numpy implementations operating on member-by-item matrices:

* :func:`preference_matrix` — the affinity-aware member preferences
  ``pref = apref + AFF @ apref`` (Section 2.2, in matrix form).
* :func:`consensus_scores` — exact consensus scores for all items at once.
* :func:`consensus_bounds` — sound lower/upper consensus bounds when the
  member preferences are themselves only known as ``[lb, ub]`` matrices
  (GRECA's partial knowledge).

The scalar implementations in :mod:`repro.core.consensus` remain the
reference semantics; the property-based tests check that the vectorised
versions agree with them.
"""

from __future__ import annotations

import numpy as np

from repro.core.consensus import (
    AGGREGATION_AVERAGE,
    AGGREGATION_LEAST_MISERY,
    DISAGREEMENT_NONE,
    DISAGREEMENT_PAIRWISE,
    DISAGREEMENT_VARIANCE,
    ConsensusFunction,
)
from repro.exceptions import AlgorithmError, ConsensusError


def preference_matrix(apref: np.ndarray, affinity: np.ndarray) -> np.ndarray:
    """Member-by-item matrix of overall preferences ``pref(u, i, G, p)``.

    Parameters
    ----------
    apref:
        ``(n_members, n_items)`` matrix of absolute preferences.
    affinity:
        ``(n_members, n_members)`` symmetric matrix of pairwise affinities
        with a zero diagonal (a member has no affinity term with themselves).

    Returns
    -------
    numpy.ndarray
        ``pref = apref + affinity @ apref`` — row ``u`` holds
        ``apref(u, i) + sum_{v != u} aff(u, v) * apref(v, i)`` for every item.
    """
    apref = np.asarray(apref, dtype=float)
    affinity = np.asarray(affinity, dtype=float)
    if apref.ndim != 2:
        raise AlgorithmError("apref must be a 2-D (members x items) matrix")
    n_members = apref.shape[0]
    if affinity.shape != (n_members, n_members):
        raise AlgorithmError(
            f"affinity matrix shape {affinity.shape} does not match {n_members} members"
        )
    if np.any(np.abs(np.diagonal(affinity)) > 1e-12):
        raise AlgorithmError("the affinity matrix must have a zero diagonal")
    return apref + affinity @ apref


def _pairwise_disagreement_matrix(prefs: np.ndarray) -> np.ndarray:
    """Average pairwise |difference| across members, per item (vectorised)."""
    n_members = prefs.shape[0]
    if n_members == 1:
        return np.zeros(prefs.shape[1])
    total = np.zeros(prefs.shape[1])
    for left in range(n_members):
        for right in range(left + 1, n_members):
            total += np.abs(prefs[left] - prefs[right])
    return 2.0 * total / (n_members * (n_members - 1))


def consensus_scores(
    consensus: ConsensusFunction, prefs: np.ndarray, scale: float
) -> np.ndarray:
    """Exact consensus scores for every item.

    Parameters
    ----------
    consensus:
        The consensus function to apply.
    prefs:
        ``(n_members, n_items)`` member preference matrix.
    scale:
        Normalisation constant (maximum possible member preference).
    """
    if scale <= 0:
        raise ConsensusError("scale must be positive")
    prefs = np.asarray(prefs, dtype=float) / scale

    if consensus.aggregation == AGGREGATION_AVERAGE:
        gpref = prefs.mean(axis=0)
    elif consensus.aggregation == AGGREGATION_LEAST_MISERY:
        gpref = prefs.min(axis=0)
    else:  # pragma: no cover - guarded by ConsensusFunction validation
        raise ConsensusError(f"unknown aggregation {consensus.aggregation!r}")

    if consensus.w2 == 0.0:
        return consensus.w1 * gpref

    if consensus.disagreement == DISAGREEMENT_PAIRWISE:
        dis = _pairwise_disagreement_matrix(prefs)
    elif consensus.disagreement == DISAGREEMENT_VARIANCE:
        dis = prefs.var(axis=0)
    elif consensus.disagreement == DISAGREEMENT_NONE:
        dis = np.zeros(prefs.shape[1])
    else:  # pragma: no cover - guarded by ConsensusFunction validation
        raise ConsensusError(f"unknown disagreement {consensus.disagreement!r}")

    return consensus.w1 * gpref + consensus.w2 * (1.0 - dis)


def consensus_bounds(
    consensus: ConsensusFunction,
    pref_lower: np.ndarray,
    pref_upper: np.ndarray,
    scale: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Sound lower/upper consensus bounds for every item.

    ``pref_lower`` / ``pref_upper`` are ``(n_members, n_items)`` matrices
    bounding each member's preference for each item.  The returned pair of
    ``(n_items,)`` arrays brackets the exact consensus score of every item.
    """
    if scale <= 0:
        raise ConsensusError("scale must be positive")
    lower = np.asarray(pref_lower, dtype=float) / scale
    upper = np.asarray(pref_upper, dtype=float) / scale
    if lower.shape != upper.shape:
        raise AlgorithmError("pref_lower and pref_upper must have the same shape")
    if np.any(lower > upper + 1e-9):
        raise AlgorithmError("pref_lower exceeds pref_upper for some (member, item)")

    if consensus.aggregation == AGGREGATION_AVERAGE:
        gpref_low = lower.mean(axis=0)
        gpref_high = upper.mean(axis=0)
    else:
        gpref_low = lower.min(axis=0)
        gpref_high = upper.min(axis=0)

    if consensus.w2 == 0.0:
        return consensus.w1 * gpref_low, consensus.w1 * gpref_high

    n_members = lower.shape[0]
    if consensus.disagreement == DISAGREEMENT_PAIRWISE:
        dis_low = np.zeros(lower.shape[1])
        dis_high = np.zeros(lower.shape[1])
        for left in range(n_members):
            for right in range(left + 1, n_members):
                high = np.maximum(
                    np.maximum(upper[left] - lower[right], upper[right] - lower[left]),
                    0.0,
                )
                low = np.maximum(
                    np.maximum(lower[left] - upper[right], lower[right] - upper[left]),
                    0.0,
                )
                dis_high += high
                dis_low += low
        if n_members > 1:
            factor = 2.0 / (n_members * (n_members - 1))
            dis_low *= factor
            dis_high *= factor
    elif consensus.disagreement == DISAGREEMENT_VARIANCE:
        # Conservative bounds: variance can always shrink to 0 when intervals
        # overlap; the upper bound pushes each member to the extreme farther
        # from the midpoint of the combined range (see bounds.interval_variance).
        overall_low = lower.min(axis=0)
        overall_high = upper.max(axis=0)
        midpoint = 0.5 * (overall_low + overall_high)
        use_low = np.abs(lower - midpoint) >= np.abs(upper - midpoint)
        extremes = np.where(use_low, lower, upper)
        dis_high = extremes.var(axis=0)
        dis_low = np.zeros(lower.shape[1])
    else:
        dis_low = np.zeros(lower.shape[1])
        dis_high = np.zeros(lower.shape[1])

    f_low = consensus.w1 * gpref_low + consensus.w2 * (1.0 - dis_high)
    f_high = consensus.w1 * gpref_high + consensus.w2 * (1.0 - dis_low)
    return f_low, f_high


def default_scale(max_apref: float, n_members: int) -> float:
    """The normalisation constant mapping member preferences into [0, 1].

    With affinities normalised into [0, 1] a member's preference is at most
    ``max_apref * n_members`` (their own absolute preference plus up to
    ``n_members - 1`` affinity-weighted contributions).
    """
    if max_apref <= 0:
        raise ConsensusError("max_apref must be positive")
    if n_members <= 0:
        raise ConsensusError("n_members must be positive")
    return max_apref * n_members
