"""Movie night: how consensus functions and time change a group's list.

Scenario from the paper's introduction: the same user enjoys different movies
in different company, and her appreciation evolves over time as affinities
drift.  This example builds the synthetic Facebook-style study cohort,
forms one *similar* and one *dissimilar* group, and shows how:

* the three consensus functions (AP, MO, PD) trade off group preference
  against disagreement, and
* the recommendation changes between an early period and the most recent one
  as the members' affinities drift.

Run with::

    python examples/movie_night.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import GroupRecommender, one_year_timeline
from repro.data import MovieLensConfig, StudyConfig, build_study_cohort, generate_movielens_like
from repro.groups import GroupFormer, group_cohesiveness


def show(title: str, recommendation) -> None:
    print(f"\n{title}")
    for item, score in recommendation.ranked():
        print(f"  movie {item:>5}  score {score:.3f}")


def main() -> None:
    base = generate_movielens_like(
        MovieLensConfig(n_users=300, n_items=400, n_ratings=15_000, seed=8)
    )
    timeline = one_year_timeline(granularity="two-month")
    cohort = build_study_cohort(base, timeline, StudyConfig(seed=8))
    print(f"study cohort: {cohort.n_participants} participants, "
          f"{len(cohort.ratings)} ratings over {len(cohort.popular_set)} popular movies")

    recommender = GroupRecommender(
        cohort.ratings, cohort.social, timeline, affinity_universe=cohort.participants
    ).fit()

    former = GroupFormer(cohort.ratings, candidates=cohort.participants, seed=8)
    similar_group = former.similar_group(4)
    dissimilar_group = former.dissimilar_group(4)
    print(f"\nsimilar group {similar_group} "
          f"(cohesiveness {group_cohesiveness(cohort.ratings, similar_group):.2f})")
    print(f"dissimilar group {dissimilar_group} "
          f"(cohesiveness {group_cohesiveness(cohort.ratings, dissimilar_group):.2f})")

    # Consensus functions on the dissimilar group: PD explicitly penalises
    # items the members disagree on, MO protects the least happy member.
    for consensus in ("AP", "MO", "PD"):
        result = recommender.recommend(
            dissimilar_group, k=5, consensus=consensus, affinity="discrete", exclude_rated=False
        )
        show(f"dissimilar group, {consensus} consensus:", result)

    # Temporal drift: the same group, the same consensus, but queried at the
    # first period vs the latest one — the drifting affinities re-rank items.
    early = recommender.recommend(
        similar_group, k=5, consensus="AP", affinity="discrete",
        period=timeline[0], exclude_rated=False,
    )
    late = recommender.recommend(
        similar_group, k=5, consensus="AP", affinity="discrete",
        period=timeline.current, exclude_rated=False,
    )
    show("similar group at the first period (little affinity history):", early)
    show("similar group at the latest period (full affinity history):", late)
    changed = [item for item in late.items if item not in early.items]
    print(f"\n{len(changed)} of 5 recommended movies changed between the two periods "
          f"(re-ranking happens when the group's affinities drift enough to matter).")


if __name__ == "__main__":
    main()
