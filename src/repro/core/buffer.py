"""Candidate buffer used by GRECA (Section 3.2, "Buffer Management Strategy").

The buffer holds every item encountered so far together with its current
lower- and upper-bound consensus scores.  GRECA's novel termination condition
is expressed purely in terms of the buffer: it can stop as soon as the buffer
holds at least ``k`` items and the ``k``-th largest lower bound is no smaller
than the upper bound of every other buffered item (and, to also rule out
items never encountered, no smaller than the global threshold).

Storage is *columnar*: :class:`ColumnarCandidateBuffer` keeps one contiguous
float64 array per bound plus an item registry, so bulk refreshes are single
array assignments and the ranking queries (``k``-th lower bound, buffer
condition, top-k) run as vectorised selections — ``np.argpartition`` for the
``k``-th order statistic, ``np.lexsort`` with a cached ``repr`` tie-break
ranking when the full deterministic order is needed.  :class:`CandidateBuffer`
remains as a thin compatibility façade with the original per-item dict-style
API, delegating all storage and queries to the columnar buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.lists import repr_tie_break_ranks
from repro.exceptions import AlgorithmError

_TOLERANCE = 1e-9


def _validate_bounds(item: Hashable, lower: float, upper: float) -> None:
    """Reject inverted bound pairs (single source of the invariant)."""
    if lower > upper + _TOLERANCE:
        raise AlgorithmError(
            f"item {item!r}: lower bound {lower} exceeds upper bound {upper}"
        )


@dataclass(frozen=True)
class BufferedItem:
    """An item with its current score bounds."""

    item: Hashable
    lower: float
    upper: float

    def __post_init__(self) -> None:
        _validate_bounds(self.item, self.lower, self.upper)


class ColumnarCandidateBuffer:
    """Numpy-backed store of ``[lower, upper]`` consensus bounds per item.

    Items are registered in slots (insertion order); bounds live in parallel
    float64 arrays that grow geometrically.  A slot can be deactivated
    (pruned) and later reactivated by a fresh update.  Deterministic ordering
    follows the paper's reproduction convention: decreasing lower bound with
    ties broken by ``repr(item)``; the ``repr`` ranking is cached and only
    recomputed when the set of registered items changes.
    """

    def __init__(
        self, items: Sequence[Hashable] = (), repr_rank: np.ndarray | None = None
    ) -> None:
        self._items: list[Hashable] = list(items)
        self._slot_of: dict[Hashable, int] = {
            item: slot for slot, item in enumerate(self._items)
        }
        if len(self._slot_of) != len(self._items):
            raise AlgorithmError("buffer items must be distinct")
        capacity = max(8, len(self._items))
        self._lower = np.empty(capacity, dtype=float)
        self._upper = np.empty(capacity, dtype=float)
        self._active = np.zeros(capacity, dtype=bool)
        # Optionally seeded with a precomputed repr ranking of `items` (e.g.
        # shared with the engine's list builder); recomputed lazily otherwise.
        self._repr_rank: np.ndarray | None = None
        if repr_rank is not None:
            if len(repr_rank) != len(self._items):
                raise AlgorithmError("repr_rank must cover the registered items")
            self._repr_rank = np.asarray(repr_rank, dtype=np.int64)

    # -- storage -------------------------------------------------------------------------

    def _register(self, item: Hashable) -> int:
        slot = self._slot_of.get(item)
        if slot is not None:
            return slot
        slot = len(self._items)
        if slot >= len(self._lower):
            grow = max(2 * len(self._lower), slot + 1)
            for name in ("_lower", "_upper", "_active"):
                old = getattr(self, name)
                fresh = np.zeros(grow, dtype=old.dtype) if old.dtype == bool else np.empty(grow, dtype=old.dtype)
                fresh[: len(old)] = old
                setattr(self, name, fresh)
        self._items.append(item)
        self._slot_of[item] = slot
        self._active[slot] = False
        self._repr_rank = None  # item set changed: tie-break ranking is stale
        return slot

    def _ranks(self) -> np.ndarray:
        if self._repr_rank is None or len(self._repr_rank) != len(self._items):
            self._repr_rank = repr_tie_break_ranks(self._items)
        return self._repr_rank

    def _active_slots(self) -> np.ndarray:
        return np.flatnonzero(self._active[: len(self._items)])

    def _ordered_slots(self) -> np.ndarray:
        """Active slots by decreasing lower bound, ties by ``repr(item)``."""
        slots = self._active_slots()
        if slots.size == 0:
            return slots
        order = np.lexsort((self._ranks()[slots], -self._lower[slots]))
        return slots[order]

    # -- container protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return int(self._active[: len(self._items)].sum())

    def __contains__(self, item: Hashable) -> bool:
        slot = self._slot_of.get(item)
        return slot is not None and bool(self._active[slot])

    def __iter__(self) -> Iterator[BufferedItem]:
        for slot in self._active_slots():
            yield BufferedItem(
                self._items[slot], float(self._lower[slot]), float(self._upper[slot])
            )

    # -- updates -------------------------------------------------------------------------

    def update(self, item: Hashable, lower: float, upper: float) -> None:
        """Insert or refresh the bounds of one item."""
        _validate_bounds(item, lower, upper)
        slot = self._register(item)
        self._lower[slot] = lower
        self._upper[slot] = upper
        self._active[slot] = True

    def update_many(self, bounds: Mapping[Hashable, tuple[float, float]]) -> None:
        """Bulk insert/refresh from ``{item: (lower, upper)}``."""
        for item, (lower, upper) in bounds.items():
            self.update(item, lower, upper)

    def replace_bounds(
        self, lower: np.ndarray, upper: np.ndarray, active: np.ndarray
    ) -> None:
        """Wholesale refresh against the registered item universe.

        ``lower`` / ``upper`` / ``active`` are arrays over the registration
        order of *all* known items — the fast path for engines that maintain
        bounds for a fixed catalogue and refresh every buffered item at once.
        """
        size = len(self._items)
        if lower.shape != (size,) or upper.shape != (size,) or active.shape != (size,):
            raise AlgorithmError("replace_bounds arrays must cover the registered items")
        if bool(np.any(lower[active] > upper[active] + _TOLERANCE)):
            worst = int(np.flatnonzero(active)[np.argmax((lower - upper)[active])])
            _validate_bounds(self._items[worst], float(lower[worst]), float(upper[worst]))
        self._lower[:size] = lower
        self._upper[:size] = upper
        self._active[:size] = active

    def remove(self, items: Iterable[Hashable]) -> None:
        """Drop items that have been pruned."""
        for item in items:
            slot = self._slot_of.get(item)
            if slot is not None:
                self._active[slot] = False

    # -- queries -------------------------------------------------------------------------

    def get(self, item: Hashable) -> BufferedItem | None:
        """The buffered record of ``item`` or ``None``."""
        slot = self._slot_of.get(item)
        if slot is None or not self._active[slot]:
            return None
        return BufferedItem(item, float(self._lower[slot]), float(self._upper[slot]))

    def ranked_by_lower_bound(self) -> list[BufferedItem]:
        """All buffered items sorted by decreasing lower bound (ties by item repr)."""
        return [
            BufferedItem(self._items[slot], float(self._lower[slot]), float(self._upper[slot]))
            for slot in self._ordered_slots()
        ]

    def top_k(self, k: int) -> list[BufferedItem]:
        """The ``k`` buffered items with the highest lower bounds."""
        if k <= 0:
            raise AlgorithmError("k must be positive")
        slots = self._active_slots()
        if slots.size > k:
            # Preselect ~k candidates with argpartition, keeping every tie of
            # the k-th value so the deterministic repr tie-break stays exact.
            kth = -np.partition(-self._lower[slots], k - 1)[k - 1]
            slots = slots[self._lower[slots] >= kth]
        order = np.lexsort((self._ranks()[slots], -self._lower[slots]))
        return [
            BufferedItem(self._items[slot], float(self._lower[slot]), float(self._upper[slot]))
            for slot in slots[order][:k]
        ]

    def kth_lower_bound(self, k: int) -> float | None:
        """Lower bound of the ``k``-th ranked item (``None`` if fewer than ``k`` items)."""
        slots = self._active_slots()
        if slots.size < k:
            return None
        return float(-np.partition(-self._lower[slots], k - 1)[k - 1])

    def satisfies_buffer_condition(self, k: int, tolerance: float = _TOLERANCE) -> bool:
        """GRECA's buffer termination test.

        ``True`` when the buffer holds at least ``k`` items and the ``k``-th
        largest lower bound is no smaller than the upper bound of every item
        outside that top-k set.  With exactly ``k`` items the condition is
        vacuously satisfied (there is nothing left to prune).
        """
        ordered = self._ordered_slots()
        if ordered.size < k:
            return False
        kth_lower = float(self._lower[ordered[k - 1]])
        rest = ordered[k:]
        if rest.size == 0:
            return True
        return bool(self._upper[rest].max() <= kth_lower + tolerance)

    def max_upper_bound_outside_top_k(self, k: int) -> float | None:
        """Largest upper bound among items not in the current top-k (``None`` if none)."""
        ordered = self._ordered_slots()
        if ordered.size <= k:
            return None
        return float(self._upper[ordered[k:]].max())


class CandidateBuffer:
    """Items encountered so far with their [lower, upper] consensus bounds.

    Compatibility façade over :class:`ColumnarCandidateBuffer` preserving the
    original per-item API.
    """

    def __init__(self) -> None:
        self._columnar = ColumnarCandidateBuffer()

    # -- container protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._columnar)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._columnar

    def __iter__(self) -> Iterator[BufferedItem]:
        return iter(self._columnar)

    # -- updates -------------------------------------------------------------------------

    def update(self, item: Hashable, lower: float, upper: float) -> None:
        """Insert or refresh the bounds of one item."""
        self._columnar.update(item, lower, upper)

    def update_many(self, bounds: Mapping[Hashable, tuple[float, float]]) -> None:
        """Bulk insert/refresh from ``{item: (lower, upper)}``."""
        self._columnar.update_many(bounds)

    def remove(self, items: Iterable[Hashable]) -> None:
        """Drop items that have been pruned."""
        self._columnar.remove(items)

    # -- queries -------------------------------------------------------------------------

    def get(self, item: Hashable) -> BufferedItem | None:
        """The buffered record of ``item`` or ``None``."""
        return self._columnar.get(item)

    def ranked_by_lower_bound(self) -> list[BufferedItem]:
        """All buffered items sorted by decreasing lower bound (ties by item repr)."""
        return self._columnar.ranked_by_lower_bound()

    def top_k(self, k: int) -> list[BufferedItem]:
        """The ``k`` buffered items with the highest lower bounds."""
        return self._columnar.top_k(k)

    def kth_lower_bound(self, k: int) -> float | None:
        """Lower bound of the ``k``-th ranked item (``None`` if fewer than ``k`` items)."""
        return self._columnar.kth_lower_bound(k)

    def satisfies_buffer_condition(self, k: int, tolerance: float = _TOLERANCE) -> bool:
        """GRECA's buffer termination test (see :class:`ColumnarCandidateBuffer`)."""
        return self._columnar.satisfies_buffer_condition(k, tolerance)

    def max_upper_bound_outside_top_k(self, k: int) -> float | None:
        """Largest upper bound among items not in the current top-k (``None`` if none)."""
        return self._columnar.max_upper_bound_outside_top_k(k)
