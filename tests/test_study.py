"""Tests for repro.study (satisfaction oracle and evaluation protocols)."""

from __future__ import annotations

import pytest

from repro.core.affinity import ExplicitAffinityModel, NoAffinityModel
from repro.data.ratings import dataset_from_tuples
from repro.exceptions import ConfigurationError, GroupError
from repro.study.environment import (
    CHARACTERISTICS,
    StudyGroup,
    build_study_environment,
)
from repro.study.comparative import ComparativeEvaluation, FIGURE2_FUNCTIONS, FIGURE3_COMPARISONS
from repro.study.independent import FIGURE1_CONFIGURATIONS, IndependentEvaluation
from repro.study.satisfaction import OracleConfig, SatisfactionOracle

TRUE_RATINGS = dataset_from_tuples(
    [
        (1, 10, 5.0), (1, 11, 1.0), (1, 12, 3.0),
        (2, 10, 5.0), (2, 11, 2.0), (2, 12, 3.0),
        (3, 10, 1.0), (3, 11, 5.0), (3, 12, 3.0),
    ]
)
AFFINITY = ExplicitAffinityModel({(1, 2): 1.0, (1, 3): 0.0, (2, 3): 0.1})


@pytest.fixture()
def oracle():
    return SatisfactionOracle(TRUE_RATINGS, AFFINITY, OracleConfig(noise=0.0, seed=1))


class TestOracleConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"personal_weight": -0.1},
            {"personal_weight": 0.0, "social_weight": 0.0},
            {"noise": -1.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            OracleConfig(**kwargs)


class TestSatisfactionOracle:
    def test_true_rating_with_fallbacks(self, oracle):
        assert oracle.true_rating(1, 10) == 5.0
        assert oracle.true_rating(1, 99) == pytest.approx(oracle._mean)
        assert oracle.true_rating(99, 10) == pytest.approx(TRUE_RATINGS.item_mean(10))

    def test_utility_requires_membership(self, oracle):
        with pytest.raises(GroupError):
            oracle.utility(1, 10, [2, 3])

    def test_company_changes_utility(self, oracle):
        """The same item is appreciated differently in different company."""
        with_agreeing_friend = oracle.utility(1, 10, [1, 2])
        with_disagreeing_stranger = oracle.utility(1, 11, [1, 2])
        assert with_agreeing_friend > with_disagreeing_stranger

    def test_affinity_weighting_matters(self, oracle):
        """A high-affinity companion pulls the utility towards their taste."""
        # User 3 loves item 11; user 1 hates it.  User 1 has affinity 1.0 with
        # user 2 (who also dislikes 11) and 0.0 with user 3.
        with_friend = oracle.utility(1, 11, [1, 2])
        with_stranger = oracle.utility(1, 11, [1, 3])
        assert with_friend <= with_stranger + 1e-9

    def test_list_and_group_utilities(self, oracle):
        per_member = oracle.list_utility(1, [10, 12], [1, 2])
        group = oracle.group_list_utility([10, 12], [1, 2])
        assert 1.0 <= per_member <= 5.0
        assert 1.0 <= group <= 5.0

    def test_satisfaction_percent_range(self, oracle):
        percent = oracle.satisfaction_percent([10, 11, 12], [1, 2, 3])
        assert 20.0 <= percent <= 100.0

    def test_prefers_better_list(self, oracle):
        good = [10]
        bad = [11]
        assert oracle.prefers(good, bad, [1, 2])
        assert not oracle.prefers(bad, good, [1, 2])
        assert oracle.member_prefers(1, good, bad, [1, 2])

    def test_empty_list_rejected(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.list_utility(1, [], [1, 2])
        with pytest.raises(GroupError):
            oracle.group_list_utility([10], [])


class TestStudyEnvironment:
    @pytest.fixture(scope="class")
    def environment(self):
        # A deliberately small environment so the whole protocol stays fast.
        from repro.data.movielens import MovieLensConfig, generate_movielens_like
        from repro.data.study_cohort import StudyConfig

        base = generate_movielens_like(MovieLensConfig(n_users=120, n_items=150, n_ratings=5000, seed=3))
        return build_study_environment(
            base_ratings=base,
            study_config=StudyConfig(n_seeds=6, min_invitees=2, max_invitees=4, seed=3),
        )

    def test_groups_cover_all_characteristics(self, environment):
        for characteristic in CHARACTERISTICS:
            assert environment.groups_with(characteristic), characteristic

    def test_unknown_characteristic_rejected(self, environment):
        with pytest.raises(ConfigurationError):
            environment.groups_with("Huge")

    def test_period_is_latest(self, environment):
        assert environment.period == environment.timeline.current

    def test_independent_evaluation_produces_percentages(self, environment):
        evaluation = IndependentEvaluation(environment, k=3)
        chart = evaluation.evaluate_configuration(affinity="discrete", consensus="AP", label="A")
        assert set(chart.preference_percent) == set(CHARACTERISTICS)
        assert all(0.0 <= value <= 100.0 for value in chart.preference_percent.values())
        assert 0.0 <= chart.overall() <= 100.0

    def test_figure1_configurations_cover_six_charts(self):
        assert len(FIGURE1_CONFIGURATIONS) == 6

    def test_comparative_evaluation_produces_percentages(self, environment):
        evaluation = ComparativeEvaluation(environment, k=3)
        chart = evaluation.compare_pair(
            {"affinity": "discrete", "consensus": "AP"},
            {"affinity": "none", "consensus": "AP"},
            label="A",
        )
        assert set(chart.preference_percent) == set(CHARACTERISTICS)
        assert all(0.0 <= value <= 100.0 for value in chart.preference_percent.values())

    def test_figure3_has_three_comparisons(self):
        assert len(FIGURE3_COMPARISONS) == 3

    def test_consensus_comparison_shares_sum_to_100(self, environment):
        evaluation = ComparativeEvaluation(environment, k=3)
        comparison = evaluation.compare_consensus_functions()
        for characteristic in CHARACTERISTICS:
            shares = comparison.preference_percent[characteristic]
            assert set(shares) == set(FIGURE2_FUNCTIONS)
            assert sum(shares.values()) == pytest.approx(100.0, abs=1e-6)
            assert comparison.winner(characteristic) in FIGURE2_FUNCTIONS

    def test_study_group_dataclass(self):
        group = StudyGroup((1, 2, 3), ("Small", "Sim"))
        assert group.size == 3
