"""Delta batches: the unit of incremental ingestion.

A deployed recommender does not rebuild its substrate per update — new
ratings and page likes arrive continuously and the current period eventually
closes.  :class:`RatingDelta` packages one batch of such events; applying it
to a :class:`~repro.experiments.scalability.ScalabilityEnvironment`
(:meth:`~repro.experiments.scalability.ScalabilityEnvironment.apply_delta`)
advances the environment by one *epoch*, with the hard guarantee that the
post-delta state is bit-identical to a full rebuild over the merged history.

:func:`random_deltas` synthesises valid delta sequences for the equivalence
matrix and the bench: new ``(user, item)`` ratings only (the dataset rejects
duplicates), page likes restricted to the network's users, timestamps inside
the timeline, and an optional appended period every few batches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.timeline import Period, Timeline
from repro.data.ratings import Rating, RatingsDataset
from repro.data.social import N_PAGE_CATEGORIES, PageLike, SocialNetwork
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RatingDelta:
    """One batch of incremental updates.

    ``ratings`` are new ``(user, item)`` observations (a pair may appear at
    most once across the whole history — re-rating is not modelled, matching
    :class:`~repro.data.ratings.RatingsDataset`).  ``page_likes`` extend the
    social like history; ``new_period`` optionally appends one period after
    the timeline's current end (the "period closed" event that makes the
    appended likes queryable as their own drift step).
    """

    ratings: tuple[Rating, ...] = ()
    page_likes: tuple[PageLike, ...] = ()
    new_period: Period | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ratings", tuple(self.ratings))
        object.__setattr__(self, "page_likes", tuple(self.page_likes))
        seen: set[tuple[int, int]] = set()
        for rating in self.ratings:
            key = (rating.user_id, rating.item_id)
            if key in seen:
                raise ConfigurationError(
                    f"delta contains duplicate rating for user {rating.user_id}, "
                    f"item {rating.item_id}"
                )
            seen.add(key)

    @property
    def is_empty(self) -> bool:
        """``True`` when the delta carries no event at all."""
        return not self.ratings and not self.page_likes and self.new_period is None


def random_deltas(
    ratings: RatingsDataset,
    social: SocialNetwork,
    timeline: Timeline,
    n_deltas: int,
    seed: int = 0,
    ratings_per_delta: int = 12,
    likes_per_delta: int = 8,
    new_period_every: int | None = None,
) -> list[RatingDelta]:
    """Synthesise ``n_deltas`` valid delta batches against a base substrate.

    Ratings draw unrated ``(user, item)`` pairs from the existing universe
    (so the incremental CF fast path applies); likes draw users from the
    social network with timestamps in the period their batch targets.  With
    ``new_period_every=j``, every ``j``-th delta appends a fresh period of
    the current tail length and places its likes there; other batches land
    likes uniformly in the existing span.  Deltas are cumulative: a pair
    rated by an earlier delta is never re-drawn by a later one.
    """
    if n_deltas <= 0:
        raise ConfigurationError("n_deltas must be positive")
    rng = random.Random(seed)
    users = list(ratings.users)
    items = list(ratings.items)
    rated = {
        (rating.user_id, rating.item_id) for rating in ratings.ratings
    }
    like_users = list(social.users)
    span_start = timeline.beginning
    span_end = timeline.end
    tail_length = timeline.current.length

    deltas: list[RatingDelta] = []
    for batch in range(n_deltas):
        new_ratings: list[Rating] = []
        for _ in range(ratings_per_delta * 4):
            if len(new_ratings) >= ratings_per_delta:
                break
            user = rng.choice(users)
            item = rng.choice(items)
            if (user, item) in rated:
                continue
            rated.add((user, item))
            new_ratings.append(
                Rating(user, item, float(rng.randint(1, 5)), rng.randint(span_start, span_end))
            )
        new_period: Period | None = None
        if new_period_every and (batch + 1) % new_period_every == 0:
            new_period = Period(span_end + 1, span_end + tail_length)
            span_end = new_period.end
        like_start, like_end = (
            (new_period.start, new_period.end) if new_period else (span_start, span_end)
        )
        likes = [
            PageLike(
                rng.choice(like_users),
                rng.randrange(N_PAGE_CATEGORIES),
                rng.randint(like_start, like_end),
            )
            for _ in range(likes_per_delta)
        ]
        deltas.append(
            RatingDelta(
                ratings=tuple(new_ratings),
                page_likes=tuple(likes),
                new_period=new_period,
            )
        )
    return deltas
