"""Figure 6 — %SA per query period under the discrete time model.

Each successive period adds one more set of periodic affinity lists to the
index, so the total amount of data GRECA may have to scan grows with the
period index.  The paper observes a roughly linear growth of the average
number of accesses, with an exception in period 5 where common page-likes are
sparse and the extra lists do not help termination.

The reproduction runs GRECA with the query period set to each period of the
timeline in turn and reports the mean %SA (and, for context, the mean
absolute number of sequential accesses, which is the quantity whose linear
growth the paper highlights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.scalability import (
    AccessStats,
    ScalabilityConfig,
    ScalabilityEnvironment,
    SweepPoint,
    owned_environment,
    summarize_percent_sa,
)

#: The paper's qualitative claim: accesses grow ~linearly with the period index.
PAPER_REFERENCE = {"behaviour": "roughly linear growth of accesses with the period index"}


@dataclass(frozen=True)
class Figure6Result:
    """Per-period access statistics."""

    percent_sa: Mapping[int, AccessStats]
    mean_accesses: Mapping[int, float]

    def rows(self) -> list[dict[str, object]]:
        """One row per period index."""
        return [
            {
                "period": period_index,
                "mean_percent_sa": round(stats.mean_percent_sa, 2),
                "std_error": round(stats.std_error, 2),
                "mean_sequential_accesses": round(self.mean_accesses[period_index], 1),
            }
            for period_index, stats in sorted(self.percent_sa.items())
        ]

    def format_table(self) -> str:
        """Human-readable rendering."""
        lines = ["Figure 6 — average accesses per period (discrete model)"]
        lines.append(f"{'period':>6} {'%SA':>8} {'+/-':>6} {'#SA':>10}")
        for row in self.rows():
            lines.append(
                f"{row['period']:>6} {row['mean_percent_sa']:>8.2f} "
                f"{row['std_error']:>6.2f} {row['mean_sequential_accesses']:>10.1f}"
            )
        return "\n".join(lines)


def run(
    environment: ScalabilityEnvironment | None = None,
    config: ScalabilityConfig | None = None,
    groups: Sequence[Sequence[int]] | None = None,
    n_workers: int | None = None,
    executor=None,
    policy=None,
) -> Figure6Result:
    """Regenerate Figure 6: one GRECA run per group per query period.

    The reuse layer shares each group's columnar preference substrate across
    all query periods, and the affinity inputs ride as period prefixes of one
    full-timeline column set per group.  ``n_workers=`` / ``executor=`` (or
    a bundled :class:`~repro.parallel.ExecutionPolicy` via ``policy=``)
    batch the whole period sweep into a single sharded dispatch (serial
    reference semantics by default).  A driver-owned environment is closed
    on the way out, exception or not, so no worker pool or ``/dev/shm``
    segment can leak mid-figure.
    """
    with owned_environment(environment, config) as environment:
        groups = groups or environment.random_groups()
        points = [
            SweepPoint(groups=groups, period=period) for period in environment.timeline
        ]
        per_period = environment.run_sweep(
            points, n_workers=n_workers, executor=executor, policy=policy
        )

        percent_sa: dict[int, AccessStats] = {}
        mean_accesses: dict[int, float] = {}
        for period_index, records in enumerate(per_period):
            percent_sa[period_index] = summarize_percent_sa(
                [record.percent_sa for record in records]
            )
            mean_accesses[period_index] = sum(
                record.sequential_accesses for record in records
            ) / len(records)
        return Figure6Result(percent_sa=percent_sa, mean_accesses=mean_accesses)
