"""Core contribution: temporal affinities, preferences, consensus and GRECA."""

from repro.core.affinity import (
    AffinityModel,
    ComputedAffinities,
    ContinuousAffinityModel,
    DiscreteAffinityModel,
    ExplicitAffinityModel,
    NoAffinityModel,
    TimeAgnosticAffinityModel,
    build_affinity_model,
    combine_continuous,
    combine_discrete,
)
from repro.core.baseline import BaselineResult, NaiveFullScan, ThresholdAlgorithmBaseline
from repro.core.bounds import Interval, PairwiseAffinityBounds
from repro.core.buffer import BufferedItem, CandidateBuffer, ColumnarCandidateBuffer
from repro.core.consensus import (
    AVERAGE_PREFERENCE,
    LEAST_MISERY,
    PAIRWISE_DISAGREEMENT,
    PD_V1,
    PD_V2,
    ConsensusFunction,
    make_consensus,
)
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory, GrecaResult
from repro.core.lists import AccessCounter, ListEntry, SortedAccessList
from repro.core.preference import AbsolutePreferenceSource, PreferenceModel
from repro.core.recommender import GroupRecommendation, GroupRecommender
from repro.core.timeline import Period, Timeline, discretize, one_year_timeline, uniform_timeline

__all__ = [
    "AVERAGE_PREFERENCE",
    "AbsolutePreferenceSource",
    "AccessCounter",
    "AffinityModel",
    "BaselineResult",
    "BufferedItem",
    "CandidateBuffer",
    "ColumnarCandidateBuffer",
    "ComputedAffinities",
    "ConsensusFunction",
    "ContinuousAffinityModel",
    "DiscreteAffinityModel",
    "ExplicitAffinityModel",
    "Greca",
    "GrecaIndex",
    "GrecaIndexFactory",
    "GrecaResult",
    "GroupRecommendation",
    "GroupRecommender",
    "Interval",
    "LEAST_MISERY",
    "ListEntry",
    "NaiveFullScan",
    "NoAffinityModel",
    "PAIRWISE_DISAGREEMENT",
    "PD_V1",
    "PD_V2",
    "PairwiseAffinityBounds",
    "Period",
    "PreferenceModel",
    "SortedAccessList",
    "ThresholdAlgorithmBaseline",
    "TimeAgnosticAffinityModel",
    "Timeline",
    "build_affinity_model",
    "combine_continuous",
    "combine_discrete",
    "discretize",
    "make_consensus",
    "one_year_timeline",
    "uniform_timeline",
]
