"""Epoch-versioned incremental updates (delta ingestion without rebuilds).

Public surface:

* :class:`~repro.updates.deltas.RatingDelta` — one batch of new ratings /
  page likes / an appended period, and :func:`~repro.updates.deltas
  .random_deltas` to synthesise valid sequences;
* :class:`~repro.updates.epoch.EpochManager` — apply deltas through
  :meth:`~repro.experiments.scalability.ScalabilityEnvironment.apply_delta`,
  journal them, snapshot the journal to disk and restore by replay.

The contract underneath: applying N deltas incrementally leaves the
environment bit-identical to a full rebuild over the merged history —
same similarity matrices, same aprefs, same affinity columns, same GRECA
records on every execution tier — while warm worker pools adopt each new
epoch without a restart.
"""

from repro.updates.deltas import RatingDelta, random_deltas
from repro.updates.epoch import EpochManager, delta_from_json, delta_to_json

__all__ = [
    "EpochManager",
    "RatingDelta",
    "delta_from_json",
    "delta_to_json",
    "random_deltas",
]
