"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class DataError(ReproError):
    """Raised when an input dataset is malformed or inconsistent."""


class UnknownUserError(DataError):
    """Raised when a user id is not present in the dataset."""

    def __init__(self, user_id: object) -> None:
        super().__init__(f"unknown user: {user_id!r}")
        self.user_id = user_id


class UnknownItemError(DataError):
    """Raised when an item id is not present in the dataset."""

    def __init__(self, item_id: object) -> None:
        super().__init__(f"unknown item: {item_id!r}")
        self.item_id = item_id


class TimelineError(ReproError):
    """Raised for invalid time periods or timeline configurations."""


class AffinityError(ReproError):
    """Raised when affinity values cannot be computed or are invalid."""


class GroupError(ReproError):
    """Raised for invalid group specifications (empty groups, duplicates...)."""


class ConsensusError(ReproError):
    """Raised for invalid consensus-function configurations."""


class AlgorithmError(ReproError):
    """Raised when a top-k algorithm is invoked with invalid arguments."""


class ConfigurationError(ReproError):
    """Raised when an experiment or generator configuration is invalid."""
