"""Orchestration: plan shards, build payloads, execute, merge.

:func:`evaluate_tasks` is the engine-level entry point of the sharded layer:
it takes fully materialised :class:`~repro.parallel.worker.GroupEvalTask`
values plus the factory of every group involved, partitions the tasks,
ships each shard its payload (tasks + the factories *it* needs) and merges
the records back into task order.  It knows nothing about recommenders,
environments or figures — :class:`repro.experiments.scalability
.ScalabilityEnvironment` builds the tasks and owns the factory cache; the
equivalence tests drive this function directly with synthetic grid cases.

Shipment: when the resolved backend crosses a process boundary
(``ships_payloads``), the factories' large arrays — and the affinity
columns of any task carrying an
:class:`~repro.core.affinity.AffinityColumns` reference — are exported to
shared-memory segments (:mod:`repro.parallel.shm`) and the payloads carry
only descriptors — the zero-copy default.  ``shipment="pickle"`` forces the
PR 3 by-value path (the bench uses it to measure the payload shrink);
``shipment="shm"`` forces descriptor shipment even in-process.  A registry
created here is unlinked in a ``finally`` — after normal completion, after a
worker exception and after an interrupt alike — while a caller-owned
``registry=`` (the environment's) survives the call so segments are shared
across dispatches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from repro.core.affinity import AffinityColumns
from repro.exceptions import ConfigurationError
from repro.parallel.merge import merge_shard_records
from repro.parallel.pool import SerialShardExecutor, ShardExecutor, resolve_executor
from repro.parallel.resilience import (
    FaultPlan,
    SupervisedDispatch,
    SupervisionPolicy,
    attach_fault_plan,
    coerce_policy,
    fault_plan_from_env,
)
from repro.parallel.sharding import ShardPlan, plan_shards
from repro.parallel.shm import (
    SHIPMENT_PICKLE,
    SHIPMENT_SHM,
    VALID_SHIPMENTS,
    SharedArrayRegistry,
)
from repro.parallel.storage import STORAGE_SHM, validate_storage_name
from repro.parallel.worker import (
    GroupEvalTask,
    GroupKey,
    GroupRunRecord,
    ShardPayload,
)


def build_payloads(
    plan: ShardPlan,
    tasks: Sequence[GroupEvalTask],
    factories: Mapping[GroupKey, object],
) -> list[ShardPayload]:
    """One payload per shard, shipping only the factories its tasks need."""
    if plan.n_tasks != len(tasks):
        raise ConfigurationError(
            f"shard plan covers {plan.n_tasks} tasks, got {len(tasks)}"
        )
    payloads = []
    for shard_index, indices in enumerate(plan.shards):
        shard_tasks = tuple(tasks[index] for index in indices)
        shard_factories = {task.group: factories[task.group] for task in shard_tasks}
        payloads.append(
            ShardPayload(
                shard_index=shard_index,
                task_indices=indices,
                tasks=shard_tasks,
                factories=shard_factories,
            )
        )
    return payloads


def evaluate_tasks(
    tasks: Sequence[GroupEvalTask],
    factories: Mapping[GroupKey, object],
    n_shards: int | None = None,
    executor: ShardExecutor | str | None = None,
    plan: ShardPlan | None = None,
    shipment: str | None = None,
    registry: SharedArrayRegistry | None = None,
    storage: str | None = None,
    supervision: SupervisionPolicy | bool | None = None,
    fault_plan: FaultPlan | None = None,
    reports: list | None = None,
) -> list[GroupRunRecord]:
    """Evaluate tasks through the sharded pipeline; records come back in task order.

    Parameters
    ----------
    tasks:
        Materialised evaluations, one record produced per task.
    factories:
        ``{group_key: GrecaIndexFactory}`` for every group referenced by a
        task (missing groups raise before anything is dispatched).  Values
        may already be :class:`~repro.parallel.shm.ShmFactoryHandle`\\ s.
    n_shards:
        Number of shards for the default contiguous plan.  When omitted it
        is taken from the executor's worker count (one shard per worker);
        with no executor either, everything runs in one in-process shard —
        still exercising the full payload/merge pipeline, but never spawning
        a process just to execute serially.
    executor:
        ``"serial"``, ``"process"``, ``"persistent"`` or a
        :class:`~repro.parallel.pool.ShardExecutor` instance; defaults to
        the process backend whenever ``n_shards`` asks for fan-out and to
        the in-process backend otherwise.  Unknown names raise
        :class:`ValueError` at the single validation choice point
        (:func:`repro.parallel.pool.validate_executor_name`).  A
        ``"persistent"`` string resolves to a fresh pool that is shut down
        before returning — pass (and keep) an instance for actual warmth.
    plan:
        Explicit shard plan overriding ``n_shards`` — any partition of the
        task indices is valid and merges to the same result; the
        shard-plan-invariance tests rely on this hook.
    shipment:
        ``"shm"`` (descriptors over shared memory), ``"pickle"`` (factories
        by value), or ``None`` to pick shm exactly when the backend crosses
        a process boundary.
    registry:
        A caller-owned :class:`SharedArrayRegistry` whose segments should
        outlive this call (the environment passes its own so repeated
        dispatches share segments).  When omitted and shm shipment is in
        effect, an ephemeral registry is created and unlinked on the way
        out, success or failure.
    storage:
        ``"shm"`` (shared-memory segments, the default) or ``"mmap"``
        (memory-mapped spool files) — which backend descriptor shipment
        packs arrays into, validated at the single storage choice point
        (:func:`repro.parallel.storage.validate_storage_name`).  An
        ephemeral registry is created with this backend; a caller-owned
        ``registry=`` must already match (mismatching the two is a
        configuration error, not a silent preference).
    supervision:
        A :class:`~repro.parallel.resilience.SupervisionPolicy` (or ``True``
        for the defaults) arms fault-tolerant dispatch: the resolved backend
        is wrapped in a :class:`~repro.parallel.resilience.SupervisedDispatch`
        enforcing per-shard timeouts, bounded retries with deterministic
        backoff, pool rebuilds and serial degradation — all bit-identical to
        an unsupervised run by the architecture invariant.  When the backend
        already *is* a supervisor (``executor="supervised"`` or a held
        instance), a policy here overrides its current one.
    fault_plan:
        A :class:`~repro.parallel.resilience.FaultPlan` attached to every
        payload — the deterministic chaos hook the fault-tolerance suite
        drives.  Defaults to the ``REPRO_FAULT_PLAN`` environment plan, and
        to no faults when that is unset.
    reports:
        A mutable sink; when the backend is supervised, its
        :class:`~repro.parallel.resilience.DispatchReport` is appended —
        even when the dispatch ultimately raises.
    """
    if not tasks:
        return []
    if executor is None and n_shards is None:
        backend: ShardExecutor = SerialShardExecutor()
    else:
        backend = resolve_executor(executor, n_shards)
    owns_backend = backend is not executor
    policy = coerce_policy(supervision)
    if isinstance(backend, SupervisedDispatch):
        if policy is not None:
            backend.policy = policy
    elif policy is not None:
        # owns_backend on the wrapper transfers inner-pool ownership: the
        # finally below shuts the wrapper down, and the wrapper only shuts
        # its inner executor when that inner was resolved here (a caller's
        # warm pool instance stays warm).
        backend = SupervisedDispatch(backend, policy=policy, owns_executor=owns_backend)
        owns_backend = True
    if fault_plan is None:
        fault_plan = fault_plan_from_env()
    if shipment is None:
        shipment = SHIPMENT_SHM if backend.ships_payloads else SHIPMENT_PICKLE
    if shipment not in VALID_SHIPMENTS:
        raise ValueError(
            f"unknown shipment {shipment!r}: valid shipments are "
            + ", ".join(repr(valid) for valid in VALID_SHIPMENTS)
        )
    if storage is not None:
        validate_storage_name(storage)
        if registry is not None and registry.storage != storage:
            raise ConfigurationError(
                f"storage={storage!r} conflicts with the caller-owned registry's "
                f"storage={registry.storage!r}"
            )
    if plan is None:
        if n_shards is None:
            n_shards = getattr(backend, "n_workers", 1)
        plan = plan_shards(len(tasks), n_shards)
    owns_registry = False
    try:
        if shipment == SHIPMENT_SHM:
            if registry is None:
                registry = SharedArrayRegistry(storage=storage or STORAGE_SHM)
                owns_registry = True
            needed = {task.group for task in tasks}
            factories = {
                key: registry.export(value) if key in needed else value
                for key, value in factories.items()
            }
            # Columnar affinity inputs ship by descriptor too: one export per
            # distinct AffinityColumns object (a whole period sweep shares
            # one), dict-based tasks stay as they are.
            tasks = [
                replace(task, affinity_ref=registry.export_affinity(task.affinity_ref))
                if isinstance(task.affinity_ref, AffinityColumns)
                else task
                for task in tasks
            ]
        payloads = attach_fault_plan(build_payloads(plan, tasks, factories), fault_plan)
        if shipment == SHIPMENT_SHM and not owns_registry:
            # Epoch adoption: a long-lived (environment) registry may have
            # retired exports since the pool's workers last ran; the floor
            # stamped here tells them which cached generations are dead
            # (see ShardPayload.min_generation).  An ephemeral registry
            # never retires anything, so its payloads keep the no-op 0.
            floor = registry.generation_floor
            if floor:
                payloads = [replace(p, min_generation=floor) for p in payloads]
        if isinstance(backend, SupervisedDispatch):
            # Arm self-healing: the supervisor may re-export segments of
            # this registry if workers die holding the only live mappings.
            backend.registry = registry
        shard_records = backend.run(payloads)
        return merge_shard_records(plan, shard_records)
    finally:
        if isinstance(backend, SupervisedDispatch) and reports is not None:
            if backend.last_report is not None:
                reports.append(backend.last_report)
        if owns_backend:
            shutdown = getattr(backend, "shutdown", None)
            if shutdown is not None:
                shutdown()
        if owns_registry:
            registry.close()
