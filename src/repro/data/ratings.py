"""Collaborative rating dataset.

The paper evaluates on the MovieLens 1M dataset (Table 5): users rate movies
on a 1-5 scale and every rating carries a timestamp.  :class:`RatingsDataset`
is the in-memory representation used by every other subsystem: the
collaborative-filtering substrate (:mod:`repro.cf`), group formation
(:mod:`repro.groups`) and the experiment drivers.

The class is intentionally simple — a list of :class:`Rating` records plus a
set of dictionary indexes — so that its behaviour is easy to reason about and
so that synthetic generators can build datasets cheaply.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import DataError, UnknownItemError, UnknownUserError

#: The rating scale used by MovieLens and by the paper's user study.
MIN_RATING = 1.0
MAX_RATING = 5.0


@dataclass(frozen=True)
class Rating:
    """A single ``(user, item, rating, timestamp)`` record."""

    user_id: int
    item_id: int
    value: float
    timestamp: int = 0

    def __post_init__(self) -> None:
        if not (MIN_RATING <= self.value <= MAX_RATING):
            raise DataError(
                f"rating {self.value} for user {self.user_id} / item {self.item_id} "
                f"is outside the [{MIN_RATING}, {MAX_RATING}] scale"
            )


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics in the shape of the paper's Table 5."""

    n_users: int
    n_items: int
    n_ratings: int
    mean_rating: float
    min_timestamp: int
    max_timestamp: int

    def as_table_row(self) -> dict[str, int]:
        """The three columns reported in Table 5 of the paper."""
        return {
            "# users": self.n_users,
            "# movies": self.n_items,
            "# ratings": self.n_ratings,
        }


class RatingsDataset:
    """An immutable collection of ratings with fast per-user/per-item access.

    Parameters
    ----------
    ratings:
        The rating records.  A user may rate an item at most once; duplicates
        raise :class:`~repro.exceptions.DataError`.
    name:
        Optional human-readable name (e.g. ``"movielens-1m-synthetic"``).
    """

    def __init__(self, ratings: Iterable[Rating], name: str = "ratings") -> None:
        self.name = name
        self._ratings: list[Rating] = []
        self._by_user: dict[int, dict[int, Rating]] = defaultdict(dict)
        self._by_item: dict[int, dict[int, Rating]] = defaultdict(dict)
        for rating in ratings:
            if rating.item_id in self._by_user[rating.user_id]:
                raise DataError(
                    f"duplicate rating for user {rating.user_id}, item {rating.item_id}"
                )
            self._ratings.append(rating)
            self._by_user[rating.user_id][rating.item_id] = rating
            self._by_item[rating.item_id][rating.user_id] = rating
        self._users = tuple(sorted(self._by_user))
        self._items = tuple(sorted(self._by_item))

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ratings)

    def __iter__(self) -> Iterator[Rating]:
        return iter(self._ratings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatingsDataset(name={self.name!r}, users={len(self._users)}, "
            f"items={len(self._items)}, ratings={len(self._ratings)})"
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def users(self) -> tuple[int, ...]:
        """All user ids, sorted."""
        return self._users

    @property
    def items(self) -> tuple[int, ...]:
        """All item ids, sorted."""
        return self._items

    @property
    def ratings(self) -> tuple[Rating, ...]:
        """All rating records."""
        return tuple(self._ratings)

    def has_user(self, user_id: int) -> bool:
        """Return ``True`` if the user appears in the dataset."""
        return user_id in self._by_user

    def has_item(self, item_id: int) -> bool:
        """Return ``True`` if the item appears in the dataset."""
        return item_id in self._by_item

    def user_ratings(self, user_id: int) -> Mapping[int, Rating]:
        """All ratings of ``user_id`` keyed by item id."""
        if user_id not in self._by_user:
            raise UnknownUserError(user_id)
        return dict(self._by_user[user_id])

    def item_ratings(self, item_id: int) -> Mapping[int, Rating]:
        """All ratings of ``item_id`` keyed by user id."""
        if item_id not in self._by_item:
            raise UnknownItemError(item_id)
        return dict(self._by_item[item_id])

    def rating_value(self, user_id: int, item_id: int) -> float | None:
        """The rating of ``user_id`` for ``item_id`` or ``None`` if unrated."""
        return (
            self._by_user.get(user_id, {}).get(item_id).value
            if self._by_user.get(user_id, {}).get(item_id) is not None
            else None
        )

    def user_vector(self, user_id: int) -> dict[int, float]:
        """A sparse vector ``{item_id: rating}`` for ``user_id``."""
        if user_id not in self._by_user:
            raise UnknownUserError(user_id)
        return {item: rating.value for item, rating in self._by_user[user_id].items()}

    def user_mean(self, user_id: int) -> float:
        """Mean rating of a user (0 if the user rated nothing)."""
        vector = self.user_vector(user_id)
        return sum(vector.values()) / len(vector) if vector else 0.0

    def item_mean(self, item_id: int) -> float:
        """Mean rating of an item (0 if no one rated it)."""
        if item_id not in self._by_item:
            raise UnknownItemError(item_id)
        values = [rating.value for rating in self._by_item[item_id].values()]
        return sum(values) / len(values)

    def item_popularity(self, item_id: int) -> int:
        """Number of users who rated ``item_id``."""
        if item_id not in self._by_item:
            raise UnknownItemError(item_id)
        return len(self._by_item[item_id])

    def item_rating_variance(self, item_id: int) -> float:
        """Population variance of the ratings of ``item_id``."""
        if item_id not in self._by_item:
            raise UnknownItemError(item_id)
        values = [rating.value for rating in self._by_item[item_id].values()]
        mean = sum(values) / len(values)
        return sum((value - mean) ** 2 for value in values) / len(values)

    # -- derived views ------------------------------------------------------------

    def stats(self) -> DatasetStats:
        """Summary statistics (the content of the paper's Table 5)."""
        if not self._ratings:
            return DatasetStats(0, 0, 0, 0.0, 0, 0)
        timestamps = [rating.timestamp for rating in self._ratings]
        mean = sum(rating.value for rating in self._ratings) / len(self._ratings)
        return DatasetStats(
            n_users=len(self._users),
            n_items=len(self._items),
            n_ratings=len(self._ratings),
            mean_rating=mean,
            min_timestamp=min(timestamps),
            max_timestamp=max(timestamps),
        )

    def extended(self, new_ratings: Iterable[Rating]) -> "RatingsDataset":
        """A new dataset with ``new_ratings`` appended — the delta-ingest path.

        State-identical to ``RatingsDataset(list(self.ratings) + list(new_
        ratings))`` (same record order, same sorted id tuples, same duplicate
        detection) but built by copying the indexes instead of replaying every
        historical rating, so applying a small delta to a large dataset costs
        O(|dataset| + |delta|) dictionary work with no re-validation pass.
        """
        extended = RatingsDataset.__new__(RatingsDataset)
        extended.name = self.name
        extended._ratings = list(self._ratings)
        extended._by_user = defaultdict(dict, {u: dict(r) for u, r in self._by_user.items()})
        extended._by_item = defaultdict(dict, {i: dict(r) for i, r in self._by_item.items()})
        new_keys = False
        for rating in new_ratings:
            if rating.item_id in extended._by_user[rating.user_id]:
                raise DataError(
                    f"duplicate rating for user {rating.user_id}, item {rating.item_id}"
                )
            new_keys = (
                new_keys
                or rating.user_id not in self._by_user
                or rating.item_id not in self._by_item
            )
            extended._ratings.append(rating)
            extended._by_user[rating.user_id][rating.item_id] = rating
            extended._by_item[rating.item_id][rating.user_id] = rating
        if new_keys:
            extended._users = tuple(sorted(extended._by_user))
            extended._items = tuple(sorted(extended._by_item))
        else:
            extended._users = self._users
            extended._items = self._items
        return extended

    def filter(
        self,
        predicate: Callable[[Rating], bool],
        name: str | None = None,
    ) -> "RatingsDataset":
        """A new dataset containing only the ratings satisfying ``predicate``."""
        return RatingsDataset(
            (rating for rating in self._ratings if predicate(rating)),
            name=name or f"{self.name}-filtered",
        )

    def restrict_users(self, user_ids: Iterable[int]) -> "RatingsDataset":
        """A new dataset with only the ratings of the given users."""
        keep = set(user_ids)
        return self.filter(lambda rating: rating.user_id in keep, name=f"{self.name}-users")

    def restrict_items(self, item_ids: Iterable[int]) -> "RatingsDataset":
        """A new dataset with only the ratings of the given items."""
        keep = set(item_ids)
        return self.filter(lambda rating: rating.item_id in keep, name=f"{self.name}-items")

    def top_popular_items(self, n: int) -> list[int]:
        """The ``n`` most-rated items (the paper's *popular set* builder)."""
        ranked = sorted(
            self._items,
            key=lambda item: (-self.item_popularity(item), item),
        )
        return ranked[:n]

    def most_controversial_items(self, n: int, within_top_popular: int | None = None) -> list[int]:
        """The ``n`` items with the highest rating variance.

        When ``within_top_popular`` is given, candidates are restricted to the
        that many most popular items — this is exactly how the paper builds
        its *diversity set* (25 highest-variance movies within the top-200
        popular ones).
        """
        candidates: Sequence[int] = self._items
        if within_top_popular is not None:
            candidates = self.top_popular_items(within_top_popular)
        ranked = sorted(
            candidates,
            key=lambda item: (-self.item_rating_variance(item), item),
        )
        return ranked[:n]

    def leave_out_split(
        self, holdout_fraction: float, seed: int = 0
    ) -> tuple["RatingsDataset", "RatingsDataset"]:
        """Randomly split into (train, holdout) by rating.

        Used by the user-study simulator to hide "true" preferences from the
        recommender while keeping them available to the satisfaction oracle.
        """
        if not (0.0 < holdout_fraction < 1.0):
            raise DataError("holdout_fraction must be strictly between 0 and 1")
        import random

        rng = random.Random(seed)
        shuffled = list(self._ratings)
        rng.shuffle(shuffled)
        cut = int(len(shuffled) * holdout_fraction)
        holdout = shuffled[:cut]
        train = shuffled[cut:]
        return (
            RatingsDataset(train, name=f"{self.name}-train"),
            RatingsDataset(holdout, name=f"{self.name}-holdout"),
        )


def dataset_from_tuples(
    rows: Iterable[tuple[int, int, float] | tuple[int, int, float, int]],
    name: str = "ratings",
) -> RatingsDataset:
    """Build a dataset from ``(user, item, rating[, timestamp])`` tuples."""
    ratings = []
    for row in rows:
        if len(row) == 3:
            user_id, item_id, value = row  # type: ignore[misc]
            timestamp = 0
        else:
            user_id, item_id, value, timestamp = row  # type: ignore[misc]
        ratings.append(Rating(int(user_id), int(item_id), float(value), int(timestamp)))
    return RatingsDataset(ratings, name=name)
