"""Baseline top-k algorithms GRECA is compared against.

The paper measures GRECA's efficiency as the percentage of sequential
accesses "compared to a naive algorithm which entirely scans all lists"
(Section 4.2).  Two baselines are provided:

* :class:`NaiveFullScan` — reads every entry of every list (100% SA) and
  computes exact scores; it is also the correctness oracle used by the test
  suite.
* :class:`ThresholdAlgorithmBaseline` — a TA-style variant that scans the
  preference lists sequentially and, for every newly encountered item,
  resolves all of its remaining components through random accesses (the
  access pattern the paper argues against in Section 3.1, where scoring a
  single item costs ``T * n(n-1)/2`` extra accesses).

Batched execution
-----------------

Both baselines run, by default, on the same batched columnar engine as GRECA
(``batched=True``): the naive scan drains each list through one
:meth:`~repro.core.lists.SortedAccessList.drain` call, and the TA-style
baseline *replays* its round-robin schedule analytically on the columnar
substrate — item scores, per-round thresholds and the first-encounter round
of every item are computed in a handful of vectorised passes, after which the
sequential accesses are committed in bulk and the random accesses are counted
from the schedule (every scored item costs exactly ``n - 1`` preference RAs,
plus a one-time ``n(n-1)/2 * (1 + T)`` affinity resolution).  The per-entry
interpreters are retained (``batched=False``) as the reference semantics;
``tests/test_engine_properties.py`` and the golden grid assert that both
paths report identical items and access counts.  (The batched replay scores
all items in one matrix product where the reference scores one column at a
time, so individual scores agree only up to BLAS summation order — a
sub-ulp gap; the stopping rule's 1e-9 tolerance and the strictly separated
random scores of the test substrates keep the replayed schedule and ranking
identical, which is what the harness pins.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.consensus import ConsensusFunction
from repro.core.greca import GrecaIndex
from repro.core.lists import AccessCounter, total_entries
from repro.core.scoring import consensus_scores, preference_matrix
from repro.exceptions import AlgorithmError


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline top-k computation."""

    items: tuple[int, ...]
    scores: Mapping[int, float]
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    consensus: str
    k: int

    @property
    def percent_sequential_accesses(self) -> float:
        """Percentage of entries read sequentially."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries

    @property
    def percent_total_accesses(self) -> float:
        """Percentage counting both sequential and random accesses."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * (self.sequential_accesses + self.random_accesses) / self.total_entries


def _build_all_lists(index: GrecaIndex, counter: AccessCounter):
    """Materialise every list of the index sharing one access counter."""
    preference_lists, static_lists, periodic_lists = index.build_lists(counter)
    all_lists = list(preference_lists) + list(static_lists)
    for period_index in index.period_indices:
        all_lists.extend(periodic_lists[period_index])
    return preference_lists, static_lists, periodic_lists, all_lists


class NaiveFullScan:
    """Exhaustively scan every list, score every item exactly, return the top-k.

    ``batched=True`` (the default) drains each list in one bulk block read;
    ``batched=False`` replays the per-entry reference loop.  Both record one
    SA per entry — %SA is exactly 100 either way.
    """

    def __init__(self, consensus: ConsensusFunction, k: int = 10, batched: bool = True) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.consensus = consensus
        self.k = k
        self.batched = batched

    def run(self, index: GrecaIndex) -> BaselineResult:
        """Scan all lists (counting the accesses) and return the exact top-k."""
        counter = AccessCounter()
        _, _, _, all_lists = _build_all_lists(index, counter)
        for access_list in all_lists:
            if self.batched:
                access_list.drain()
            else:
                while access_list.sequential_access() is not None:
                    pass

        scores = index.exact_scores(self.consensus)
        k = min(self.k, len(index.items))
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        top = tuple(item for item, _ in ranked[:k])
        return BaselineResult(
            items=top,
            scores={item: scores[item] for item in top},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total_entries(all_lists),
            consensus=self.consensus.name,
            k=k,
        )

    def top_k_scores(self, index: GrecaIndex) -> dict[int, float]:
        """Exact scores of every item, without access accounting (test oracle)."""
        return index.exact_scores(self.consensus)


class ThresholdAlgorithmBaseline:
    """TA-style processing: sequential scans plus per-item random accesses.

    The algorithm scans the member preference lists round-robin; every time an
    item is first encountered it immediately resolves the item's full score by
    random-accessing the remaining ``n - 1`` preference lists and *all*
    affinity lists (static and periodic), as described in the paper's Section
    3.1 discussion of why TA is expensive here.  It stops when the exact
    scores of the current top-k are at least the threshold (the score of a
    virtual item placed at the current cursors with maximal affinities).

    With ``batched=True`` (the default) the round-robin is replayed on the
    columnar substrate instead of interpreted entry-by-entry, with identical
    access accounting; see the module docstring.
    """

    def __init__(self, consensus: ConsensusFunction, k: int = 10, batched: bool = True) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.consensus = consensus
        self.k = k
        self.batched = batched

    def run(self, index: GrecaIndex) -> BaselineResult:
        """Execute the TA-style baseline and return its (exact) top-k."""
        if self.batched:
            return self._run_batched(index)
        return self._run_per_entry(index)

    # -- batched columnar execution ----------------------------------------------------

    def _run_batched(self, index: GrecaIndex) -> BaselineResult:
        """Replay the round-robin schedule analytically on the columnar lists.

        The per-entry loop's observable behaviour is fully determined by
        three per-round quantities, all computable in bulk from the sorted
        columns: the round at which each item is first surfaced (and hence
        scored), the item's exact consensus score, and the stopping threshold
        of the round.  The replay finds the stopping round, then commits the
        accesses that schedule performed: ``stop_round + 1`` SAs per
        preference list, ``n - 1`` preference RAs per scored item and the
        one-time ``n(n-1)/2 * (1 + T)`` affinity-list resolution.
        """
        counter = AccessCounter()
        preference_lists, _, _, all_lists = _build_all_lists(index, counter)
        total = total_entries(all_lists)

        n = len(index.members)
        n_items = len(index.items)
        k = min(self.k, n_items)
        n_pairs = n * (n - 1) // 2
        n_periods = len(index.period_indices)

        # Every preference list covers the full (dense) item universe, so all
        # lists exhaust together and round r reads sorted position r of each.
        exact = index.exact_scores(self.consensus)
        score_by_col = np.asarray([exact[item] for item in index.items])

        # Round at which each item column is first surfaced by any list: the
        # columnwise minimum of the inverse sort permutations.
        first_round = np.full(n_items, n_items, dtype=np.int64)
        positions = np.arange(n_items, dtype=np.int64)
        inverse = np.empty(n_items, dtype=np.int64)
        for access_list in preference_lists:
            inverse[access_list.key_index] = positions
            np.minimum(first_round, inverse, out=first_round)

        # Threshold after round r: a virtual item sitting at every cursor
        # with maximal (= 1) affinities, evaluated for all rounds at once.
        cursor_matrix = np.stack([np.asarray(lst.scores) for lst in preference_lists])
        max_affinity = np.ones((n, n)) - np.eye(n)
        virtual = preference_matrix(cursor_matrix, max_affinity)
        thresholds = consensus_scores(self.consensus, virtual, index.scale)

        # Replay the stopping schedule: maintain the top-k scored so far in a
        # min-heap; stop at the first round whose k-th best meets the threshold.
        order_by_round = np.argsort(first_round, kind="stable")
        heap: list[float] = []
        scored = 0
        stop_round = n_items - 1
        for round_index in range(n_items):
            while scored < n_items and first_round[order_by_round[scored]] == round_index:
                score = float(score_by_col[order_by_round[scored]])
                scored += 1
                if len(heap) < k:
                    heapq.heappush(heap, score)
                elif score > heap[0]:
                    heapq.heapreplace(heap, score)
            if scored >= k and heap[0] >= float(thresholds[round_index]) - 1e-9:
                stop_round = round_index
                break

        # Commit the accesses the replayed schedule performed.
        for access_list in preference_lists:
            access_list.sequential_block(stop_round + 1)
        scored_cols = np.flatnonzero(first_round <= stop_round)
        counter.record_random(int(scored_cols.size) * (n - 1))
        if scored_cols.size:
            counter.record_random(n_pairs * (1 + n_periods))

        ranked = sorted(
            ((index.items[col], float(score_by_col[col])) for col in scored_cols),
            key=lambda pair: (-pair[1], pair[0]),
        )
        top = ranked[:k]
        return BaselineResult(
            items=tuple(item for item, _ in top),
            scores=dict(top),
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total,
            consensus=self.consensus.name,
            k=k,
        )

    # -- per-entry reference execution -------------------------------------------------

    def _run_per_entry(self, index: GrecaIndex) -> BaselineResult:
        """The retained entry-at-a-time reference interpreter (seed semantics)."""
        counter = AccessCounter()
        preference_lists, static_lists, periodic_lists, all_lists = _build_all_lists(
            index, counter
        )
        total = total_entries(all_lists)

        members = index.members
        n = len(members)
        k = min(self.k, len(index.items))

        # Pairwise affinities resolved once through random accesses on demand.
        pair_affinity: dict[tuple[int, int], float] = {}

        def resolve_affinity(left: int, right: int) -> float:
            pair = index._pair(left, right)
            if pair in pair_affinity:
                return pair_affinity[pair]
            static_list = next(
                (lst for lst in static_lists if lst.peek(pair) or pair in {e.key for e in lst.entries}),
                None,
            )
            static = static_list.random_access(pair) if static_list is not None else 0.0
            periodic = []
            for period_index in index.period_indices:
                period_list = next(
                    (
                        lst
                        for lst in periodic_lists[period_index]
                        if pair in {e.key for e in lst.entries}
                    ),
                    None,
                )
                periodic.append(
                    period_list.random_access(pair) if period_list is not None else 0.0
                )
            value = index.combine(static, periodic)
            pair_affinity[pair] = value
            return value

        scores: dict[int, float] = {}

        def score_item(item: int) -> float:
            vector = np.zeros(n)
            for row, member in enumerate(members):
                observed = seen.get((member, item))
                if observed is None:
                    # Random access into the member's preference list.
                    observed = preference_lists[row].random_access(item)
                vector[row] = observed
            affinity = np.zeros((n, n))
            for row in range(n):
                for col in range(row + 1, n):
                    value = resolve_affinity(members[row], members[col])
                    affinity[row, col] = affinity[col, row] = value
            prefs = preference_matrix(vector[:, None], affinity)
            return float(consensus_scores(self.consensus, prefs, index.scale)[0])

        seen: dict[tuple[int, int], float] = {}
        exhausted = False
        while not exhausted:
            exhausted = True
            cursor_values = []
            for row, access_list in enumerate(preference_lists):
                entry = access_list.sequential_access()
                if entry is None:
                    cursor_values.append(0.0)
                    continue
                exhausted = False
                seen[(members[row], entry.key)] = entry.score
                cursor_values.append(entry.score)
                if entry.key not in scores:
                    scores[entry.key] = score_item(entry.key)

            if len(scores) >= k:
                # Threshold: virtual item at the cursors with maximal (=1) affinities.
                cursors = np.array(cursor_values)
                max_affinity = np.ones((n, n)) - np.eye(n)
                virtual = preference_matrix(cursors[:, None], max_affinity)
                threshold = float(consensus_scores(self.consensus, virtual, index.scale)[0])
                kth = sorted(scores.values(), reverse=True)[k - 1]
                if kth >= threshold - 1e-9:
                    break

        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        top = tuple(item for item, _ in ranked[:k])
        return BaselineResult(
            items=top,
            scores={item: scores[item] for item in top},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total,
            consensus=self.consensus.name,
            k=k,
        )
