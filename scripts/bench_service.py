"""Measure service latency/throughput and append to ``BENCH_service.json``.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_service.py --label pr7-service

Starts a :class:`repro.service.GrecaService` over the default scalability
substrate (or the scaled-down smoke substrate with ``--smoke``), fires the
deterministic load generator at it (N closed-loop concurrent clients), and
records p50/p95/p99 end-to-end latency, throughput, the mean queue/dispatch
/merge split and the largest coalesced batch — plus a ``bit_identical``
flag from re-running every query through the serial reference path.  Each
invocation appends one record to ``BENCH_service.json`` (alongside
``BENCH_engine.json``) so the serving-latency trajectory accumulates across
PRs; ``--output`` writes a standalone record instead (the CI-artifact mode).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.experiments.scalability import ScalabilityConfig  # noqa: E402
from repro.parallel import available_cpus  # noqa: E402
from repro.service import (  # noqa: E402
    GrecaService,
    ServiceConfig,
    default_queries,
    run_load,
    summarise_latencies,
)

#: The scaled-down substrate for quick/CI runs (matches the service CLI).
SMOKE_CONFIG = ScalabilityConfig(
    n_users=40,
    n_items=300,
    n_ratings=3_000,
    n_participants=12,
    n_groups=2,
    group_size=3,
)


async def bench_service(args: argparse.Namespace) -> dict[str, object]:
    service = GrecaService(
        config=ServiceConfig(
            n_workers=args.workers,
            executor=None if args.executor == "reference" else args.executor,
            max_batch_size=args.batch_size,
            max_batch_delay=args.batch_delay,
        ),
        scalability_config=SMOKE_CONFIG if args.smoke else None,
    )
    setup_start = time.perf_counter()
    await service.start()
    setup_seconds = time.perf_counter() - setup_start
    try:
        clients = default_queries(
            service.environment, args.clients, args.queries, seed=args.seed
        )
        # One warmup pass so the recorded numbers measure the warm substrate
        # (pools built, factories exported, worker memos primed), not
        # first-dispatch construction costs.
        await run_load(service, [clients[0][:1]])
        responses, wall_seconds = await run_load(service, clients)
        summary = summarise_latencies(
            [response.latency for response in responses], wall_seconds, args.clients
        )
        bit_identical = all(
            response.record == service.reference_record(response.query)
            for response in responses
        )
        print(summary.format_summary())
        if not bit_identical:  # the record must never hide an equivalence break
            raise SystemExit("service responses diverged from the serial reference")
        return {
            "n_clients": args.clients,
            "n_queries": summary.n_queries,
            "n_workers": args.workers,
            "n_cpus": available_cpus(),
            "executor": args.executor,
            "max_batch_size": args.batch_size,
            "batch_delay_seconds": args.batch_delay,
            "smoke_substrate": bool(args.smoke),
            "setup_seconds": round(setup_seconds, 4),
            "wall_seconds": round(summary.wall_seconds, 4),
            "throughput_qps": round(summary.throughput_qps, 2),
            "p50_ms": round(summary.p50_ms, 3),
            "p95_ms": round(summary.p95_ms, 3),
            "p99_ms": round(summary.p99_ms, 3),
            "mean_queue_ms": round(summary.mean_queue_ms, 3),
            "mean_dispatch_ms": round(summary.mean_dispatch_ms, 3),
            "mean_merge_ms": round(summary.mean_merge_ms, 3),
            "max_batch": summary.max_batch,
            "bit_identical": bit_identical,
        }
    finally:
        await service.stop()


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:  # pragma: no cover - git metadata is best-effort
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="short tag for this measurement")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients")
    parser.add_argument("--queries", type=int, default=10, help="queries per client")
    parser.add_argument("--workers", type=int, default=2, help="pool worker count")
    parser.add_argument(
        "--executor",
        default="supervised",
        help='dispatch backend, or "reference" for the in-process serial path',
    )
    parser.add_argument("--batch-size", type=int, default=32, help="coalescing cap")
    parser.add_argument(
        "--batch-delay", type=float, default=0.005, help="coalescing window (s)"
    )
    parser.add_argument("--seed", type=int, default=17, help="load-generator seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the scaled-down smoke substrate (CI-friendly)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the record to PATH instead of appending to BENCH_service.json",
    )
    args = parser.parse_args(argv)

    record = {
        "label": args.label,
        "git": git_revision(),
        "python": platform.python_version(),
        "service": asyncio.run(bench_service(args)),
    }

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    else:
        target = os.path.join(ROOT, "BENCH_service.json")
        history = []
        if os.path.exists(target):
            with open(target, "r", encoding="utf-8") as handle:
                history = json.load(handle)
        history.append(record)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
