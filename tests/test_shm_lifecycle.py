"""Lifecycle of the shared-memory shipment segments (:mod:`repro.parallel.shm`).

The zero-copy path places the factory substrate in ``/dev/shm``-backed
segments, so the one unforgivable failure mode is a *leak*: a segment that
outlives its registry.  These tests pin the unlink guarantee in every exit
mode the issue names — normal completion, a worker exception, and a
``KeyboardInterrupt``-style pool shutdown — always asserting the strongest
observable fact: ``SharedMemory(name=...)`` raises ``FileNotFoundError``
once the registry is done with a segment.
"""

from __future__ import annotations

import gc
import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.consensus import make_consensus
from repro.core.greca import GrecaIndexFactory
from repro.exceptions import AlgorithmError
from repro.parallel import (
    GroupEvalTask,
    PersistentShardExecutor,
    SharedArrayRegistry,
    build_payloads,
    evaluate_tasks,
    group_key,
    plan_shards,
    run_shard,
)


def assert_unlinked(names):
    """Every named segment must be gone from the system namespace."""
    assert names, "expected at least one shared segment to have been created"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.fixture()
def tiny_workload():
    """One factory + two tasks, small enough for process-pool lifecycle tests."""
    rng = np.random.default_rng(7)
    members = [1, 2, 3]
    items = list(range(101, 141))
    aprefs = {
        member: {item: round(float(rng.uniform(0.0, 5.0)), 3) for item in items}
        for member in members
    }
    factory = GrecaIndexFactory(members=members, aprefs=aprefs)
    key = group_key(members)
    static = {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.8}

    def task(k: int) -> GroupEvalTask:
        return GroupEvalTask(
            group=key,
            k=k,
            consensus=make_consensus("AP"),
            static=static,
            periodic={},
            averages={},
            time_model="discrete",
        )

    return {key: factory}, [task(3), task(5)]


# -- registry-level guarantees ------------------------------------------------------------------


def test_registry_unlinks_on_normal_context_exit(tiny_workload):
    factories, _ = tiny_workload
    with SharedArrayRegistry() as registry:
        handle = registry.export(next(iter(factories.values())))
        names = registry.segment_names
        # While open, the segments are attachable (and carry the real bytes).
        probe = shared_memory.SharedMemory(name=handle.matrix.segment)
        probe.close()
    assert registry.closed
    assert_unlinked(names)


def test_registry_unlinks_when_the_body_raises(tiny_workload):
    factories, _ = tiny_workload
    with pytest.raises(RuntimeError):
        with SharedArrayRegistry() as registry:
            registry.export(next(iter(factories.values())))
            names = registry.segment_names
            raise RuntimeError("boom")
    assert_unlinked(names)


def test_registry_finalizer_is_a_gc_backstop(tiny_workload):
    """An abandoned registry (no close, no with) still unlinks at collection."""
    factories, _ = tiny_workload
    registry = SharedArrayRegistry()
    registry.export(next(iter(factories.values())))
    names = registry.segment_names
    del registry
    gc.collect()
    assert_unlinked(names)


def test_registry_refuses_exports_after_close(tiny_workload):
    factories, _ = tiny_workload
    registry = SharedArrayRegistry()
    registry.close()
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        registry.export(next(iter(factories.values())))


# -- evaluate_tasks: the ephemeral registry ------------------------------------------------------


@pytest.fixture()
def recording_registries(monkeypatch):
    """Capture every registry evaluate_tasks creates for itself."""
    import repro.parallel.evaluation as evaluation

    created: list[SharedArrayRegistry] = []

    class RecordingRegistry(SharedArrayRegistry):
        def __init__(self, *args, **kwargs) -> None:
            super().__init__(*args, **kwargs)
            created.append(self)

    monkeypatch.setattr(evaluation, "SharedArrayRegistry", RecordingRegistry)
    return created


def test_ephemeral_registry_unlinked_after_normal_completion(
    tiny_workload, recording_registries
):
    factories, tasks = tiny_workload
    records = evaluate_tasks(tasks, factories, n_shards=2, executor="process")
    assert len(records) == len(tasks)
    (registry,) = recording_registries
    assert registry.closed
    assert_unlinked(registry.segment_names)


def test_ephemeral_registry_unlinked_after_worker_exception(
    tiny_workload, recording_registries
):
    """A task that raises inside the worker must not leak segments."""
    factories, tasks = tiny_workload
    poisoned = tasks + [
        GroupEvalTask(
            group=tasks[0].group,
            k=0,  # Greca rejects k <= 0 — worker-side, after shipment
            consensus=tasks[0].consensus,
            static=tasks[0].static,
            periodic={},
            averages={},
            time_model="discrete",
        )
    ]
    with pytest.raises(AlgorithmError):
        evaluate_tasks(poisoned, factories, n_shards=2, executor="process")
    (registry,) = recording_registries
    assert registry.closed
    assert_unlinked(registry.segment_names)


def test_string_persistent_backend_is_shut_down_and_unlinked(
    tiny_workload, recording_registries
):
    """executor='persistent' resolved from a string must not leak workers/segments."""
    factories, tasks = tiny_workload
    records = evaluate_tasks(tasks, factories, n_shards=2, executor="persistent")
    assert len(records) == len(tasks)
    (registry,) = recording_registries
    assert registry.closed
    assert_unlinked(registry.segment_names)


def test_ephemeral_registry_unlinked_after_worker_crash(
    tiny_workload, recording_registries
):
    """A worker killed by ``os._exit`` mid-shard must not leak segments.

    The fault fires at task position 1, *after* the worker has materialised
    the shipped factory — so the process dies holding live views on the
    segments.  Unlink is owned by the parent-side registry, not by worker
    exit handlers (``os._exit`` runs none), so the ephemeral registry still
    closes and every segment is gone.
    """
    from concurrent.futures.process import BrokenProcessPool

    from repro.parallel import FaultPlan, FaultSpec

    factories, tasks = tiny_workload
    crash = FaultPlan((FaultSpec(shard=0, position=1, mode="crash", fires=1),))
    with pytest.raises(BrokenProcessPool):
        evaluate_tasks(
            tasks, factories, n_shards=1, executor="process", fault_plan=crash
        )
    (registry,) = recording_registries
    assert registry.closed
    assert_unlinked(registry.segment_names)


# -- KeyboardInterrupt-style shutdown ------------------------------------------------------------


def test_interrupted_run_unlinks_segments_and_stops_the_pool(tiny_workload):
    """A KeyboardInterrupt mid-flight tears everything down, leak-free.

    The pool and registry are context-managed exactly the way the
    environment's ``close()`` path releases them; the interrupt propagates,
    the workers are shut down, and every ``/dev/shm`` entry is gone.
    """
    factories, tasks = tiny_workload
    pool = PersistentShardExecutor(n_workers=2)
    registry = SharedArrayRegistry()
    with pytest.raises(KeyboardInterrupt):
        with pool, registry:
            records = evaluate_tasks(tasks, factories, executor=pool, registry=registry)
            assert len(records) == len(tasks)
            names = registry.segment_names
            assert pool.warm
            raise KeyboardInterrupt  # the moment ^C lands between dispatches
    assert not pool.warm
    assert registry.closed
    assert_unlinked(names)


def test_unlink_keeps_live_worker_mappings_valid(tiny_workload):
    """POSIX semantics: in-process views survive the unlink; new attaches fail.

    This is what lets the registry unlink eagerly even while a persistent
    pool still holds materialised factories mapped from the segments.
    """
    factories, tasks = tiny_workload
    registry = SharedArrayRegistry()
    handle = registry.export(next(iter(factories.values())))
    payload = build_payloads(plan_shards(len(tasks), 1), tasks, {tasks[0].group: handle})[0]
    before = run_shard(payload)  # materialises the factory in-process
    registry.close()
    assert_unlinked(registry.segment_names)
    # The shipped handle can no longer be materialised by a *new* process,
    # but the records computed from still-mapped views were already correct.
    reference = evaluate_tasks(tasks, factories)
    assert list(before) == reference


# -- affinity-column segments --------------------------------------------------------------------


@pytest.fixture()
def columnar_workload(tiny_workload):
    """The tiny workload with its tasks swapped to the columnar affinity shape."""
    from dataclasses import replace

    from repro.core.affinity import AffinityColumns

    factories, tasks = tiny_workload
    columns = AffinityColumns.from_components(tasks[0].static, {}, {})
    columnar = [
        replace(task, static={}, periodic={}, averages={}, affinity_ref=columns, n_periods=0)
        for task in tasks
    ]
    return factories, columnar, columns


def test_affinity_segments_unlink_on_context_exit(columnar_workload):
    _, _, columns = columnar_workload
    with SharedArrayRegistry() as registry:
        handle = registry.export_affinity(columns)
        names = registry.segment_names
        assert handle.segment_names() <= set(names)
        # Memoised per columns object: the same export, the same segment.
        assert registry.export_affinity(columns) is handle
        probe = shared_memory.SharedMemory(name=handle.static.segment)
        probe.close()
    assert_unlinked(names)


def test_affinity_segments_unlink_when_the_body_raises(columnar_workload):
    _, _, columns = columnar_workload
    with pytest.raises(RuntimeError):
        with SharedArrayRegistry() as registry:
            registry.export_affinity(columns)
            names = registry.segment_names
            raise RuntimeError("boom")
    assert_unlinked(names)


def test_affinity_export_refused_after_close(columnar_workload):
    from repro.exceptions import ConfigurationError

    _, _, columns = columnar_workload
    registry = SharedArrayRegistry()
    registry.close()
    with pytest.raises(ConfigurationError):
        registry.export_affinity(columns)


def test_ephemeral_registry_with_columnar_tasks_unlinked(
    columnar_workload, recording_registries
):
    """The shm-affinity default path leaks nothing after a process dispatch."""
    factories, tasks, _ = columnar_workload
    records = evaluate_tasks(tasks, factories, n_shards=2, executor="process")
    assert len(records) == len(tasks)
    (registry,) = recording_registries
    assert registry.closed
    assert_unlinked(registry.segment_names)


def test_ephemeral_registry_with_columnar_tasks_unlinked_after_worker_exception(
    columnar_workload, recording_registries
):
    from dataclasses import replace

    from repro.exceptions import AlgorithmError

    factories, tasks, _ = columnar_workload
    poisoned = tasks + [replace(tasks[0], k=0)]  # Greca rejects k <= 0 worker-side
    with pytest.raises(AlgorithmError):
        evaluate_tasks(poisoned, factories, n_shards=2, executor="process")
    (registry,) = recording_registries
    assert registry.closed
    assert_unlinked(registry.segment_names)


def test_unlink_purges_local_affinity_and_index_caches(columnar_workload):
    """In-process attachments of affinity segments are forgotten on unlink."""
    from repro.parallel import shm

    factories, tasks, _ = columnar_workload
    registry = SharedArrayRegistry()
    records = evaluate_tasks(
        tasks, factories, n_shards=1, executor="serial", shipment="shm", registry=registry
    )
    assert len(records) == len(tasks)
    names = set(registry.segment_names)
    assert any(handle.segment_names() & names for handle in shm._AFFINITY_CACHE)
    assert any(
        (key[0].segment_names() | key[1].segment_names()) & names
        for key in shm._INDEX_CACHE
    )
    registry.close()
    assert all(not (handle.segment_names() & names) for handle in shm._AFFINITY_CACHE)
    assert all(
        not ((key[0].segment_names() | key[1].segment_names()) & names)
        for key in shm._INDEX_CACHE
    )
    assert_unlinked(registry.segment_names)


# -- worker-side memo bounds ---------------------------------------------------------------------


def _fresh_factory(seed: int):
    """A small distinct factory (different aprefs per seed)."""
    rng = np.random.default_rng(seed)
    members = [1, 2, 3]
    items = list(range(201, 221))
    aprefs = {
        member: {item: round(float(rng.uniform(0.0, 5.0)), 3) for item in items}
        for member in members
    }
    return GrecaIndexFactory(members=members, aprefs=aprefs)


def test_factory_memo_is_lru_bounded(monkeypatch):
    """A warm worker's factory memo evicts past the cap instead of growing forever."""
    from repro.parallel import shm

    monkeypatch.setattr(shm, "FACTORY_CACHE_MAX", 2)
    with SharedArrayRegistry() as registry:
        handles = [registry.export(_fresh_factory(seed)) for seed in (1, 2, 3)]
        first = shm.materialise_factory(handles[0])
        for handle in handles:
            shm.materialise_factory(handle)
        assert len([h for h in handles if h in shm._FACTORY_CACHE]) <= 2
        assert handles[0] not in shm._FACTORY_CACHE  # least recently used went first
        # An evicted factory re-materialises transparently (fresh attach).
        again = shm.materialise_factory(handles[0])
        assert again is not first
        assert again.members == first.members and again.items == first.items


def test_factory_memo_lru_order_respects_hits(monkeypatch):
    from repro.parallel import shm

    monkeypatch.setattr(shm, "FACTORY_CACHE_MAX", 2)
    with SharedArrayRegistry() as registry:
        handles = [registry.export(_fresh_factory(seed)) for seed in (11, 12, 13)]
        shm.materialise_factory(handles[0])
        shm.materialise_factory(handles[1])
        shm.materialise_factory(handles[0])  # refresh 0 → 1 becomes the LRU entry
        shm.materialise_factory(handles[2])
        assert handles[0] in shm._FACTORY_CACHE
        assert handles[1] not in shm._FACTORY_CACHE
        assert handles[2] in shm._FACTORY_CACHE


def test_index_memo_is_lru_bounded(monkeypatch, columnar_workload):
    """The per-process index memo for handle-addressed tasks stays bounded."""
    from dataclasses import replace

    from repro.parallel import shm

    monkeypatch.setattr(shm, "INDEX_CACHE_MAX", 1)
    factories, tasks, _ = columnar_workload
    # Two distinct item restrictions → two distinct index memo keys.
    variants = [
        replace(tasks[0], items=tuple(range(101, 121))),
        replace(tasks[1], items=tuple(range(101, 131))),
    ]
    with SharedArrayRegistry() as registry:
        records = evaluate_tasks(
            variants, factories, n_shards=1, executor="serial", shipment="shm", registry=registry
        )
        assert len(records) == 2
        assert len(shm._INDEX_CACHE) <= 1


# -- service shutdown ----------------------------------------------------------------------------


def test_service_sigterm_drains_and_unlinks_segments():
    """SIGTERM against a live service drains in-flight work and empties /dev/shm.

    The CLI's serve mode answers a warmup query (so segments exist), prints
    the segment names and READY, then blocks on the signal.  The graceful
    path must exit 0 with every printed segment unlinked — the service-kill
    contract of the serving layer's shutdown handler.
    """
    import os
    import signal
    import subprocess
    import sys

    from multiprocessing import resource_tracker

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--smoke", "--serve-seconds", "120"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=root,
    )
    segments: list[str] = []
    tail = ""
    try:
        for line in proc.stdout:
            if line.startswith("SEGMENTS"):
                segments = line.split()[1:]
            if line.startswith("READY"):
                break
        assert segments, "service printed no shm segments before READY"
        for name in segments:  # live while the service is serving
            probe = shared_memory.SharedMemory(name=name)
            try:  # a probe attach is not ownership — undo its registration
                resource_tracker.unregister(
                    getattr(probe, "_name", probe.name), "shared_memory"
                )
            except Exception:
                pass
            probe.close()
        proc.send_signal(signal.SIGTERM)
        tail, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == 0, tail
    assert "CLEAN" in tail, tail
    assert_unlinked(segments)


# -- generation tokens: recycled names must never alias stale caches ----------------------------


def test_recycled_segment_name_does_not_alias_stale_affinity_cache():
    """A same-shape re-export under a recycled name must not serve stale bytes.

    Simulates a warm persistent worker: its handle-keyed caches and attached
    mappings survive the parent registry's unlink (the parent-side purge
    runs in the parent process only).  When the OS recycles the segment name
    for a later export of the identical layout — guaranteed once epochs
    re-export refreshed substrates over the same shapes — a handle equal in
    names + shapes would alias the dead segment's content.  The export
    generation token is what keeps the handles distinct.
    """
    from dataclasses import replace

    from repro.core.affinity import AffinityColumns
    from repro.parallel import shm

    old_columns = AffinityColumns.from_components(
        {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.8}, {}, {}
    )
    new_columns = AffinityColumns.from_components(
        {(1, 2): 0.9, (1, 3): 0.5, (2, 3): 0.2}, {}, {}
    )

    registry = SharedArrayRegistry()
    old_handle = registry.export_affinity(old_columns)
    materialised = shm.materialise_affinity(old_handle)
    name = old_handle.static.segment
    stale_mapping = shm._ATTACHED[name]
    registry.close()
    # Warm-worker simulation: the worker never observed the parent's purge.
    shm._cache_put(shm._AFFINITY_CACHE, old_handle, materialised, shm.AFFINITY_CACHE_MAX)
    shm._ATTACHED[name] = stale_mapping

    # The new epoch's export lands on the recycled name with the same layout.
    second = SharedArrayRegistry()
    try:
        fresh_handle = second.export_affinity(new_columns)
        recycled = shared_memory.SharedMemory(name=name, create=True, size=1024)
        # Mark the hand-made segment as owned so the attach path does not
        # strip its tracker registration (we unlink it ourselves below).
        shm._OWNED_NAMES.add(name)
        try:
            view = np.frombuffer(
                recycled.buf,
                dtype=np.float64,
                count=3,
                offset=fresh_handle.static.offset,
            )
            view[:] = new_columns.static
            del view
            shipped = shm.rewrite_affinity_handle(
                fresh_handle, {fresh_handle.static.segment: name}
            )
            served = shm.materialise_affinity(shipped)
            assert served.static.tolist() == new_columns.static.tolist()
        finally:
            recycled.unlink()
            try:
                recycled.close()
            except BufferError:
                shm._ZOMBIES.append(recycled)
    finally:
        second.close()
        shm._forget_segments([name])


def test_reexport_under_recycled_names_invalidates_stale_index_entries(monkeypatch):
    """After a heal re-export, run_shard must not serve a pre-heal index.

    The supervisor's self-healing path re-exports vanished segments and
    rewrites pending payload handles — but a warm worker may still hold
    ``_INDEX_CACHE`` entries (and attached mappings) from segments whose
    names the re-export now reuses.  Pre-fix, the rewritten handles compare
    equal to the stale ones (same names, same shapes), so the worker serves
    an index built from the *old* substrate.  The purge path must invalidate
    index entries derived from a re-exported factory too.
    """
    from dataclasses import replace

    from repro.core.affinity import AffinityColumns
    from repro.parallel import run_task
    from repro.parallel import shm

    def build_factory(seed):
        rng = np.random.default_rng(seed)
        members = [1, 2, 3]
        items = list(range(101, 141))
        aprefs = {
            member: {item: round(float(rng.uniform(0.0, 5.0)), 3) for item in items}
            for member in members
        }
        return GrecaIndexFactory(members=members, aprefs=aprefs, max_apref=5.0)

    static = {(1, 2): 0.4, (1, 3): 0.1, (2, 3): 0.8}
    key = group_key([1, 2, 3])

    def payload_for(registry, factory, columns):
        handle = registry.export(factory)
        affinity = registry.export_affinity(columns)
        task = GroupEvalTask(
            group=key,
            k=3,
            consensus=make_consensus("AP"),
            static={},
            periodic={},
            averages={},
            time_model="discrete",
            affinity_ref=affinity,
            n_periods=0,
        )
        return build_payloads(plan_shards(1, 1), [task], {key: handle})[0]

    old_factory = build_factory(3)
    new_factory = build_factory(4)

    # Serial reference for the NEW substrate, computed before any cache
    # pollution (dict-based task: the columnar path must match it exactly).
    reference = run_task(
        GroupEvalTask(
            group=key,
            k=3,
            consensus=make_consensus("AP"),
            static=static,
            periodic={},
            averages={},
            time_model="discrete",
        ),
        new_factory,
    )

    first = SharedArrayRegistry()
    payload_old = payload_for(
        first, old_factory, AffinityColumns.from_components(static, {}, {})
    )
    (old_record,) = run_shard(payload_old)
    assert old_record != reference  # the two substrates must disagree
    old_names = list(first.segment_names)
    stale_entries = dict(shm._INDEX_CACHE)
    stale_mappings = {n: shm._ATTACHED[n] for n in old_names if n in shm._ATTACHED}
    assert stale_entries and stale_mappings
    first.close()
    # Warm-worker simulation: the worker never observed the parent's purge.
    for cache_key, index in stale_entries.items():
        shm._cache_put(shm._INDEX_CACHE, cache_key, index, shm.INDEX_CACHE_MAX)
    shm._ATTACHED.update(stale_mappings)

    second = SharedArrayRegistry()
    try:
        payload_new = payload_for(
            second, new_factory, AffinityColumns.from_components(static, {}, {})
        )
        # The new exports vanish (foreign unlink / dead-worker tracker)...
        for name in list(second.segment_names):
            victim = shared_memory.SharedMemory(name=name)
            victim.unlink()
            try:
                victim.close()
            except BufferError:
                shm._ZOMBIES.append(victim)
        # ...and the heal's re-export lands on the OLD, recycled names.
        real_shared_memory = shared_memory.SharedMemory
        pending_names = list(old_names)

        def recycling(name=None, create=False, size=0):
            if create and name is None and pending_names:
                return real_shared_memory(
                    name=pending_names.pop(0), create=True, size=size
                )
            if name is None:
                return real_shared_memory(create=create, size=size)
            return real_shared_memory(name=name, create=create, size=size)

        monkeypatch.setattr(shm.shared_memory, "SharedMemory", recycling)
        mapping = second.reexport_missing()
        monkeypatch.undo()
        assert set(mapping.values()) == set(old_names)

        healed = replace(
            payload_new,
            factories={
                key: shm.rewrite_factory_handle(payload_new.factories[key], mapping)
            },
            tasks=tuple(
                replace(
                    task,
                    affinity_ref=shm.rewrite_affinity_handle(task.affinity_ref, mapping),
                )
                for task in payload_new.tasks
            ),
        )
        (served,) = run_shard(healed)
        assert served == reference
    finally:
        second.close()
        shm._forget_segments(old_names)


def test_purge_stale_drops_retired_generation_caches(columnar_workload):
    """retire_stale + purge_stale: retired-epoch caches die, live ones survive."""
    from dataclasses import replace

    from repro.parallel import shm

    factories, tasks, columns = columnar_workload
    with SharedArrayRegistry() as registry:
        records = evaluate_tasks(
            tasks, factories, n_shards=1, executor="serial", shipment="shm", registry=registry
        )
        assert len(records) == len(tasks)
        floor = registry.generation_floor
        assert floor > 0
        # Nothing is below the live floor yet.
        assert shm.purge_stale(floor) == 0
        old_factory_handle = registry.export(next(iter(factories.values())))

        # New epoch: a refreshed factory object replaces the old one.
        new_factory = _fresh_factory(99)
        new_handle = registry.export(new_factory)
        assert new_handle.generation > old_factory_handle.generation
        stale_factories = dict(shm._FACTORY_CACHE)
        stale_affinities = dict(shm._AFFINITY_CACHE)
        stale_indexes = dict(shm._INDEX_CACHE)
        retired = registry.retire_stale(live_factories=[new_factory], live_columns=[])
        assert retired
        assert_unlinked(retired)
        # Warm-worker simulation: a pool worker never observes the parent's
        # retire-time purge; restore its view of the caches.
        for handle, factory in stale_factories.items():
            shm._cache_put(shm._FACTORY_CACHE, handle, factory, shm.FACTORY_CACHE_MAX)
        for handle, cols in stale_affinities.items():
            shm._cache_put(shm._AFFINITY_CACHE, handle, cols, shm.AFFINITY_CACHE_MAX)
        for cache_key, index in stale_indexes.items():
            shm._cache_put(shm._INDEX_CACHE, cache_key, index, shm.INDEX_CACHE_MAX)
        new_floor = registry.generation_floor
        assert new_floor == new_handle.generation
        # The worker-side purge at the new floor drops every retired entry.
        shm.materialise_factory(new_handle)
        purged = shm.purge_stale(new_floor)
        assert purged > 0
        assert all(h.generation >= new_floor for h in shm._FACTORY_CACHE)
        assert all(h.generation >= new_floor for h in shm._AFFINITY_CACHE)
        assert all(
            k[0].generation >= new_floor and k[1].generation >= new_floor
            for k in shm._INDEX_CACHE
        )
        assert shm.purge_stale(new_floor) == 0  # idempotent


def test_retired_epoch_segments_unlink_after_in_flight_reader_drains():
    """apply_delta unlinks retired-epoch segments; in-flight mappings survive.

    POSIX unlink removes the *name*, not the bytes: a reader that attached a
    segment before the epoch swap (a query in flight) keeps a valid mapping
    until it closes, and only new attaches fail.  This pins both halves of
    the drain contract — every name in ``DeltaReport.retired_segments`` is
    unattachable immediately after the swap, while attachments opened before
    it still read the retired epoch's exact bytes; once the last reader
    closes, the kernel reclaims the memory.  The next dispatch then serves
    the new epoch from fresh segments through the *same* registry, and
    closing the environment leaves ``/dev/shm`` empty.
    """
    from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment
    from repro.updates import random_deltas

    config = ScalabilityConfig(
        n_users=40,
        n_items=150,
        n_ratings=1_600,
        n_participants=12,
        n_groups=3,
        seed=5,
    )
    env = ScalabilityEnvironment(config)
    try:
        groups = env.random_groups()
        env.run_records(groups, n_workers=2, executor="persistent")  # epoch-0 exports
        registry = env._shared_registry()
        names_before = registry.segment_names
        assert names_before
        # Queries in flight: attach every epoch-0 segment before the swap.
        inflight = {}
        for name in names_before:
            handle = shared_memory.SharedMemory(name=name)
            inflight[name] = (handle, bytes(handle.buf[: min(64, handle.size)]))

        delta = random_deltas(env.ratings, env.social, env.timeline, n_deltas=1, seed=11)[0]
        report = env.apply_delta(delta)
        # The affinity columns (at least) were invalidated, so the old
        # epoch's exports are dead weight — retired and unlinked at once.
        assert report.retired_segments
        assert_unlinked(report.retired_segments)
        for name in report.retired_segments:
            handle, snapshot = inflight[name]
            # The in-flight mapping still serves the retired epoch's bytes...
            assert bytes(handle.buf[: len(snapshot)]) == snapshot
        for handle, _ in inflight.values():
            handle.close()  # ...and the last reader draining frees the memory

        post_serial = env.run_records(groups)
        post = env.run_records(groups, n_workers=2, executor="persistent")
        assert post == post_serial
        # Same registry object adopted the new epoch; no retired name reused.
        assert env._shared_registry() is registry and not registry.closed
        names_after = registry.segment_names
        assert set(names_after).isdisjoint(report.retired_segments)
    finally:
        env.close()
    assert_unlinked(names_after)


# -- spool-file lifecycle: the mmap backend mirrors every unlink guarantee ----------------------


def assert_spool_deleted(names):
    """Every named spool file must be gone from the filesystem."""
    assert names, "expected at least one spool file to have been created"
    assert all(os.path.isabs(name) for name in names)
    for name in names:
        assert not os.path.exists(name), f"orphaned spool file: {name}"


def test_mmap_registry_deletes_spool_on_normal_context_exit(tiny_workload):
    factories, _ = tiny_workload
    with SharedArrayRegistry(storage="mmap") as registry:
        handle = registry.export(next(iter(factories.values())))
        names = registry.segment_names
        assert handle.matrix.storage == "mmap"
        # While open, the spool files are attachable and carry the real bytes.
        assert all(os.path.exists(name) for name in names)
        assert all(name.startswith(registry.spool_path) for name in names)
    assert registry.closed
    assert_spool_deleted(names)
    assert not os.path.exists(registry.spool_path)


def test_mmap_registry_deletes_spool_when_the_body_raises(tiny_workload):
    factories, _ = tiny_workload
    with pytest.raises(RuntimeError):
        with SharedArrayRegistry(storage="mmap") as registry:
            registry.export(next(iter(factories.values())))
            names = registry.segment_names
            raise RuntimeError("boom")
    assert_spool_deleted(names)


def test_mmap_registry_finalizer_is_a_gc_backstop(tiny_workload):
    """An abandoned mmap registry still deletes its spool at collection."""
    factories, _ = tiny_workload
    registry = SharedArrayRegistry(storage="mmap")
    registry.export(next(iter(factories.values())))
    names = registry.segment_names
    spool = registry.spool_path
    del registry
    gc.collect()
    assert_spool_deleted(names)
    assert not os.path.exists(spool)


def test_mmap_ephemeral_registry_cleaned_after_normal_completion(
    tiny_workload, recording_registries
):
    factories, tasks = tiny_workload
    records = evaluate_tasks(
        tasks, factories, n_shards=2, executor="process", storage="mmap"
    )
    assert len(records) == len(tasks)
    (registry,) = recording_registries
    assert registry.closed
    assert_spool_deleted(registry.segment_names)


def test_mmap_ephemeral_registry_cleaned_after_worker_exception(
    tiny_workload, recording_registries
):
    """A task that raises inside the worker must not leave spool files behind."""
    factories, tasks = tiny_workload
    poisoned = tasks + [
        GroupEvalTask(
            group=tasks[0].group,
            k=0,  # Greca rejects k <= 0 — worker-side, after shipment
            consensus=tasks[0].consensus,
            static=tasks[0].static,
            periodic={},
            averages={},
            time_model="discrete",
        )
    ]
    with pytest.raises(AlgorithmError):
        evaluate_tasks(
            poisoned, factories, n_shards=2, executor="process", storage="mmap"
        )
    (registry,) = recording_registries
    assert registry.closed
    assert_spool_deleted(registry.segment_names)


def test_mmap_ephemeral_registry_cleaned_after_worker_crash(
    tiny_workload, recording_registries
):
    """A worker killed by ``os._exit`` mid-shard must not orphan spool files.

    Same contract as the shm variant: deletion is owned by the parent-side
    registry (``os._exit`` runs no worker exit handlers), so the ephemeral
    registry still closes and every spool file is gone.
    """
    from concurrent.futures.process import BrokenProcessPool

    from repro.parallel import FaultPlan, FaultSpec

    factories, tasks = tiny_workload
    crash = FaultPlan((FaultSpec(shard=0, position=1, mode="crash", fires=1),))
    with pytest.raises(BrokenProcessPool):
        evaluate_tasks(
            tasks,
            factories,
            n_shards=1,
            executor="process",
            storage="mmap",
            fault_plan=crash,
        )
    (registry,) = recording_registries
    assert registry.closed
    assert_spool_deleted(registry.segment_names)


def test_interrupted_mmap_run_deletes_spool_and_stops_the_pool(tiny_workload):
    """A KeyboardInterrupt mid-flight tears the file-backed tier down, leak-free."""
    factories, tasks = tiny_workload
    pool = PersistentShardExecutor(n_workers=2)
    registry = SharedArrayRegistry(storage="mmap")
    with pytest.raises(KeyboardInterrupt):
        with pool, registry:
            records = evaluate_tasks(tasks, factories, executor=pool, registry=registry)
            assert len(records) == len(tasks)
            names = registry.segment_names
            spool = registry.spool_path
            assert pool.warm
            raise KeyboardInterrupt  # the moment ^C lands between dispatches
    assert not pool.warm
    assert registry.closed
    assert_spool_deleted(names)
    assert not os.path.exists(spool)


# -- the /dev/shm budget: oversized exports spill to the spool ----------------------------------


def test_shm_budget_spills_oversized_exports_to_spool(tiny_workload):
    """An shm registry over budget redirects exports to spool files, bit-exactly."""
    from repro.parallel import materialise_factory

    factories, tasks = tiny_workload
    factory = next(iter(factories.values()))
    reference = evaluate_tasks(tasks, factories)
    with SharedArrayRegistry(shm_budget_bytes=0) as registry:
        assert registry.storage == "shm"
        handle = registry.export(factory)
        # Every column spilled: the descriptors point at spool files.
        assert registry.spill_count >= 1
        assert handle.matrix.storage == "mmap"
        names = registry.segment_names
        assert all(os.path.isabs(name) for name in names)
        # The spilled substrate materialises bit-identically.
        spilled = materialise_factory(handle)
        assert spilled.members == factory.members and spilled.items == factory.items
        records = evaluate_tasks(
            tasks, factories, n_shards=2, executor="process", registry=registry
        )
        assert records == reference
    assert_spool_deleted(names)


def test_shm_budget_admits_exports_under_the_limit(tiny_workload):
    """A generous budget never spills; retirement returns the headroom."""
    factories, _ = tiny_workload
    factory = next(iter(factories.values()))
    with SharedArrayRegistry(shm_budget_bytes=1 << 30) as registry:
        handle = registry.export(factory)
        assert registry.spill_count == 0
        assert handle.matrix.storage == "shm"
        names = registry.segment_names
        assert all(not os.path.isabs(name) for name in names)
    assert_unlinked(names)


def test_shm_budget_default_comes_from_the_environment(monkeypatch, tiny_workload):
    """REPRO_SHM_BUDGET_BYTES seeds the default budget at construction."""
    factories, _ = tiny_workload
    monkeypatch.setenv("REPRO_SHM_BUDGET_BYTES", "0")
    with SharedArrayRegistry() as registry:
        handle = registry.export(next(iter(factories.values())))
        assert registry.spill_count >= 1
        assert handle.matrix.storage == "mmap"
        names = registry.segment_names
    assert_spool_deleted(names)


# -- anti-aliasing: one logical column, two storage backends, two cache identities --------------


def test_shm_and_mmap_handles_for_the_same_column_never_alias(tiny_workload):
    """Handle equality covers the storage backend, so caches cannot mix tiers.

    The same factory exported through an shm registry and an mmap registry
    yields handles that disagree in their descriptors' ``storage`` field (on
    top of names and generations) — a worker cache keyed on one must miss on
    the other, exactly like the PR 8 generation-token contract.
    """
    from repro.parallel import materialise_factory, shm

    factories, _ = tiny_workload
    factory = next(iter(factories.values()))
    with SharedArrayRegistry() as shm_registry, SharedArrayRegistry(
        storage="mmap"
    ) as mmap_registry:
        shm_handle = shm_registry.export(factory)
        mmap_handle = mmap_registry.export(factory)
        assert shm_handle != mmap_handle
        assert shm_handle.matrix.storage == "shm"
        assert mmap_handle.matrix.storage == "mmap"
        # Same logical bytes, two distinct cache identities.
        first = materialise_factory(shm_handle)
        assert shm_handle in shm._FACTORY_CACHE
        assert mmap_handle not in shm._FACTORY_CACHE
        second = materialise_factory(mmap_handle)
        assert second is not first
        assert second.members == first.members and second.items == first.items
        cache = {shm_handle: "shm", mmap_handle: "mmap"}
        assert len(cache) == 2


def test_affinity_handles_keep_storage_distinct(columnar_workload):
    """export_affinity under each backend produces non-aliasing handles too."""
    _, _, columns = columnar_workload
    with SharedArrayRegistry() as shm_registry, SharedArrayRegistry(
        storage="mmap"
    ) as mmap_registry:
        shm_handle = shm_registry.export_affinity(columns)
        mmap_handle = mmap_registry.export_affinity(columns)
        assert shm_handle != mmap_handle
        assert shm_handle.static.storage == "shm"
        assert mmap_handle.static.storage == "mmap"
        assert len({shm_handle, mmap_handle}) == 2
