"""Concurrency regression suite for the pool / registry / environment layer.

The serving layer (:mod:`repro.service`) is the first caller that drives
one environment from multiple threads at once.  These tests pin the races
that surfaced under that load:

* ``PersistentShardExecutor.ensure_pool()`` raced ``kill()`` and itself —
  two concurrent dispatches could both observe a dead pool and rebuild it
  twice, orphaning a ``ProcessPoolExecutor`` (and its worker processes and
  /dev/shm attachments) that nothing would ever shut down;
* ``SharedArrayRegistry.export()`` raced its ``id()``-memo — two threads
  exporting the same memoised factory packed its arrays into two segments,
  the loser lingering unmemoised until ``close()``;
* the environment's factory/pool/registry memos had the same
  check-then-set shape, and its live factory dict used to be iterated by a
  dispatch while ``task_for`` inserted into it.

Every test here fails deterministically (or near-deterministically, with
barriers maximising the race window) against the unlocked code.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.greca import GrecaIndexFactory
from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment
from repro.parallel import PersistentShardExecutor, SharedArrayRegistry
from repro.parallel import pool as pool_module
from test_shm_lifecycle import assert_unlinked


class _SlowRecordingPool:
    """ProcessPoolExecutor stand-in whose construction is slow and counted.

    The sleep inside ``__init__`` holds the check-then-set window open: an
    unlocked ``ensure_pool`` racing itself is then guaranteed to build (and
    orphan) one pool per thread.
    """

    instances: list["_SlowRecordingPool"] = []

    def __init__(self, max_workers=None):
        time.sleep(0.15)
        type(self).instances.append(self)
        self.max_workers = max_workers
        self._processes = {}
        self.shutdowns = 0

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


@pytest.fixture
def slow_pool_class(monkeypatch):
    _SlowRecordingPool.instances = []
    monkeypatch.setattr(pool_module, "ProcessPoolExecutor", _SlowRecordingPool)
    return _SlowRecordingPool


def _race(n_threads, target):
    """Run ``target`` on N threads released together; re-raise any failure."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner():
        barrier.wait()
        try:
            target()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=runner) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def test_ensure_pool_builds_exactly_once_across_threads(slow_pool_class):
    """Racing ensure_pool() calls must share one pool, not orphan duplicates."""
    executor = PersistentShardExecutor(2)
    seen = []
    _race(4, lambda: seen.append(executor.ensure_pool()))
    assert len(slow_pool_class.instances) == 1
    assert all(pool is slow_pool_class.instances[0] for pool in seen)


def test_kill_then_racing_rebuilds_leave_no_orphan(slow_pool_class):
    """After kill(), concurrent dispatches agree on a single replacement pool."""
    executor = PersistentShardExecutor(2)
    executor.ensure_pool()
    executor.kill()
    _race(4, executor.ensure_pool)
    # One original + one replacement; shutdown() reaches the replacement.
    assert len(slow_pool_class.instances) == 2
    executor.shutdown()
    assert slow_pool_class.instances[-1].shutdowns >= 1
    assert not executor.warm


def test_registry_export_race_creates_one_segment():
    """Concurrent export() of one memoised factory must share one segment."""
    rng = np.random.default_rng(3)
    items = list(range(201, 241))
    factory = GrecaIndexFactory(
        members=[1, 2, 3],
        aprefs={
            member: {item: round(float(rng.uniform(0.0, 5.0)), 3) for item in items}
            for member in [1, 2, 3]
        },
    )
    registry = SharedArrayRegistry()
    handles = []
    try:
        _race(8, lambda: handles.append(registry.export(factory)))
        assert len(set(handles)) == 1
        assert len(registry.segment_names) == 1
    finally:
        names = registry.segment_names
        registry.close()
    assert_unlinked(names)


@pytest.fixture(scope="module")
def shared_environment():
    env = ScalabilityEnvironment(
        ScalabilityConfig(
            n_users=40,
            n_items=300,
            n_ratings=3_000,
            n_participants=12,
            n_groups=2,
            group_size=3,
        )
    )
    yield env
    env.close()


def test_two_threads_dispatching_through_one_environment(shared_environment):
    """The ISSUE's scenario: two threads share the memoised pool and registry.

    Both dispatch the same workload through ``executor="persistent"``
    simultaneously; both must come back bit-identical to the serial
    reference, the environment must hold exactly one pool per worker count
    and one registry, and close() must leave /dev/shm empty.
    """
    env = shared_environment
    groups = env.random_groups()
    tasks = [env.task_for(group) for group in groups]
    serial = env.evaluate(tasks)
    results = []
    _race(
        2,
        lambda: results.append(
            env.evaluate(tasks, n_workers=2, executor="persistent")
        ),
    )
    assert len(results) == 2
    assert all(records == serial for records in results)
    assert list(env._persistent_pools) == [2]
    names = env.shm_segment_names()
    assert names  # the dispatches actually shipped through shared memory
    env.close()
    assert_unlinked(names)


def test_task_for_concurrent_with_dispatch(shared_environment):
    """task_for() inserting factories must not break an in-flight dispatch.

    The dispatch snapshots the factory map; without the snapshot, the
    factory-warming loop iterating the live dict while another thread
    inserts raises ``RuntimeError: dictionary changed size during
    iteration`` intermittently.
    """
    env = shared_environment
    base_groups = env.random_groups()
    tasks = [env.task_for(group) for group in base_groups]
    serial = env.evaluate(tasks)
    stop = threading.Event()

    def churn():
        while not stop.is_set():
            # Fresh groups every round: each task_for inserts a new factory
            # into the memo the dispatch thread is concurrently reading.
            for group in env.random_groups(2):
                env.task_for(group)

    churner = threading.Thread(target=churn)
    churner.start()
    try:
        for _ in range(5):
            assert env.evaluate(tasks, n_workers=2, executor="persistent") == serial
    finally:
        stop.set()
        churner.join()
