"""Shard executors: where (and how) shard payloads actually run.

Two concrete executors share one tiny interface — a list of
:class:`~repro.parallel.worker.ShardPayload` values in, one record tuple per
shard out, *in shard order*:

* :class:`SerialShardExecutor` runs every shard in-process.  It exercises the
  full shard/merge machinery without any pickling or process management,
  which makes it the deterministic harness the shard-plan-invariance tests
  drive (and a useful debugging backend: drop-in, single-threaded,
  breakpoint-friendly).
* :class:`ProcessShardExecutor` fans shards out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Payloads (factories
  included) are pickled to the workers; records are pickled back.  Results
  are collected in submission order, so shard order — and therefore the
  merged task order — never depends on worker scheduling.

Both are stateless between calls; :class:`ProcessShardExecutor` creates its
pool per invocation so no worker processes linger between figure runs.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.parallel.worker import GroupRunRecord, ShardPayload, run_shard

#: Executor spelling accepted by the ``executor=`` knobs.
EXECUTOR_SERIAL = "serial"
EXECUTOR_PROCESS = "process"


class ShardExecutor(abc.ABC):
    """Runs shard payloads and returns their records in shard order."""

    @abc.abstractmethod
    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        """Evaluate every payload; element ``s`` holds shard ``s``'s records."""


class SerialShardExecutor(ShardExecutor):
    """In-process executor: the sharded pipeline without processes."""

    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        return [run_shard(payload) for payload in payloads]


class ProcessShardExecutor(ShardExecutor):
    """``concurrent.futures`` process-pool executor, one worker per shard slot.

    Parameters
    ----------
    n_workers:
        Worker process count.  Callers usually plan exactly ``n_workers``
        shards, so every worker receives one payload; plans with more shards
        than workers queue excess shards and drain them as workers free up.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        self.n_workers = n_workers

    def run(self, payloads: Sequence[ShardPayload]) -> list[tuple[GroupRunRecord, ...]]:
        if not payloads:
            return []
        max_workers = min(self.n_workers, len(payloads))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(run_shard, payload) for payload in payloads]
            return [future.result() for future in futures]


def resolve_executor(
    executor: ShardExecutor | str | None, n_workers: int | None
) -> ShardExecutor:
    """Resolve the user-facing ``executor=`` knob into a :class:`ShardExecutor`.

    ``None`` picks the process backend (the only reason to reach the sharded
    path is to fan out); strings select by name; instances pass through.
    The process backend demands an explicit worker count — a silent
    one-worker pool would pickle the whole workload into a single subprocess
    for zero parallelism, which is never what the caller meant.
    """
    if isinstance(executor, ShardExecutor):
        return executor
    if executor is None or executor == EXECUTOR_PROCESS:
        if n_workers is None:
            raise ConfigurationError(
                "the process executor needs an explicit worker count: "
                "pass n_workers (or a ProcessShardExecutor instance)"
            )
        return ProcessShardExecutor(n_workers)
    if executor == EXECUTOR_SERIAL:
        return SerialShardExecutor()
    raise ConfigurationError(
        f"unknown executor {executor!r}; expected {EXECUTOR_SERIAL!r}, "
        f"{EXECUTOR_PROCESS!r} or a ShardExecutor instance"
    )
