"""Tests for repro.data.ratings."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.data.ratings import MAX_RATING, MIN_RATING, Rating, RatingsDataset, dataset_from_tuples
from repro.exceptions import DataError, UnknownItemError, UnknownUserError


class TestRating:
    def test_valid_rating(self):
        rating = Rating(1, 2, 4.5, 10)
        assert rating.value == 4.5

    @pytest.mark.parametrize("value", [0.0, 0.5, 5.5, -1.0])
    def test_out_of_scale_rejected(self, value):
        with pytest.raises(DataError):
            Rating(1, 2, value)


class TestRatingsDataset:
    def test_basic_accessors(self, toy_ratings):
        assert len(toy_ratings) == 12
        assert toy_ratings.users == (1, 2, 3, 4)
        assert toy_ratings.items == (10, 11, 12, 13)
        assert toy_ratings.has_user(1) and not toy_ratings.has_user(99)
        assert toy_ratings.has_item(13) and not toy_ratings.has_item(99)

    def test_duplicate_rating_rejected(self):
        with pytest.raises(DataError):
            RatingsDataset([Rating(1, 2, 3.0), Rating(1, 2, 4.0)])

    def test_user_and_item_ratings(self, toy_ratings):
        assert set(toy_ratings.user_ratings(1)) == {10, 11, 12}
        assert set(toy_ratings.item_ratings(10)) == {1, 2, 3}
        with pytest.raises(UnknownUserError):
            toy_ratings.user_ratings(42)
        with pytest.raises(UnknownItemError):
            toy_ratings.item_ratings(42)

    def test_rating_value(self, toy_ratings):
        assert toy_ratings.rating_value(1, 10) == 5.0
        assert toy_ratings.rating_value(1, 13) is None

    def test_user_vector_and_means(self, toy_ratings):
        assert toy_ratings.user_vector(1) == {10: 5.0, 11: 3.0, 12: 1.0}
        assert toy_ratings.user_mean(1) == pytest.approx(3.0)
        assert toy_ratings.item_mean(10) == pytest.approx((5 + 5 + 1) / 3)

    def test_item_popularity_and_variance(self, toy_ratings):
        assert toy_ratings.item_popularity(10) == 3
        assert toy_ratings.item_rating_variance(11) == pytest.approx(
            ((3 - 10 / 3) ** 2 + (3 - 10 / 3) ** 2 + (4 - 10 / 3) ** 2) / 3
        )

    def test_stats(self, toy_ratings):
        stats = toy_ratings.stats()
        assert stats.n_users == 4
        assert stats.n_items == 4
        assert stats.n_ratings == 12
        assert stats.min_timestamp == 100
        assert stats.max_timestamp == 350
        assert stats.as_table_row() == {"# users": 4, "# movies": 4, "# ratings": 12}

    def test_empty_dataset_stats(self):
        stats = RatingsDataset([]).stats()
        assert stats.n_ratings == 0
        assert stats.n_users == 0

    def test_filter_and_restrict(self, toy_ratings):
        only_high = toy_ratings.filter(lambda rating: rating.value >= 4)
        assert all(rating.value >= 4 for rating in only_high)
        users_12 = toy_ratings.restrict_users([1, 2])
        assert users_12.users == (1, 2)
        items_10 = toy_ratings.restrict_items([10])
        assert items_10.items == (10,)

    def test_top_popular_items(self, toy_ratings):
        # items 11, 12, 13 each have 3 raters; 10 also has 3 -> ties broken by id
        popular = toy_ratings.top_popular_items(2)
        assert popular == [10, 11]

    def test_most_controversial_items(self, toy_ratings):
        controversial = toy_ratings.most_controversial_items(1)
        assert controversial == [10]  # ratings 5, 5, 1 -> highest variance

    def test_most_controversial_within_top_popular(self, toy_ratings):
        result = toy_ratings.most_controversial_items(2, within_top_popular=4)
        assert len(result) == 2

    def test_leave_out_split_partitions_ratings(self, toy_ratings):
        train, holdout = toy_ratings.leave_out_split(0.25, seed=3)
        assert len(train) + len(holdout) == len(toy_ratings)
        assert len(holdout) == 3
        train_keys = {(r.user_id, r.item_id) for r in train}
        holdout_keys = {(r.user_id, r.item_id) for r in holdout}
        assert not train_keys & holdout_keys

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2, 1.5])
    def test_leave_out_split_rejects_bad_fraction(self, toy_ratings, fraction):
        with pytest.raises(DataError):
            toy_ratings.leave_out_split(fraction)

    def test_dataset_from_tuples(self):
        dataset = dataset_from_tuples([(1, 2, 3.0), (2, 3, 4.0, 77)])
        assert len(dataset) == 2
        assert dataset.rating_value(2, 3) == 4.0
        assert dataset.ratings[0].timestamp == 0


@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=12),
            st.integers(min_value=1, max_value=12),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=60,
        unique_by=lambda row: (row[0], row[1]),
    )
)
def test_dataset_roundtrip_properties(rows):
    """Statistics are consistent with the inserted rows for arbitrary datasets."""
    dataset = dataset_from_tuples([(u, i, float(v)) for u, i, v in rows])
    stats = dataset.stats()
    assert stats.n_ratings == len(rows)
    assert stats.n_users == len({u for u, _, _ in rows})
    assert stats.n_items == len({i for _, i, _ in rows})
    for user, item, value in rows:
        assert dataset.rating_value(user, item) == pytest.approx(float(value))
        assert MIN_RATING <= dataset.user_mean(user) <= MAX_RATING
