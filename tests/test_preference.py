"""Tests for repro.core.preference (absolute / relative / combined preferences)."""

from __future__ import annotations

import pytest

from repro.cf.predictors import MeanPredictor
from repro.core.affinity import ExplicitAffinityModel, NoAffinityModel
from repro.core.preference import AbsolutePreferenceSource, PreferenceModel
from repro.exceptions import GroupError

APREFS = {
    1: {10: 5.0, 11: 1.0, 12: 1.0},
    2: {10: 5.0, 11: 1.0, 12: 0.5},
    3: {10: 2.0, 11: 1.0, 12: 2.0},
}
AFFINITIES = {(1, 2): 1.0, (1, 3): 0.2, (2, 3): 0.3}


@pytest.fixture()
def model():
    return PreferenceModel(APREFS, ExplicitAffinityModel(AFFINITIES))


class TestAbsolutePreferenceSource:
    def test_from_mapping(self):
        source = AbsolutePreferenceSource(APREFS)
        assert source.apref(1, 10) == 5.0
        assert source.apref(1, 99) == 0.0
        assert source.items == (10, 11, 12)

    def test_from_callable_requires_items(self):
        source = AbsolutePreferenceSource(lambda user, item: 2.0, items=[1, 2])
        assert source.apref(7, 1) == 2.0
        assert source.all_aprefs(7) == {1: 2.0, 2: 2.0}
        with pytest.raises(GroupError):
            AbsolutePreferenceSource(lambda user, item: 2.0).items

    def test_from_predictor(self, toy_ratings):
        predictor = MeanPredictor().fit(toy_ratings)
        source = AbsolutePreferenceSource(predictor)
        assert source.items == toy_ratings.items
        assert source.apref(1, 10) == 5.0


class TestPreferenceModel:
    def test_apref_passthrough(self, model):
        assert model.apref(1, 10) == 5.0

    def test_rpref_matches_paper_definition(self, model):
        """rpref(u, i, G) = sum over other members of aff(u, u') * apref(u', i)."""
        group = [1, 2, 3]
        expected = 1.0 * APREFS[2][10] + 0.2 * APREFS[3][10]
        assert model.rpref(1, 10, group) == pytest.approx(expected)

    def test_pref_is_apref_plus_rpref(self, model):
        group = [1, 2, 3]
        assert model.pref(1, 10, group) == pytest.approx(
            model.apref(1, 10) + model.rpref(1, 10, group)
        )

    def test_without_affinity_pref_equals_apref(self):
        model = PreferenceModel(APREFS, NoAffinityModel())
        assert model.pref(1, 10, [1, 2, 3]) == APREFS[1][10]

    def test_default_affinity_model_is_agnostic(self):
        model = PreferenceModel(APREFS)
        assert isinstance(model.affinity, NoAffinityModel)

    def test_group_prefs_covers_every_member(self, model):
        prefs = model.group_prefs(10, [1, 2, 3])
        assert set(prefs) == {1, 2, 3}
        assert prefs[1] == pytest.approx(model.pref(1, 10, [1, 2, 3]))

    def test_same_user_same_item_different_groups(self, model):
        """The paper's core premise: preference depends on the company."""
        with_close_friend = model.pref(1, 10, [1, 2])
        with_acquaintance = model.pref(1, 10, [1, 3])
        assert with_close_friend > with_acquaintance

    def test_member_must_belong_to_group(self, model):
        with pytest.raises(GroupError):
            model.rpref(1, 10, [2, 3])

    def test_rejects_empty_or_duplicate_groups(self, model):
        with pytest.raises(GroupError):
            model.group_prefs(10, [])
        with pytest.raises(GroupError):
            model.group_prefs(10, [1, 1, 2])

    def test_max_possible_pref_scales_with_group_size(self, model):
        assert model.max_possible_pref([1, 2, 3]) == pytest.approx(15.0)
        assert model.max_possible_pref([1, 2], max_apref=4.0) == pytest.approx(8.0)

    def test_aprefs_are_cached(self, model):
        first = model.aprefs_of(1)
        second = model.aprefs_of(1)
        assert first is second

    def test_temporal_affinity_changes_preference(self, short_timeline):
        periodic = {
            short_timeline[0]: {(1, 2): 0.8},
            short_timeline[1]: {(1, 2): 0.0},
        }
        affinity = ExplicitAffinityModel({(1, 2): 0.1}, periodic, short_timeline)
        model = PreferenceModel(APREFS, affinity)
        early = model.pref(1, 10, [1, 2], short_timeline[0])
        late = model.pref(1, 10, [1, 2], short_timeline[1])
        assert early > late
