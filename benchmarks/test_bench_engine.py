"""Micro-benchmarks for the batched columnar access engine.

Two measurements track the engine's perf trajectory across PRs (the
append-only history lives in ``BENCH_engine.json``, produced by
``scripts/bench_engine.py``):

* GRECA end-to-end on the paper's 3,900-item catalogue (default
  :class:`ScalabilityConfig`: 8 groups of 6, AP consensus, k = 10) with the
  indexes pre-built, isolating the engine from dataset generation; and
* batched ``sequential_block`` reads against the per-entry
  ``sequential_access`` path over one large preference list.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core.consensus import make_consensus
from repro.core.greca import Greca
from repro.core.lists import KIND_PREFERENCE, AccessCounter, SortedAccessList

#: The seed (per-entry) engine needed 1.28 s for the same 8 runs, and the
#: columnar engine's acceptance measurement was ~0.2 s (both recorded in
#: BENCH_engine.json).  The test enforces a loose 2x-over-seed floor so a
#: regression back to interpreter-speed fails here without making the
#: benchmark flaky on slow or loaded machines.
SEED_TOTAL_SECONDS = 1.28

MICRO_ENTRIES = 100_000


def test_greca_end_to_end_3900_items(benchmark, scalability_env):
    """GRECA over the default scalability point, engine time only."""
    env = scalability_env
    consensus = make_consensus(env.config.consensus)
    indexes = env.build_default_indexes()

    def run_all():
        return [Greca(consensus, k=env.config.k).run(index) for index in indexes]

    results = run_once(benchmark, run_all)
    print()
    for result in results:
        print(
            f"  %SA={result.percent_sequential_accesses:6.2f}  "
            f"SA={result.sequential_accesses:>6}  stop={result.stopping}"
        )
    # The engine must still do exactly the paper's work: every run reads
    # fewer entries than the naive scan and makes no random accesses.
    assert all(result.random_accesses == 0 for result in results)
    assert all(result.sequential_accesses < result.total_entries for result in results)
    assert benchmark.stats.stats.mean < SEED_TOTAL_SECONDS / 2


def test_sequential_block_vs_per_entry(benchmark):
    """Batched block reads against the per-entry access path (same SAs)."""

    def make_list() -> SortedAccessList:
        entries = (
            (item, float((item * 2_654_435_761) % 1_000_003)) for item in range(MICRO_ENTRIES)
        )
        return SortedAccessList("PL(bench)", KIND_PREFERENCE, entries, AccessCounter())

    per_entry_list = make_list()
    start = time.perf_counter()
    while per_entry_list.sequential_access() is not None:
        pass
    per_entry_seconds = time.perf_counter() - start

    blocked_list = make_list()

    def drain_blocked() -> int:
        blocked_list.reset()
        blocked_list.counter.reset()
        read = 0
        while not blocked_list.exhausted:
            _, scores = blocked_list.sequential_block(4096)
            read += len(scores)
        assert blocked_list.counter.sequential == MICRO_ENTRIES
        return read

    read = run_once(benchmark, drain_blocked)
    assert read == MICRO_ENTRIES == per_entry_list.counter.sequential
    block_seconds = max(benchmark.stats.stats.mean, 1e-9)
    print(f"\n  per-entry: {per_entry_seconds:.4f}s  "
          f"blocked: {block_seconds:.4f}s  "
          f"speedup: {per_entry_seconds / block_seconds:.0f}x")
    # Block reads must beat the per-entry interpreter loop comfortably.
    assert block_seconds < per_entry_seconds
