"""Orchestration: plan shards, build payloads, execute, merge.

:func:`evaluate_tasks` is the engine-level entry point of the sharded layer:
it takes fully materialised :class:`~repro.parallel.worker.GroupEvalTask`
values plus the factory of every group involved, partitions the tasks,
ships each shard its payload (tasks + the factories *it* needs) and merges
the records back into task order.  It knows nothing about recommenders,
environments or figures — :class:`repro.experiments.scalability
.ScalabilityEnvironment` builds the tasks and owns the factory cache; the
equivalence tests drive this function directly with synthetic grid cases.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.parallel.merge import merge_shard_records
from repro.parallel.pool import SerialShardExecutor, ShardExecutor, resolve_executor
from repro.parallel.sharding import ShardPlan, plan_shards
from repro.parallel.worker import (
    GroupEvalTask,
    GroupKey,
    GroupRunRecord,
    ShardPayload,
)


def build_payloads(
    plan: ShardPlan,
    tasks: Sequence[GroupEvalTask],
    factories: Mapping[GroupKey, object],
) -> list[ShardPayload]:
    """One payload per shard, shipping only the factories its tasks need."""
    if plan.n_tasks != len(tasks):
        raise ConfigurationError(
            f"shard plan covers {plan.n_tasks} tasks, got {len(tasks)}"
        )
    payloads = []
    for shard_index, indices in enumerate(plan.shards):
        shard_tasks = tuple(tasks[index] for index in indices)
        shard_factories = {task.group: factories[task.group] for task in shard_tasks}
        payloads.append(
            ShardPayload(
                shard_index=shard_index,
                task_indices=indices,
                tasks=shard_tasks,
                factories=shard_factories,
            )
        )
    return payloads


def evaluate_tasks(
    tasks: Sequence[GroupEvalTask],
    factories: Mapping[GroupKey, object],
    n_shards: int | None = None,
    executor: ShardExecutor | str | None = None,
    plan: ShardPlan | None = None,
) -> list[GroupRunRecord]:
    """Evaluate tasks through the sharded pipeline; records come back in task order.

    Parameters
    ----------
    tasks:
        Materialised evaluations, one record produced per task.
    factories:
        ``{group_key: GrecaIndexFactory}`` for every group referenced by a
        task (missing groups raise before anything is dispatched).
    n_shards:
        Number of shards for the default contiguous plan.  When omitted it
        is taken from the executor's worker count (one shard per worker);
        with no executor either, everything runs in one in-process shard —
        still exercising the full payload/merge pipeline, but never spawning
        a process just to execute serially.
    executor:
        ``"serial"``, ``"process"`` or a
        :class:`~repro.parallel.pool.ShardExecutor` instance; defaults to
        the process backend whenever ``n_shards`` asks for fan-out and to
        the in-process backend otherwise.
    plan:
        Explicit shard plan overriding ``n_shards`` — any partition of the
        task indices is valid and merges to the same result; the
        shard-plan-invariance tests rely on this hook.
    """
    if not tasks:
        return []
    if executor is None and n_shards is None:
        backend: ShardExecutor = SerialShardExecutor()
    else:
        backend = resolve_executor(executor, n_shards)
    if plan is None:
        if n_shards is None:
            n_shards = getattr(backend, "n_workers", 1)
        plan = plan_shards(len(tasks), n_shards)
    payloads = build_payloads(plan, tasks, factories)
    shard_records = backend.run(payloads)
    return merge_shard_records(plan, shard_records)
