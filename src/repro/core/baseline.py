"""Baseline top-k algorithms GRECA is compared against.

The paper measures GRECA's efficiency as the percentage of sequential
accesses "compared to a naive algorithm which entirely scans all lists"
(Section 4.2).  Two baselines are provided:

* :class:`NaiveFullScan` — reads every entry of every list (100% SA) and
  computes exact scores; it is also the correctness oracle used by the test
  suite.
* :class:`ThresholdAlgorithmBaseline` — a TA-style variant that scans the
  preference lists sequentially and, for every newly encountered item,
  resolves all of its remaining components through random accesses (the
  access pattern the paper argues against in Section 3.1, where scoring a
  single item costs ``T * n(n-1)/2`` extra accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.consensus import ConsensusFunction
from repro.core.greca import GrecaIndex
from repro.core.lists import AccessCounter, total_entries
from repro.core.scoring import consensus_scores, preference_matrix
from repro.exceptions import AlgorithmError


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline top-k computation."""

    items: tuple[int, ...]
    scores: Mapping[int, float]
    sequential_accesses: int
    random_accesses: int
    total_entries: int
    consensus: str
    k: int

    @property
    def percent_sequential_accesses(self) -> float:
        """Percentage of entries read sequentially."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * self.sequential_accesses / self.total_entries

    @property
    def percent_total_accesses(self) -> float:
        """Percentage counting both sequential and random accesses."""
        if self.total_entries == 0:
            return 0.0
        return 100.0 * (self.sequential_accesses + self.random_accesses) / self.total_entries


class NaiveFullScan:
    """Exhaustively scan every list, score every item exactly, return the top-k."""

    def __init__(self, consensus: ConsensusFunction, k: int = 10) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.consensus = consensus
        self.k = k

    def run(self, index: GrecaIndex) -> BaselineResult:
        """Scan all lists (counting the accesses) and return the exact top-k."""
        counter = AccessCounter()
        preference_lists, static_lists, periodic_lists = index.build_lists(counter)
        all_lists = list(preference_lists) + list(static_lists)
        for period_index in index.period_indices:
            all_lists.extend(periodic_lists[period_index])
        for access_list in all_lists:
            while access_list.sequential_access() is not None:
                pass

        scores = index.exact_scores(self.consensus)
        k = min(self.k, len(index.items))
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        top = tuple(item for item, _ in ranked[:k])
        return BaselineResult(
            items=top,
            scores={item: scores[item] for item in top},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total_entries(all_lists),
            consensus=self.consensus.name,
            k=k,
        )

    def top_k_scores(self, index: GrecaIndex) -> dict[int, float]:
        """Exact scores of every item, without access accounting (test oracle)."""
        return index.exact_scores(self.consensus)


class ThresholdAlgorithmBaseline:
    """TA-style processing: sequential scans plus per-item random accesses.

    The algorithm scans the member preference lists round-robin; every time an
    item is first encountered it immediately resolves the item's full score by
    random-accessing the remaining ``n - 1`` preference lists and *all*
    affinity lists (static and periodic), as described in the paper's Section
    3.1 discussion of why TA is expensive here.  It stops when the exact
    scores of the current top-k are at least the threshold (the score of a
    virtual item placed at the current cursors with maximal affinities).
    """

    def __init__(self, consensus: ConsensusFunction, k: int = 10) -> None:
        if k <= 0:
            raise AlgorithmError("k must be positive")
        self.consensus = consensus
        self.k = k

    def run(self, index: GrecaIndex) -> BaselineResult:
        """Execute the TA-style baseline and return its (exact) top-k."""
        counter = AccessCounter()
        preference_lists, static_lists, periodic_lists = index.build_lists(counter)
        all_lists = list(preference_lists) + list(static_lists)
        for period_index in index.period_indices:
            all_lists.extend(periodic_lists[period_index])
        total = total_entries(all_lists)

        members = index.members
        n = len(members)
        k = min(self.k, len(index.items))

        # Pairwise affinities resolved once through random accesses on demand.
        pair_affinity: dict[tuple[int, int], float] = {}

        def resolve_affinity(left: int, right: int) -> float:
            pair = index._pair(left, right)
            if pair in pair_affinity:
                return pair_affinity[pair]
            static_list = next(
                (lst for lst in static_lists if lst.peek(pair) or pair in {e.key for e in lst.entries}),
                None,
            )
            static = static_list.random_access(pair) if static_list is not None else 0.0
            periodic = []
            for period_index in index.period_indices:
                period_list = next(
                    (
                        lst
                        for lst in periodic_lists[period_index]
                        if pair in {e.key for e in lst.entries}
                    ),
                    None,
                )
                periodic.append(
                    period_list.random_access(pair) if period_list is not None else 0.0
                )
            value = index.combine(static, periodic)
            pair_affinity[pair] = value
            return value

        scores: dict[int, float] = {}
        aprefs_cache: dict[int, np.ndarray] = {}

        def score_item(item: int) -> float:
            vector = np.zeros(n)
            for row, member in enumerate(members):
                observed = seen.get((member, item))
                if observed is None:
                    # Random access into the member's preference list.
                    observed = preference_lists[row].random_access(item)
                vector[row] = observed
            aprefs_cache[item] = vector
            affinity = np.zeros((n, n))
            for row in range(n):
                for col in range(row + 1, n):
                    value = resolve_affinity(members[row], members[col])
                    affinity[row, col] = affinity[col, row] = value
            prefs = preference_matrix(vector[:, None], affinity)
            return float(consensus_scores(self.consensus, prefs, index.scale)[0])

        seen: dict[tuple[int, int], float] = {}
        exhausted = False
        while not exhausted:
            exhausted = True
            cursor_values = []
            for row, access_list in enumerate(preference_lists):
                entry = access_list.sequential_access()
                if entry is None:
                    cursor_values.append(0.0)
                    continue
                exhausted = False
                seen[(members[row], entry.key)] = entry.score
                cursor_values.append(entry.score)
                if entry.key not in scores:
                    scores[entry.key] = score_item(entry.key)

            if len(scores) >= k:
                # Threshold: virtual item at the cursors with maximal (=1) affinities.
                cursors = np.array(cursor_values)
                max_affinity = np.ones((n, n)) - np.eye(n)
                virtual = preference_matrix(cursors[:, None], max_affinity)
                threshold = float(consensus_scores(self.consensus, virtual, index.scale)[0])
                kth = sorted(scores.values(), reverse=True)[k - 1]
                if kth >= threshold - 1e-9:
                    break

        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        top = tuple(item for item, _ in ranked[:k])
        return BaselineResult(
            items=top,
            scores={item: scores[item] for item in top},
            sequential_accesses=counter.sequential,
            random_accesses=counter.random,
            total_entries=total,
            consensus=self.consensus.name,
            k=k,
        )
