"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table5,
)
from repro.experiments.scalability import (
    AccessStats,
    ScalabilityConfig,
    ScalabilityEnvironment,
    summarize_percent_sa,
)

__all__ = [
    "AccessStats",
    "ScalabilityConfig",
    "ScalabilityEnvironment",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "summarize_percent_sa",
    "table5",
]
