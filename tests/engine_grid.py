"""Deterministic instance grid shared by the engine-equivalence tests.

The batched columnar access engine must be *access-equivalent* to the seed
per-entry engine: identical sequential/random access counts, identical top-k
items, identical stopping reasons.  This module builds a grid of synthetic
GRECA indexes and generic top-k instances deterministically (seeded
``random.Random``, no global state), so the exact same inputs can be
regenerated in any session.

``scripts/capture_engine_golden.py`` ran this grid against the *seed*
implementation (before the columnar refactor) and froze the results in
``tests/data/engine_golden.json``; ``tests/test_engine_equivalence.py``
replays the grid against the current implementation and compares bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.consensus import make_consensus
from repro.core.greca import Greca, GrecaIndex

#: GRECA equivalence grid: (group size, items, k, consensus, periods,
#: time model, check_interval).  ``check_interval=None`` exercises the
#: adaptive default.
GRECA_CASES: tuple[dict[str, Any], ...] = tuple(
    dict(
        case_id=f"greca-{i}",
        n_members=n_members,
        n_items=n_items,
        k=k,
        consensus=consensus,
        n_periods=n_periods,
        time_model=time_model,
        check_interval=check_interval,
        seed=1000 + 13 * i,
    )
    for i, (n_members, n_items, k, consensus, n_periods, time_model, check_interval) in enumerate(
        [
            (2, 40, 1, "AP", 0, "discrete", 1),
            (2, 60, 5, "AP", 3, "discrete", None),
            (2, 80, 10, "MO", 2, "continuous", 4),
            (3, 50, 3, "AP", 0, "discrete", 1),
            (3, 120, 10, "AP", 6, "discrete", None),
            (3, 90, 5, "PD", 4, "discrete", 7),
            (3, 90, 5, "PD V1", 4, "continuous", 3),
            (4, 75, 8, "MO", 1, "discrete", None),
            (4, 150, 10, "AP", 6, "continuous", 5),
            (5, 60, 2, "PD V2", 3, "discrete", 2),
            (6, 200, 10, "AP", 6, "discrete", None),
            (6, 200, 10, "MO", 6, "discrete", 11),
            (6, 350, 10, "AP", 6, "continuous", None),
            (6, 120, 1, "PD", 2, "discrete", 1),
            (7, 100, 10, "AP", 5, "discrete", None),
            (8, 90, 4, "AP", 3, "continuous", 6),
        ]
    )
)

#: Generic NRA/TA equivalence grid (lists, items, k, aggregation).
TOPK_CASES: tuple[dict[str, Any], ...] = tuple(
    dict(
        case_id=f"topk-{i}",
        n_lists=n_lists,
        n_items=n_items,
        k=k,
        aggregation=aggregation,
        seed=7000 + 29 * i,
    )
    for i, (n_lists, n_items, k, aggregation) in enumerate(
        [
            (1, 15, 1, "sum"),
            (2, 30, 3, "sum"),
            (2, 30, 3, "min"),
            (3, 50, 5, "mean"),
            (3, 80, 10, "sum"),
            (4, 60, 4, "min"),
            (4, 120, 8, "sum"),
            (5, 40, 2, "mean"),
            (3, 25, 25, "sum"),  # k == n_items: must exhaust
            (2, 1, 1, "min"),
        ]
    )
)


def greca_case_inputs(case: dict[str, Any]) -> dict[str, Any]:
    """The raw :class:`GrecaIndex` constructor inputs of one grid case.

    Exposed separately so the index-reuse tests can feed the *same* inputs
    through :class:`~repro.core.greca.GrecaIndexFactory` and compare against
    fresh construction.  The draw order is frozen — it determines the golden
    values.
    """
    rng = random.Random(case["seed"])
    members = list(range(1, case["n_members"] + 1))
    items = list(range(101, 101 + case["n_items"]))
    aprefs = {
        member: {item: round(rng.uniform(0.0, 5.0), 3) for item in items} for member in members
    }
    pairs = [
        (left, right) for i, left in enumerate(members) for right in members[i + 1 :]
    ]
    static = {pair: round(rng.uniform(0.0, 1.0), 3) for pair in pairs}
    periodic = {
        period: {pair: round(rng.uniform(0.0, 1.0), 3) for pair in pairs}
        for period in range(case["n_periods"])
    }
    averages = {period: round(rng.uniform(0.0, 0.5), 3) for period in range(case["n_periods"])}
    return dict(
        members=members,
        aprefs=aprefs,
        static=static,
        periodic=periodic,
        averages=averages,
        time_model=case["time_model"],
    )


def build_greca_case(case: dict[str, Any]) -> tuple[GrecaIndex, Greca]:
    """Materialise one GRECA grid case (index + configured algorithm)."""
    index = GrecaIndex(**greca_case_inputs(case))
    algorithm = Greca(
        make_consensus(case["consensus"]),
        k=case["k"],
        check_interval=case["check_interval"],
    )
    return index, algorithm


def run_greca_case(case: dict[str, Any]) -> dict[str, Any]:
    """Run one GRECA grid case and summarise the access-equivalence facts."""
    index, algorithm = build_greca_case(case)
    result = algorithm.run(index)
    return {
        "case_id": case["case_id"],
        "sequential_accesses": result.sequential_accesses,
        "random_accesses": result.random_accesses,
        "stopping": result.stopping,
        "items": list(result.items),
        "rounds": result.rounds,
        "total_entries": result.total_entries,
    }


def run_baseline_case(
    case: dict[str, Any], algorithm_name: str, batched: bool = True
) -> dict[str, Any]:
    """Run a baseline on one GRECA grid case and summarise the equivalence facts.

    ``batched=False`` replays the retained per-entry reference interpreter —
    the path the golden values are captured from; ``batched=True`` (the
    default, and what the equivalence tests run) exercises the batched
    columnar port.
    """
    from repro.core.baseline import NaiveFullScan, ThresholdAlgorithmBaseline

    index, _ = build_greca_case(case)
    consensus = make_consensus(case["consensus"])
    if algorithm_name == "naive":
        runner = NaiveFullScan(consensus, k=case["k"], batched=batched)
    elif algorithm_name == "ta_baseline":
        runner = ThresholdAlgorithmBaseline(consensus, k=case["k"], batched=batched)
    else:  # pragma: no cover - guarded by the callers
        raise ValueError(f"unknown baseline {algorithm_name!r}")
    result = runner.run(index)
    return {
        "case_id": case["case_id"],
        "algorithm": algorithm_name,
        "sequential_accesses": result.sequential_accesses,
        "random_accesses": result.random_accesses,
        "items": list(result.items),
        "total_entries": result.total_entries,
        "k": result.k,
    }


def build_topk_case(case: dict[str, Any]):
    """Materialise one generic top-k grid case (shared-counter sorted lists)."""
    from repro.core.lists import KIND_PREFERENCE, AccessCounter, SortedAccessList

    rng = random.Random(case["seed"])
    counter = AccessCounter()
    lists = [
        SortedAccessList(
            f"L{position}",
            KIND_PREFERENCE,
            {f"item{j}": round(rng.uniform(0.0, 1.0), 3) for j in range(case["n_items"])}.items(),
            counter,
        )
        for position in range(case["n_lists"])
    ]
    aggregation = {
        "sum": sum,
        "min": min,
        "mean": lambda values: sum(values) / len(values),
    }[case["aggregation"]]
    return lists, counter, aggregation


def run_topk_case(case: dict[str, Any], algorithm_name: str) -> dict[str, Any]:
    """Run NRA or TA on one grid case and summarise the equivalence facts."""
    from repro.topk.nra import NoRandomAccessAlgorithm
    from repro.topk.ta import ThresholdAlgorithm

    lists, counter, aggregation = build_topk_case(case)
    k = min(case["k"], case["n_items"])
    if algorithm_name == "nra":
        result = NoRandomAccessAlgorithm(aggregation, k=k).run(lists)
    elif algorithm_name == "ta":
        result = ThresholdAlgorithm(aggregation, k=k).run(lists)
    else:  # pragma: no cover - guarded by the callers
        raise ValueError(f"unknown algorithm {algorithm_name!r}")
    return {
        "case_id": case["case_id"],
        "algorithm": algorithm_name,
        "sequential_accesses": result.sequential_accesses,
        "random_accesses": result.random_accesses,
        "items": list(result.items),
        "rounds": result.rounds,
        "total_entries": result.total_entries,
    }
