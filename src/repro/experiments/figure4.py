"""Figure 4 — choosing the time-period granularity.

The paper discretises one year of page-like history at five granularities and
reports, for each, the number of periods and the percentage of non-empty
periods (periods in which a user actually liked something).  Finer
granularities give more periods but leave many of them empty; the paper picks
two-month periods as the balance point (6 periods, ~67% non-empty).

The reproduction measures the same two quantities on the synthetic social
network's like history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.timeline import GRANULARITIES, discretize
from repro.data.social import SocialConfig, SocialNetwork, SocialNetworkGenerator
from repro.data.study_cohort import StudyConfig, build_study_cohort
from repro.data.movielens import MovieLensConfig, generate_movielens_like

#: The paper's reported values (percentage of non-empty periods, number of periods).
PAPER_REFERENCE = {
    "week": {"non_empty_percent": 26.01, "n_periods": 53},
    "month": {"non_empty_percent": 54.35, "n_periods": 12},
    "two-month": {"non_empty_percent": 67.4, "n_periods": 6},
    "season": {"non_empty_percent": 77.18, "n_periods": 4},
    "half-year": {"non_empty_percent": 97.83, "n_periods": 2},
}


@dataclass(frozen=True)
class Figure4Result:
    """Measured period statistics per granularity."""

    measured: Mapping[str, Mapping[str, float]]
    reference: Mapping[str, Mapping[str, float]]

    def rows(self) -> list[dict[str, object]]:
        """One row per granularity with paper and measured values."""
        rows = []
        for granularity in GRANULARITIES:
            measured = self.measured[granularity]
            reference = self.reference.get(granularity, {})
            rows.append(
                {
                    "granularity": granularity,
                    "n_periods": int(measured["n_periods"]),
                    "non_empty_percent": round(measured["non_empty_percent"], 2),
                    "paper_n_periods": reference.get("n_periods"),
                    "paper_non_empty_percent": reference.get("non_empty_percent"),
                }
            )
        return rows

    def chosen_granularity(self) -> str:
        """The granularity the paper selects (two-month) for the rest of the study."""
        return "two-month"

    def format_table(self) -> str:
        """Human-readable rendering of the figure's data."""
        lines = ["Figure 4 — time-period granularities"]
        lines.append(
            f"{'granularity':<12} {'#periods':>9} {'non-empty %':>12} "
            f"{'paper #':>8} {'paper %':>8}"
        )
        for row in self.rows():
            lines.append(
                f"{row['granularity']:<12} {row['n_periods']:>9} "
                f"{row['non_empty_percent']:>12.2f} {row['paper_n_periods']:>8} "
                f"{row['paper_non_empty_percent']:>8.2f}"
            )
        return "\n".join(lines)


def run(
    social: SocialNetwork | None = None,
    start: int = 0,
    span_days: int = 365,
    seed: int = 29,
    n_workers: int | None = None,
    executor=None,
    policy=None,
) -> Figure4Result:
    """Regenerate Figure 4.

    Parameters
    ----------
    social:
        Social network whose like history is analysed; when omitted, the
        study cohort's network is generated (mirroring the paper, which uses
        the study participants' page likes).
    start / span_days:
        The observation window.
    seed:
        Seed for the generated cohort when ``social`` is omitted.
    n_workers / executor / policy:
        Accepted so the runner can pass the same parallelism knobs (loose or
        bundled as an :class:`~repro.parallel.ExecutionPolicy`) to every
        figure 4-8 driver; this figure measures per-granularity period
        statistics (no group evaluation), so the knobs have nothing to shard
        and the driver always runs serially.
    """
    end = start + span_days * 86_400 - 1
    if social is None:
        base = generate_movielens_like(
            MovieLensConfig(n_users=150, n_items=120, n_ratings=5000, seed=seed)
        )
        timeline = discretize(start, end, "two-month")
        cohort = build_study_cohort(
            base,
            timeline,
            StudyConfig(seed=seed, social=SocialConfig(likes_per_period=3.0, like_activity_drop=0.35)),
        )
        social = cohort.social

    measured: dict[str, dict[str, float]] = {}
    for granularity in GRANULARITIES:
        timeline = discretize(start, end, granularity)
        measured[granularity] = {
            "n_periods": float(len(timeline)),
            "non_empty_percent": 100.0 * social.non_empty_period_fraction(timeline),
        }
    return Figure4Result(measured=measured, reference=PAPER_REFERENCE)
