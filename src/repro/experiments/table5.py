"""Table 5 — the MovieLens 1M dataset statistics.

The paper reports the headline statistics of its evaluation dataset:
6,040 users, 3,952 movies, 1,000,209 ratings.  The reproduction either loads
a local copy of MovieLens 1M (when a path is supplied) or generates the
synthetic, shape-matched equivalent and reports its statistics side by side
with the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.movielens import (
    MOVIELENS_1M_MOVIES,
    MOVIELENS_1M_RATINGS,
    MOVIELENS_1M_USERS,
    MovieLensConfig,
    generate_movielens_like,
    load_movielens,
)
from repro.data.ratings import RatingsDataset

#: The paper's Table 5.
PAPER_REFERENCE = {
    "# users": MOVIELENS_1M_USERS,
    "# movies": MOVIELENS_1M_MOVIES,
    "# ratings": MOVIELENS_1M_RATINGS,
}


@dataclass(frozen=True)
class Table5Result:
    """Measured dataset statistics next to the paper's reference."""

    dataset_name: str
    measured: Mapping[str, int]
    reference: Mapping[str, int]

    def rows(self) -> list[dict[str, object]]:
        """One row per statistic: name, paper value, measured value."""
        return [
            {
                "statistic": key,
                "paper": self.reference[key],
                "measured": self.measured.get(key, 0),
            }
            for key in self.reference
        ]

    def format_table(self) -> str:
        """Human-readable rendering of the table."""
        lines = [f"Table 5 — dataset statistics ({self.dataset_name})"]
        lines.append(f"{'statistic':<12} {'paper':>12} {'measured':>12}")
        for row in self.rows():
            lines.append(f"{row['statistic']:<12} {row['paper']:>12} {row['measured']:>12}")
        return "\n".join(lines)


def run(
    dataset: RatingsDataset | None = None,
    movielens_path: str | None = None,
    config: MovieLensConfig | None = None,
) -> Table5Result:
    """Regenerate Table 5.

    Parameters
    ----------
    dataset:
        Use an already-loaded dataset.
    movielens_path:
        Path to a real ``ratings.dat`` to load instead of generating data.
    config:
        Generator configuration when synthesising (defaults to a small slice;
        pass :func:`repro.data.movielens.movielens_1m_config` for full scale).
    """
    if dataset is None:
        if movielens_path is not None:
            dataset = load_movielens(movielens_path)
        else:
            dataset = generate_movielens_like(config)
    stats = dataset.stats()
    return Table5Result(
        dataset_name=dataset.name,
        measured=stats.as_table_row(),
        reference=PAPER_REFERENCE,
    )
