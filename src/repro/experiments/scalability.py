"""Shared harness for the scalability experiments (Section 4.2, Figures 5-8).

The paper's setup: 20 random groups drawn from the quality-study
participants, default group size 6, ``k = 10``, 3,900 candidate items, AP
consensus, discrete time model over 6 two-month periods.  Every figure varies
exactly one of those knobs and reports the *average percentage of sequential
accesses* (%SA) GRECA needs, compared to a naive algorithm that scans every
list entirely (lower is better; the paper reports savings of 75% or more).

:class:`ScalabilityEnvironment` builds the shared substrate once (dataset,
social network, fitted recommender, participant pool) so that the individual
figure drivers only loop over their parameter of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, stdev
from typing import Sequence

from repro.core.consensus import ConsensusFunction, make_consensus
from repro.core.greca import Greca
from repro.core.recommender import GroupRecommender
from repro.core.timeline import Period, Timeline, one_year_timeline
from repro.data.movielens import MovieLensConfig, generate_movielens_like
from repro.data.ratings import RatingsDataset
from repro.data.social import SocialConfig, SocialNetwork, SocialNetworkGenerator
from repro.exceptions import ConfigurationError
from repro.groups.formation import GroupFormer

#: Paper defaults (Section 4.2, "Experiment Settings").
DEFAULT_N_GROUPS = 20
DEFAULT_GROUP_SIZE = 6
DEFAULT_K = 10
DEFAULT_N_ITEMS = 3_900
DEFAULT_CONSENSUS = "AP"


@dataclass(frozen=True)
class ScalabilityConfig:
    """Configuration of the shared scalability substrate.

    The defaults are scaled down from the paper (which uses the full
    MovieLens 1M catalogue) so that the benchmark suite runs in seconds; the
    paper-scale values can be requested explicitly.
    """

    n_users: int = 150
    n_items: int = 3_900
    n_ratings: int = 80_000
    n_participants: int = 48
    n_groups: int = 8
    group_size: int = DEFAULT_GROUP_SIZE
    k: int = DEFAULT_K
    consensus: str = DEFAULT_CONSENSUS
    granularity: str = "two-month"
    seed: int = 17

    def __post_init__(self) -> None:
        if self.n_participants < self.group_size:
            raise ConfigurationError("need at least group_size participants")
        if self.n_groups <= 0 or self.group_size < 2:
            raise ConfigurationError("n_groups must be positive and group_size >= 2")


@dataclass(frozen=True)
class AccessStats:
    """Average %SA over a set of runs, with the spread reported by the paper's error bars."""

    mean_percent_sa: float
    std_error: float
    n_runs: int

    @property
    def mean_saveup(self) -> float:
        """Average percentage of accesses avoided."""
        return 100.0 - self.mean_percent_sa


def summarize_percent_sa(values: Sequence[float]) -> AccessStats:
    """Aggregate per-run %SA values into mean and standard error."""
    if not values:
        raise ConfigurationError("no %SA values to summarise")
    spread = stdev(values) / (len(values) ** 0.5) if len(values) > 1 else 0.0
    return AccessStats(mean_percent_sa=mean(values), std_error=spread, n_runs=len(values))


class ScalabilityEnvironment:
    """Shared substrate for Figures 5-8: data, recommender and group pool."""

    def __init__(self, config: ScalabilityConfig | None = None) -> None:
        self.config = config or ScalabilityConfig()
        config = self.config

        self.ratings: RatingsDataset = generate_movielens_like(
            MovieLensConfig(
                n_users=config.n_users,
                n_items=config.n_items,
                n_ratings=config.n_ratings,
                seed=config.seed,
            )
        )
        self.timeline: Timeline = one_year_timeline(granularity=config.granularity)
        self.participants: tuple[int, ...] = tuple(self.ratings.users[: config.n_participants])
        self.social: SocialNetwork = SocialNetworkGenerator(
            SocialConfig(seed=config.seed)
        ).generate(self.participants, self.timeline)
        self.recommender = GroupRecommender(
            ratings=self.ratings,
            social=self.social,
            timeline=self.timeline,
            affinity_universe=self.participants,
        ).fit()
        self.former = GroupFormer(self.ratings, candidates=self.participants, seed=config.seed)

    # -- groups ----------------------------------------------------------------------------------

    def random_groups(self, n_groups: int | None = None, group_size: int | None = None) -> list[list[int]]:
        """The paper's "20 different random groups" (counts from the config by default)."""
        return self.former.random_groups(
            n_groups or self.config.n_groups, group_size or self.config.group_size
        )

    # -- measurement ------------------------------------------------------------------------------

    def percent_sa(
        self,
        group: Sequence[int],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
    ) -> float:
        """%SA of one GRECA run for one group."""
        consensus_fn = (
            consensus
            if isinstance(consensus, ConsensusFunction)
            else make_consensus(consensus or self.config.consensus)
        )
        items = None
        if n_items is not None:
            items = list(self.ratings.items[:n_items])
        index = self.recommender.build_index(
            list(group),
            period=period,
            affinity=affinity,
            exclude_rated=False,
            items=items,
        )
        result = Greca(consensus_fn, k=k or self.config.k).run(index)
        return result.percent_sequential_accesses

    def average_percent_sa(
        self,
        groups: Sequence[Sequence[int]],
        k: int | None = None,
        consensus: str | ConsensusFunction | None = None,
        affinity: str = "discrete",
        period: Period | None = None,
        n_items: int | None = None,
    ) -> AccessStats:
        """Average %SA over a collection of groups (one GRECA run each)."""
        values = [
            self.percent_sa(
                group, k=k, consensus=consensus, affinity=affinity, period=period, n_items=n_items
            )
            for group in groups
        ]
        return summarize_percent_sa(values)
