"""Round-kernel equivalence: every registered tier ≡ the reference kernel.

The :mod:`repro.core.kernels` seam promises that every registered kernel —
``reference`` (the extracted original loops), ``fused`` (batched numpy
gather/scatter) and, when the optional dependency is installed, ``numba``
(njit-compiled fused steps) — is **bit-identical**: same top-k items, same
bounds and exact scores, same sequential/random access counts, same round
counts and stopping reasons, on every instance.  This suite pins that down
along the same axes the storage/executor seams use:

* **golden grid** — every :mod:`engine_grid` GRECA case, per kernel, against
  the reference run (and the frozen golden values are already enforced by
  ``tests/test_engine_equivalence.py`` for the reference tier);
* **property suite** — the 56 randomized instances of
  ``tests/test_engine_properties.py`` replayed per kernel;
* **sharded tiers** — the grid through :func:`repro.parallel.evaluate_tasks`
  at shard counts {1, 2, 3, 7} under pickle, shm and mmap storage, the
  chaos (supervised fault-recovery) path, and epoch-swapped environments;
* **plumbing** — the ``kernel=`` knob round-trips through
  :class:`~repro.parallel.ExecutionPolicy` / :func:`resolve_policy`,
  :class:`~repro.experiments.scalability.ScalabilityEnvironment`,
  :class:`~repro.service.ServiceConfig` and the runner CLI, and unknown
  names raise at the single choice point;
* **allocation regressions** — the hoisted threshold columns and the pooled
  candidate buffers may not regress into per-check / per-run allocations.

Float equality is exact (``==``) throughout: the fused tier only ever
*assigns* into the bound arrays (never accumulates), so there is no
legitimate source of floating-point divergence.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from engine_grid import GRECA_CASES, greca_case_inputs
from test_engine_properties import (
    MAX_APREF,
    SEEDS,
    assert_greca_results_identical,
    build_index,
    random_case,
)

from repro.core.consensus import make_consensus
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory
from repro.core.kernels import (
    KERNEL_FUSED,
    KERNEL_NUMBA,
    KERNEL_REFERENCE,
    NUMBA_AVAILABLE,
    FusedRoundKernel,
    ReferenceRoundKernel,
    RoundKernel,
    kernel_names,
    make_round_state,
    resolve_kernel,
    validate_kernel_name,
)
from repro.exceptions import ConfigurationError
from repro.experiments.scalability import ScalabilityConfig, ScalabilityEnvironment
from repro.parallel import (
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    GroupEvalTask,
    SerialShardExecutor,
    SupervisionPolicy,
    evaluate_tasks,
    group_key,
    record_from_result,
    resolve_policy,
    run_task,
)
from repro.service import ServiceConfig

#: Every kernel registered in this interpreter (numba only when importable).
KERNELS = kernel_names()

#: The tiers that must diverge from the reference, i.e. everything else.
FAST_KERNELS = tuple(name for name in KERNELS if name != KERNEL_REFERENCE)

#: Shard counts required by the acceptance criteria.
SHARD_COUNTS = (1, 2, 3, 7)


def run_case(case: dict, kernel: str | None, check_interval=...):
    """One golden-grid case under a kernel (optionally overriding the interval)."""
    inputs = greca_case_inputs(case)
    index = GrecaIndex(**inputs)
    interval = case["check_interval"] if check_interval is ... else check_interval
    algorithm = Greca(
        make_consensus(case["consensus"]),
        k=case["k"],
        check_interval=interval,
        kernel=kernel,
    )
    return algorithm.run(index)


# -- registry and the single choice point -------------------------------------------------------


def test_registry_always_offers_reference_and_fused():
    assert KERNEL_REFERENCE in KERNELS
    assert KERNEL_FUSED in KERNELS
    assert (KERNEL_NUMBA in KERNELS) == NUMBA_AVAILABLE


@pytest.mark.parametrize("bogus", ["warp", "FUSED", "cuda", "reference ", ""])
def test_unknown_kernel_raises_value_error(bogus):
    """Unknown kernel names fail at the single choice point, listing the tiers."""
    with pytest.raises(ValueError, match="unknown kernel"):
        validate_kernel_name(bogus)
    with pytest.raises(ValueError, match="'fused', 'reference'"):
        Greca(make_consensus("AP"), k=3, kernel=bogus)
    with pytest.raises(ValueError, match="unknown kernel"):
        ExecutionPolicy(kernel=bogus)


def test_resolve_kernel_accepts_names_instances_and_none():
    assert isinstance(resolve_kernel(None), ReferenceRoundKernel)
    assert isinstance(resolve_kernel(KERNEL_FUSED), FusedRoundKernel)
    instance = FusedRoundKernel()
    assert resolve_kernel(instance) is instance
    assert isinstance(instance, RoundKernel)  # the protocol is structural


def test_runner_rejects_unknown_kernel_before_running():
    """--kernel goes through the same choice point, before any experiment."""
    from repro.experiments import runner

    with pytest.raises(ValueError, match="unknown kernel"):
        runner.main(["--kernel", "warp", "--list"])


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
def test_numba_kernel_is_gated_when_absent():
    """Without numba the tier is unregistered and unconstructible, cleanly."""
    from repro.core.kernels import NumbaRoundKernel

    assert KERNEL_NUMBA not in kernel_names()
    with pytest.raises(ValueError, match="unknown kernel"):
        validate_kernel_name(KERNEL_NUMBA)
    with pytest.raises(RuntimeError, match="numba"):
        NumbaRoundKernel()


# -- golden grid × kernels ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", FAST_KERNELS)
@pytest.mark.parametrize("case", GRECA_CASES, ids=lambda case: case["case_id"])
def test_grid_kernel_matches_reference(case, kernel):
    """Every grid case: the fast tier reproduces the reference run exactly."""
    assert_greca_results_identical(run_case(case, kernel), run_case(case, None))


@pytest.mark.parametrize("case", GRECA_CASES[:4], ids=lambda case: case["case_id"])
def test_grid_default_kernel_is_the_reference_tier(case):
    """kernel=None and kernel="reference" are the same code path and results."""
    assert_greca_results_identical(
        run_case(case, KERNEL_REFERENCE), run_case(case, None)
    )


# -- property suite × kernels -------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_random_instances_fused_matches_reference(seed):
    """56 randomized substrates: fused ≡ reference on every observable."""
    case = random_case(seed)
    consensus = make_consensus(case["consensus"])
    reference = Greca(consensus, k=case["k"]).run(build_index(case))
    fused = Greca(consensus, k=case["k"], kernel=KERNEL_FUSED).run(build_index(case))
    assert_greca_results_identical(fused, reference)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba is not installed")
@pytest.mark.parametrize("seed", SEEDS[:16])
def test_random_instances_numba_matches_reference(seed):
    case = random_case(seed)
    consensus = make_consensus(case["consensus"])
    reference = Greca(consensus, k=case["k"]).run(build_index(case))
    compiled = Greca(consensus, k=case["k"], kernel=KERNEL_NUMBA).run(build_index(case))
    assert_greca_results_identical(compiled, reference)


# -- edge cases, identical across every registered kernel ---------------------------------------


def pair_free_index() -> GrecaIndex:
    """A two-member group with *no* affinity data at all (empty pair lists)."""
    items = list(range(200, 212))
    aprefs = {
        member: {item: ((item * 7 + member * 13) % 50) / 10.0 for item in items}
        for member in (1, 2)
    }
    return GrecaIndex(members=[1, 2], aprefs=aprefs, static={}, periodic={}, averages={})


@pytest.mark.parametrize("kernel", FAST_KERNELS)
def test_pair_free_group_matches_reference(kernel):
    """Empty static/periodic affinity inputs: every kernel agrees exactly."""
    consensus = make_consensus("AP")
    reference = Greca(consensus, k=3).run(pair_free_index())
    fast = Greca(consensus, k=3, kernel=kernel).run(pair_free_index())
    assert_greca_results_identical(fast, reference)
    assert len(reference.items) == 3


@pytest.mark.parametrize("kernel", KERNELS)
def test_k_larger_than_catalogue_matches_reference(kernel):
    """k > n_items clamps to the catalogue and exhausts, on every tier."""
    consensus = make_consensus("MO")
    reference = Greca(consensus, k=50).run(pair_free_index())
    run = Greca(consensus, k=50, kernel=kernel).run(pair_free_index())
    assert_greca_results_identical(run, reference)
    assert run.k == 12 and len(run.items) == 12


@pytest.mark.parametrize("kernel", FAST_KERNELS)
@pytest.mark.parametrize("check_interval", (1, None))
def test_check_interval_extremes_match_reference(kernel, check_interval):
    """check_interval=1 (a check every round) and the adaptive default agree."""
    case = random_case(3)
    consensus = make_consensus(case["consensus"])
    reference = Greca(consensus, k=case["k"], check_interval=check_interval).run(
        build_index(case)
    )
    fast = Greca(
        consensus, k=case["k"], check_interval=check_interval, kernel=kernel
    ).run(build_index(case))
    assert_greca_results_identical(fast, reference)


def test_round_block_guards_against_drained_lists():
    """The defensive max_remaining == 0 guard yields one idle round, not a hang."""
    assert Greca._round_block(0, 0, 5) == 1
    assert Greca._round_block(0, 17, 3) == 1
    # The normal schedule: advance to the next check boundary or exhaustion.
    assert Greca._round_block(10, 0, 4) == 4
    assert Greca._round_block(10, 6, 4) == 2
    assert Greca._round_block(3, 0, 4) == 3


@pytest.mark.parametrize("kernel", KERNELS)
def test_advance_on_drained_lists_is_a_no_op(kernel):
    """Advancing fully read lists records nothing and rewrites nothing."""
    index = pair_free_index()
    from repro.core.bounds import PairwiseAffinityBounds
    from repro.core.lists import AccessCounter

    counter = AccessCounter()
    preference_lists, static_lists, periodic_lists = index.build_lists(counter)
    bounds = PairwiseAffinityBounds(
        index.members,
        index.period_indices,
        index.combine,
        static_lists,
        periodic_lists,
        combine_batch=index.combine_batch,
    )
    state = make_round_state(
        preference_lists, bounds, len(index.members), len(index.items)
    )
    backend = resolve_kernel(kernel)
    backend.advance(state, len(index.items))  # drain everything
    drained_sa = counter.sequential
    snapshot_low = state.apref_low.copy()
    snapshot_high = state.apref_high.copy()
    backend.advance(state, 1)  # the defensive idle round
    assert counter.sequential == drained_sa  # no phantom accesses
    assert np.array_equal(state.apref_low, snapshot_low)
    assert np.array_equal(state.apref_high, snapshot_high)
    assert state.rounds == len(index.items) + 1


# -- sharded tiers ------------------------------------------------------------------------------


def _grid_tasks(kernel: str | None):
    """Every golden-grid case as a shippable task carrying ``kernel``."""
    tasks: list[GroupEvalTask] = []
    factories: dict = {}
    for case_index, case in enumerate(GRECA_CASES):
        inputs = greca_case_inputs(case)
        key = group_key([case_index * 1000 + member for member in inputs["members"]])
        factories[key] = GrecaIndexFactory(
            members=inputs["members"], aprefs=inputs["aprefs"]
        )
        tasks.append(
            GroupEvalTask(
                group=key,
                k=case["k"],
                consensus=make_consensus(case["consensus"]),
                static=inputs["static"],
                periodic=inputs["periodic"],
                averages=inputs["averages"],
                time_model=inputs["time_model"],
                check_interval=case["check_interval"],
                kernel=kernel,
            )
        )
    return tasks, factories


@pytest.fixture(scope="module")
def grid_serial():
    """Serial reference-kernel records: fresh construction, one run per case."""
    records = []
    for case_index, case in enumerate(GRECA_CASES):
        inputs = greca_case_inputs(case)
        key = group_key([case_index * 1000 + member for member in inputs["members"]])
        records.append(record_from_result(key, run_case(case, None)))
    return records


def assert_records_identical(actual, expected):
    assert len(actual) == len(expected)
    for position, (got, want) in enumerate(zip(actual, expected)):
        assert got == want, (
            f"task {position} diverged:\n  kernel run: {got}\n  reference:  {want}"
        )


def test_task_borne_kernel_reaches_the_worker(grid_serial):
    """run_task honours the task's kernel; results stay the reference's."""
    tasks, factories = _grid_tasks(KERNEL_FUSED)
    records = [run_task(task, factories[task.group]) for task in tasks]
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_fused_sharded_pickle_matches_serial(grid_serial, n_shards):
    """Fused tasks, by-value payloads, shard counts {1, 2, 3, 7}."""
    tasks, factories = _grid_tasks(KERNEL_FUSED)
    records = evaluate_tasks(
        tasks, factories, n_shards=n_shards, executor=SerialShardExecutor()
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_fused_sharded_shm_matches_serial(grid_serial, n_shards):
    """Fused tasks over shm descriptor shipment, {1, 2, 3, 7}."""
    tasks, factories = _grid_tasks(KERNEL_FUSED)
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=n_shards,
        executor=SerialShardExecutor(),
        shipment="shm",
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_fused_sharded_mmap_matches_serial(grid_serial, n_shards):
    """Fused tasks over mmap spool-file storage, {1, 2, 3, 7}."""
    tasks, factories = _grid_tasks(KERNEL_FUSED)
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=n_shards,
        executor=SerialShardExecutor(),
        shipment="shm",
        storage="mmap",
    )
    assert_records_identical(records, grid_serial)


def test_grid_fused_through_real_process_workers(grid_serial):
    """The kernel name survives pickling into a real worker process."""
    tasks, factories = _grid_tasks(KERNEL_FUSED)
    records = evaluate_tasks(tasks, factories, n_shards=2, executor="process")
    assert_records_identical(records, grid_serial)


def test_grid_fused_chaos_recovery_matches_serial(grid_serial):
    """Supervised fault recovery re-ships fused tasks; records stay exact."""
    tasks, factories = _grid_tasks(KERNEL_FUSED)
    plan = FaultPlan(
        (
            FaultSpec(shard=0, position=1, mode="raise", fires=1),
            FaultSpec(shard=1, position=0, mode="crash", fires=1),
        )
    )
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=3,
        executor="supervised",
        supervision=SupervisionPolicy(max_retries=2, backoff_base=0.001),
        fault_plan=plan,
    )
    assert_records_identical(records, grid_serial)


# -- environment / policy plumbing --------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_environment():
    env = ScalabilityEnvironment(
        ScalabilityConfig(
            n_users=50,
            n_items=220,
            n_ratings=2_500,
            n_participants=12,
            n_groups=4,
            seed=23,
        )
    )
    yield env
    env.close()


@pytest.fixture(scope="module")
def tiny_groups(tiny_environment):
    return tiny_environment.random_groups()


def test_environment_kernel_knob_matches_serial_reference(
    tiny_environment, tiny_groups
):
    """run_records(kernel="fused") reproduces the reference records exactly."""
    serial = tiny_environment.run_records(tiny_groups)
    fused = tiny_environment.run_records(tiny_groups, kernel=KERNEL_FUSED)
    assert_records_identical(fused, serial)
    stats = tiny_environment.average_percent_sa(tiny_groups)
    assert tiny_environment.average_percent_sa(tiny_groups, kernel=KERNEL_FUSED) == stats


@pytest.mark.parametrize("n_workers", (1, 3))
def test_environment_sharded_kernel_matches_serial_reference(
    tiny_environment, tiny_groups, n_workers
):
    """Policy-borne kernels are stamped onto the dispatched tasks."""
    serial = tiny_environment.run_records(tiny_groups)
    sharded = tiny_environment.run_records(
        tiny_groups, n_workers=n_workers, executor="serial", kernel=KERNEL_FUSED
    )
    assert_records_identical(sharded, serial)
    bundled = tiny_environment.run_records(
        tiny_groups,
        policy=ExecutionPolicy(n_workers=n_workers, executor="serial", kernel=KERNEL_FUSED),
    )
    assert_records_identical(bundled, serial)


def test_explicit_task_kernel_wins_over_the_policy(tiny_environment, tiny_groups):
    """evaluate() only stamps kernel-less tasks; explicit choices survive."""
    tasks = [tiny_environment.task_for(group) for group in tiny_groups]
    explicit = [replace(task, kernel=KERNEL_REFERENCE) for task in tasks]
    serial = tiny_environment.evaluate(tasks)
    stamped = tiny_environment.evaluate(tasks, kernel=KERNEL_FUSED)
    kept = tiny_environment.evaluate(explicit, kernel=KERNEL_FUSED)
    assert_records_identical(stamped, serial)
    assert_records_identical(kept, serial)


def test_policy_round_trips_the_kernel_knob():
    assert ExecutionPolicy().kernel is None
    assert ExecutionPolicy().kernel_name == KERNEL_REFERENCE
    policy = ExecutionPolicy(kernel=KERNEL_FUSED)
    assert policy.kernel_name == KERNEL_FUSED
    assert resolve_policy(policy) is policy
    assert resolve_policy(kernel=KERNEL_FUSED).kernel == KERNEL_FUSED


def test_policy_and_legacy_kernel_spellings_cannot_mix():
    with pytest.raises(ConfigurationError, match="not both"):
        resolve_policy(ExecutionPolicy(kernel=KERNEL_FUSED), kernel=KERNEL_FUSED)


def test_service_config_validates_and_bundles_the_kernel():
    config = ServiceConfig(kernel=KERNEL_FUSED)
    assert config.execution_policy().kernel == KERNEL_FUSED
    assert ServiceConfig().execution_policy().kernel is None
    with pytest.raises(ValueError, match="unknown kernel"):
        ServiceConfig(kernel="warp")
    with pytest.raises(ConfigurationError, match="not both"):
        ServiceConfig(kernel=KERNEL_FUSED, policy=ExecutionPolicy(n_workers=2))


# -- epoch swaps --------------------------------------------------------------------------------


def test_kernel_equivalence_survives_epoch_swaps():
    """Post-delta state: fused ≡ reference on the incrementally evolved world."""
    from repro.experiments.scalability import EnvironmentSubstrate
    from repro.updates import random_deltas

    config = ScalabilityConfig(
        n_users=30, n_items=120, n_ratings=1_200, n_participants=10, n_groups=2, seed=3
    )
    substrate = EnvironmentSubstrate.generate(config)
    deltas = random_deltas(
        substrate.ratings,
        substrate.social,
        substrate.timeline,
        n_deltas=2,
        seed=9,
        new_period_every=2,
    )
    env = ScalabilityEnvironment(config, substrate=substrate)
    groups = [tuple(substrate.participants[:3]), tuple(substrate.participants[3:6])]
    for group in groups:
        env.index_factory(group)  # warm, so the deltas exercise invalidation
    try:
        for delta in deltas:
            env.apply_delta(delta)
        serial = env.run_records(groups)
        fused = env.run_records(groups, kernel=KERNEL_FUSED)
        assert_records_identical(fused, serial)
        sharded = env.run_records(
            groups, n_workers=2, executor="serial", kernel=KERNEL_FUSED
        )
        assert_records_identical(sharded, serial)
    finally:
        env.close()


# -- allocation regressions ---------------------------------------------------------------------


class _CountingNumpy:
    """A numpy facade that counts ``zeros``/``empty`` allocations."""

    def __init__(self):
        self.zeros_calls = 0
        self.empty_calls = 0

    def zeros(self, *args, **kwargs):
        self.zeros_calls += 1
        return np.zeros(*args, **kwargs)

    def empty(self, *args, **kwargs):
        self.empty_calls += 1
        return np.empty(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(np, name)


@pytest.mark.parametrize("kernel", (None, KERNEL_FUSED))
def test_round_state_allocations_are_independent_of_check_count(monkeypatch, kernel):
    """The virtual_* threshold columns are allocated once per run, not per check.

    ``check_interval=1`` evaluates the stopping conditions every single
    round; the kernels module must still allocate exactly the fixed
    :class:`RoundState` arrays (3 ``zeros`` + 5 ``empty``) it allocates
    under the adaptive interval — the PR 10 hoist of the per-check
    ``virtual_low``/``virtual_high`` columns.
    """
    from repro.core import kernels as kernels_module

    index = pair_free_index()
    consensus = make_consensus("AP")
    counts = {}
    for label, interval in (("adaptive", None), ("every-round", 1)):
        counting = _CountingNumpy()
        monkeypatch.setattr(kernels_module, "np", counting)
        try:
            Greca(consensus, k=3, check_interval=interval, kernel=kernel).run(index)
        finally:
            monkeypatch.setattr(kernels_module, "np", np)
        counts[label] = (counting.zeros_calls, counting.empty_calls)
    assert counts["adaptive"] == counts["every-round"] == (3, 5)


def test_candidate_buffer_is_pooled_across_factory_runs(monkeypatch):
    """Sibling indexes from one factory share one pooled candidate buffer.

    Before PR 10 every ``Greca.run`` paid a fresh
    :class:`ColumnarCandidateBuffer` (an O(items) slot registration); the
    pool on the shared substrate makes the second run — even through the
    memoised factory path — reuse the first run's buffer.
    """
    from repro.core import greca as greca_module

    constructions = []
    real_buffer = greca_module.ColumnarCandidateBuffer

    class CountingBuffer(real_buffer):
        def __init__(self, *args, **kwargs):
            constructions.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(greca_module, "ColumnarCandidateBuffer", CountingBuffer)

    case = random_case(11)
    factory = GrecaIndexFactory(case["members"], case["aprefs"], max_apref=MAX_APREF)
    algorithm = Greca(make_consensus(case["consensus"]), k=case["k"])
    first = factory.build(
        case["static"],
        periodic=case["periodic"],
        averages=case["averages"],
        time_model=case["time_model"],
    )
    second = factory.build(case["static"], time_model=case["time_model"])
    results = [algorithm.run(first), algorithm.run(second), algorithm.run(first)]
    assert len(constructions) == 1  # one allocation serves every sibling run
    assert all(result.k == min(case["k"], len(factory.items)) for result in results)


def test_restricted_indexes_do_not_share_the_pool():
    """Item-restricted siblings live in a different universe: no pooled buffer."""
    case = random_case(4)
    factory = GrecaIndexFactory(case["members"], case["aprefs"], max_apref=MAX_APREF)
    full = factory.build(case["static"], time_model=case["time_model"])
    subset = sorted(case["items"])[: max(2, len(case["items"]) // 2)]
    restricted = factory.build(
        case["static"], time_model=case["time_model"], items=subset
    )
    assert restricted._buffer_pool is not full._buffer_pool
    algorithm = Greca(make_consensus("AP"), k=2)
    run_full = algorithm.run(full)
    run_restricted = algorithm.run(restricted)
    assert set(run_restricted.items) <= set(subset)
    assert len(run_full.items) == len(run_restricted.items) == 2
