"""Candidate buffer used by GRECA (Section 3.2, "Buffer Management Strategy").

The buffer holds every item encountered so far together with its current
lower- and upper-bound consensus scores.  GRECA's novel termination condition
is expressed purely in terms of the buffer: it can stop as soon as the buffer
holds at least ``k`` items and the ``k``-th largest lower bound is no smaller
than the upper bound of every other buffered item (and, to also rule out
items never encountered, no smaller than the global threshold).

The buffer is deliberately a small, dictionary-backed structure: GRECA
recomputes bounds in bulk (vectorised over items) and pushes them here, so
the buffer's job is bookkeeping and the top-k/pruning queries, not incremental
heap maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.exceptions import AlgorithmError


@dataclass(frozen=True)
class BufferedItem:
    """An item with its current score bounds."""

    item: Hashable
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise AlgorithmError(
                f"item {self.item!r}: lower bound {self.lower} exceeds upper bound {self.upper}"
            )


class CandidateBuffer:
    """Items encountered so far with their [lower, upper] consensus bounds."""

    def __init__(self) -> None:
        self._items: dict[Hashable, BufferedItem] = {}

    # -- container protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[BufferedItem]:
        return iter(self._items.values())

    # -- updates -------------------------------------------------------------------------

    def update(self, item: Hashable, lower: float, upper: float) -> None:
        """Insert or refresh the bounds of one item."""
        self._items[item] = BufferedItem(item, lower, upper)

    def update_many(self, bounds: Mapping[Hashable, tuple[float, float]]) -> None:
        """Bulk insert/refresh from ``{item: (lower, upper)}``."""
        for item, (lower, upper) in bounds.items():
            self.update(item, lower, upper)

    def remove(self, items: Iterable[Hashable]) -> None:
        """Drop items that have been pruned."""
        for item in items:
            self._items.pop(item, None)

    # -- queries -------------------------------------------------------------------------

    def get(self, item: Hashable) -> BufferedItem | None:
        """The buffered record of ``item`` or ``None``."""
        return self._items.get(item)

    def ranked_by_lower_bound(self) -> list[BufferedItem]:
        """All buffered items sorted by decreasing lower bound (ties by item repr)."""
        return sorted(self._items.values(), key=lambda entry: (-entry.lower, repr(entry.item)))

    def top_k(self, k: int) -> list[BufferedItem]:
        """The ``k`` buffered items with the highest lower bounds."""
        if k <= 0:
            raise AlgorithmError("k must be positive")
        return self.ranked_by_lower_bound()[:k]

    def kth_lower_bound(self, k: int) -> float | None:
        """Lower bound of the ``k``-th ranked item (``None`` if fewer than ``k`` items)."""
        ranked = self.ranked_by_lower_bound()
        if len(ranked) < k:
            return None
        return ranked[k - 1].lower

    def satisfies_buffer_condition(self, k: int, tolerance: float = 1e-9) -> bool:
        """GRECA's buffer termination test.

        ``True`` when the buffer holds at least ``k`` items and the ``k``-th
        largest lower bound is no smaller than the upper bound of every item
        outside that top-k set.  With exactly ``k`` items the condition is
        vacuously satisfied (there is nothing left to prune).
        """
        ranked = self.ranked_by_lower_bound()
        if len(ranked) < k:
            return False
        kth_lower = ranked[k - 1].lower
        return all(entry.upper <= kth_lower + tolerance for entry in ranked[k:])

    def max_upper_bound_outside_top_k(self, k: int) -> float | None:
        """Largest upper bound among items not in the current top-k (``None`` if none)."""
        ranked = self.ranked_by_lower_bound()
        if len(ranked) <= k:
            return None
        return max(entry.upper for entry in ranked[k:])
