"""Figure 1 — independent evaluation of group recommendation quality.

Six configurations (default temporal-affinity AP, affinity-agnostic,
time-agnostic, continuous time model, MO and PD) are scored per group
characteristic using the satisfaction oracle.  The paper's qualitative
findings that the reproduction should exhibit:

* the default temporal-affinity configuration scores highly (>= 80% in the
  paper) for every characteristic;
* dropping affinity (chart B) or time (chart C) costs a large margin
  (~20 points in the paper), with affinity mattering most for small, similar
  and high-affinity groups and time mattering most for dissimilar and large
  groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.study.environment import CHARACTERISTICS, StudyEnvironment, build_study_environment
from repro.study.independent import FIGURE1_CONFIGURATIONS, IndependentChart, IndependentEvaluation

#: Selected values reported in the paper's discussion of Figure 1.
PAPER_REFERENCE = {
    "A (Default)": {"Diss": 90.66, "overall_at_least": 80.0},
    "B (Affinity-agnostic)": {"Small": 30.08, "High Aff": 36.66, "Sim": 40.0, "overall_at_most": 55.0},
    "C (Time-agnostic)": {"Diss": 50.19, "Large": 50.19, "overall_at_most": 60.0},
}


@dataclass(frozen=True)
class Figure1Result:
    """The six charts of Figure 1."""

    charts: Mapping[str, IndependentChart]

    def rows(self) -> list[dict[str, object]]:
        """Flat rows: chart, characteristic, measured preference percentage."""
        rows = []
        for label, chart in self.charts.items():
            for characteristic in CHARACTERISTICS:
                rows.append(
                    {
                        "chart": label,
                        "characteristic": characteristic,
                        "preference_percent": round(chart.preference_percent[characteristic], 2),
                    }
                )
        return rows

    def format_table(self) -> str:
        """Human-readable rendering (one line per chart)."""
        lines = ["Figure 1 — independent evaluation (preference %)"]
        header = f"{'chart':<26}" + "".join(f"{c:>10}" for c in CHARACTERISTICS)
        lines.append(header)
        for label, chart in self.charts.items():
            values = "".join(
                f"{chart.preference_percent[c]:>10.1f}" for c in CHARACTERISTICS
            )
            lines.append(f"{label:<26}{values}")
        return "\n".join(lines)


def run(
    environment: StudyEnvironment | None = None,
    k: int = 5,
) -> Figure1Result:
    """Regenerate Figure 1 (all six charts)."""
    environment = environment or build_study_environment()
    evaluation = IndependentEvaluation(environment, k=k)
    return Figure1Result(charts=evaluation.run())
