"""Serial ≡ parallel equivalence of the sharded group-evaluation layer.

The sharded layer (:mod:`repro.parallel`) must be *observationally
invisible*: for any shard count, any executor backend and any partition of
the tasks, the merged records — %SA values, sequential/random access counts,
top-k items, stopping reasons, round counts — must be bit-for-bit the serial
reference sequence.  This suite pins that down at three levels:

* **engine level** — the golden grid of :mod:`engine_grid` replayed through
  :func:`repro.parallel.evaluate_tasks` at shard counts {1, 2, 3, 7}, with
  the in-process, process-pool and persistent-pool executors and both
  shipment modes (pickle-by-value and zero-copy shared memory), against a
  serial :class:`~repro.core.greca.Greca` reference run;
* **plan level** — seeded property cases: *arbitrary* partitions of the task
  indices (shuffled, uneven, non-contiguous) merge to exactly the serial
  sequence, so the planner's particular slicing policy is irrelevant to
  correctness;
* **environment level** — :class:`ScalabilityEnvironment` measurements
  (``average_percent_sa``, ``run_records`` across periods / item subsets /
  consensus functions, ``run_quick_smoke``, the figure 6/8 drivers) with
  ``n_workers`` set produce the exact serial statistics, standard errors
  included.

Float equality here is exact (``==``), never approximate: the merger restores
task order before anything is summed, so there is no legitimate source of
floating-point divergence.
"""

from __future__ import annotations

import os
import random

import pytest

from engine_grid import GRECA_CASES, greca_case_inputs

from repro.core.consensus import make_consensus
from repro.core.greca import Greca, GrecaIndex, GrecaIndexFactory
from repro.exceptions import ConfigurationError
from repro.experiments import figure6, figure8
from repro.experiments.scalability import (
    ScalabilityConfig,
    ScalabilityEnvironment,
    run_quick_smoke,
    summarize_percent_sa,
)
from repro.parallel import (
    ExecutionPolicy,
    GroupEvalTask,
    PersistentShardExecutor,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardPayload,
    ShardPlan,
    SharedArrayRegistry,
    build_payloads,
    evaluate_tasks,
    group_key,
    materialise_factory,
    merge_shard_records,
    plan_shards,
    record_from_result,
    resolve_executor,
    resolve_policy,
    run_shard,
)

#: Shard counts required by the acceptance criteria.
SHARD_COUNTS = (1, 2, 3, 7)

#: Seeds for the shard-plan invariance property cases.
PLAN_SEEDS = tuple(range(10))


# -- shard planner ------------------------------------------------------------------------------


@pytest.mark.parametrize(
    "n_tasks,n_shards",
    [(1, 1), (5, 1), (5, 2), (5, 5), (5, 7), (16, 3), (16, 7), (100, 7), (0, 3)],
)
def test_plan_shards_is_a_balanced_contiguous_partition(n_tasks, n_shards):
    plan = plan_shards(n_tasks, n_shards)
    # A true partition in task order...
    assert [i for shard in plan.shards for i in shard] == list(range(n_tasks))
    # ...with no empty shards, at most n_shards of them...
    assert plan.n_shards == min(n_shards, n_tasks)
    assert all(len(shard) > 0 for shard in plan.shards)
    # ...balanced to within one task.
    if plan.n_shards:
        sizes = plan.shard_sizes()
        assert max(sizes) - min(sizes) <= 1


def test_plan_shards_rejects_bad_counts():
    with pytest.raises(ConfigurationError):
        plan_shards(4, 0)
    with pytest.raises(ConfigurationError):
        plan_shards(-1, 2)


def test_shard_plan_rejects_non_partitions():
    with pytest.raises(ConfigurationError):
        ShardPlan(n_tasks=3, shards=((0, 1), (1, 2)))  # duplicate index
    with pytest.raises(ConfigurationError):
        ShardPlan(n_tasks=3, shards=((0,), (2,)))  # missing index
    with pytest.raises(ConfigurationError):
        ShardPlan(n_tasks=2, shards=((0, 1, 2),))  # out of range


def test_merge_rejects_mismatched_results(grid_serial):
    plan = plan_shards(3, 2)
    record = grid_serial[0]
    with pytest.raises(ConfigurationError):
        merge_shard_records(plan, [[record, record]])  # one shard of results missing
    with pytest.raises(ConfigurationError):
        merge_shard_records(plan, [[record], [record]])  # shard 0 under-delivers


def test_group_key_canonicalises_to_python_ints():
    np = pytest.importorskip("numpy")
    key = group_key([np.int64(3), np.int32(1), 2])
    assert key == (3, 1, 2)
    assert all(type(member) is int for member in key)


# -- engine level: the golden grid through the sharded pipeline ---------------------------------


def _grid_tasks() -> tuple[list[GroupEvalTask], dict]:
    """Every golden-grid GRECA case as a shippable task + its group factory.

    Distinct cases share member ids, so the factory key embeds the case index
    to keep one factory (and one preference substrate) per case.
    """
    tasks: list[GroupEvalTask] = []
    factories: dict = {}
    for case_index, case in enumerate(GRECA_CASES):
        inputs = greca_case_inputs(case)
        key = group_key([case_index * 1000 + member for member in inputs["members"]])
        factories[key] = GrecaIndexFactory(
            members=inputs["members"], aprefs=inputs["aprefs"]
        )
        tasks.append(
            GroupEvalTask(
                group=key,
                k=case["k"],
                consensus=make_consensus(case["consensus"]),
                static=inputs["static"],
                periodic=inputs["periodic"],
                averages=inputs["averages"],
                time_model=inputs["time_model"],
                check_interval=case["check_interval"],
            )
        )
    return tasks, factories


def _grid_serial_records() -> list:
    """Serial reference: fresh index construction + one Greca run per case."""
    records = []
    for case_index, case in enumerate(GRECA_CASES):
        inputs = greca_case_inputs(case)
        key = group_key([case_index * 1000 + member for member in inputs["members"]])
        index = GrecaIndex(**inputs)
        algorithm = Greca(
            make_consensus(case["consensus"]),
            k=case["k"],
            check_interval=case["check_interval"],
        )
        records.append(record_from_result(key, algorithm.run(index)))
    return records


@pytest.fixture(scope="module")
def grid_serial():
    return _grid_serial_records()


@pytest.fixture(scope="module")
def grid_tasks():
    return _grid_tasks()


def assert_records_identical(actual, expected):
    """Field-by-field bit-identity, with a per-case diff on failure."""
    assert len(actual) == len(expected)
    for position, (got, want) in enumerate(zip(actual, expected)):
        assert got == want, (
            f"task {position} diverged:\n  sharded: {got}\n  serial:  {want}"
        )


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_sharded_inprocess_matches_serial(grid_tasks, grid_serial, n_shards):
    """Golden grid, in-process shard executor, shard counts {1, 2, 3, 7}."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        tasks, factories, n_shards=n_shards, executor=SerialShardExecutor()
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_sharded_process_pool_matches_serial(grid_tasks, grid_serial, n_shards):
    """Golden grid, real process workers (default shm shipment), {1, 2, 3, 7}."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(tasks, factories, n_shards=n_shards, executor="process")
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_sharded_process_pickle_shipment_matches_serial(
    grid_tasks, grid_serial, n_shards
):
    """Golden grid, process workers with forced by-value pickle shipment."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        tasks, factories, n_shards=n_shards, executor="process", shipment="pickle"
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_sharded_shm_inprocess_matches_serial(grid_tasks, grid_serial, n_shards):
    """Golden grid, forced shm shipment attached in-process, {1, 2, 3, 7}.

    Exercises export → descriptor → reattach → ``GrecaIndexFactory
    .from_columns`` without any process in between, so a divergence here is
    a shipment bug, not a scheduling one.
    """
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        tasks, factories, n_shards=n_shards, executor=SerialShardExecutor(), shipment="shm"
    )
    assert_records_identical(records, grid_serial)


@pytest.fixture(scope="module")
def warm_pool():
    """One persistent pool shared by every persistent-executor grid case."""
    with PersistentShardExecutor(n_workers=3) as pool:
        yield pool


@pytest.fixture(scope="module")
def warm_registry():
    """One long-lived shm registry, segments shared across dispatches."""
    with SharedArrayRegistry() as registry:
        yield registry


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_sharded_persistent_pool_matches_serial(
    grid_tasks, grid_serial, warm_pool, warm_registry, n_shards
):
    """Golden grid through one warm persistent pool + shared registry.

    Successive parametrised cases reuse the same worker processes and the
    same shared-memory segments — the exact amortisation the figure suite
    relies on — and every shard count must still merge to the serial
    records bit-for-bit.
    """
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        tasks, factories, n_shards=n_shards, executor=warm_pool, registry=warm_registry
    )
    assert_records_identical(records, grid_serial)
    assert warm_pool.warm  # evaluate_tasks must not tear down a caller-owned pool
    assert not warm_registry.closed  # ...nor unlink a caller-owned registry


def test_persistent_pool_stays_warm_across_dispatches(grid_tasks, grid_serial):
    """Two dispatches reuse one ProcessPoolExecutor; records stay identical."""
    tasks, factories = grid_tasks
    with PersistentShardExecutor(n_workers=2) as pool, SharedArrayRegistry() as registry:
        first = evaluate_tasks(tasks, factories, executor=pool, registry=registry)
        inner = pool._pool
        assert inner is not None
        second = evaluate_tasks(tasks, factories, executor=pool, registry=registry)
        assert pool._pool is inner  # same warm pool, not a respawn
        assert_records_identical(first, grid_serial)
        assert_records_identical(second, grid_serial)
    assert not pool.warm  # context exit released the workers


def test_materialised_factory_builds_bit_identical_indexes(grid_tasks, grid_serial):
    """export → materialise round-trips to a factory with identical behaviour."""
    tasks, factories = grid_tasks
    with SharedArrayRegistry() as registry:
        handles = {key: registry.export(factory) for key, factory in factories.items()}
        # Exporting the same factory twice references the same segment.
        assert registry.export(factories[tasks[0].group]) is handles[tasks[0].group]
        from repro.parallel.worker import run_task

        records = [
            run_task(task, materialise_factory(handles[task.group])) for task in tasks
        ]
    assert_records_identical(records, grid_serial)


def test_grid_summary_statistics_are_bit_identical(grid_tasks, grid_serial):
    """Means/standard errors computed from merged records match serial exactly."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(tasks, factories, n_shards=3, executor="serial")
    merged = summarize_percent_sa([record.percent_sa for record in records])
    reference = summarize_percent_sa([record.percent_sa for record in grid_serial])
    assert merged == reference


# -- plan level: shard-plan invariance ----------------------------------------------------------


def _random_partition(rng: random.Random, n_tasks: int) -> ShardPlan:
    """An arbitrary (shuffled, uneven, non-contiguous) partition of the tasks."""
    indices = list(range(n_tasks))
    rng.shuffle(indices)
    n_shards = rng.randint(1, n_tasks)
    boundaries = sorted(rng.sample(range(1, n_tasks), n_shards - 1)) if n_shards > 1 else []
    shards = []
    start = 0
    for end in boundaries + [n_tasks]:
        shards.append(tuple(indices[start:end]))
        start = end
    return ShardPlan(n_tasks=n_tasks, shards=tuple(shards))


@pytest.mark.parametrize("seed", PLAN_SEEDS)
def test_any_partition_merges_to_the_serial_records(grid_tasks, grid_serial, seed):
    """Property: *any* partition of the same tasks merges to the same stats."""
    tasks, factories = grid_tasks
    plan = _random_partition(random.Random(52_000 + seed), len(tasks))
    records = evaluate_tasks(
        tasks, factories, executor=SerialShardExecutor(), plan=plan
    )
    assert_records_identical(records, grid_serial)
    merged = summarize_percent_sa([record.percent_sa for record in records])
    reference = summarize_percent_sa([record.percent_sa for record in grid_serial])
    assert merged == reference


def test_random_partition_through_real_processes(grid_tasks, grid_serial):
    """One shuffled partition end-to-end through the process pool."""
    tasks, factories = grid_tasks
    plan = _random_partition(random.Random(99), len(tasks))
    records = evaluate_tasks(
        tasks, factories, executor=ProcessShardExecutor(n_workers=3), plan=plan
    )
    assert_records_identical(records, grid_serial)


def test_executor_worker_count_drives_default_shard_count(grid_tasks, grid_serial):
    """An executor instance without n_shards fans out one shard per worker."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(tasks, factories, executor=ProcessShardExecutor(n_workers=3))
    assert_records_identical(records, grid_serial)


def test_evaluate_tasks_without_knobs_stays_in_process(grid_tasks, grid_serial):
    """No knobs → the full payload/merge pipeline, but no process is spawned."""
    tasks, factories = grid_tasks
    spawned = []

    class RecordingSerialExecutor(SerialShardExecutor):
        def run(self, payloads):
            spawned.append(len(payloads))
            return super().run(payloads)

    # The default backend must behave exactly like the in-process executor.
    records = evaluate_tasks(tasks, factories)
    reference = evaluate_tasks(tasks, factories, executor=RecordingSerialExecutor())
    assert_records_identical(records, grid_serial)
    assert records == reference
    assert spawned == [1]  # single in-process shard


def test_process_executor_requires_a_worker_count(grid_tasks):
    """executor='process' without n_workers errors instead of silently using 1."""
    tasks, factories = grid_tasks
    with pytest.raises(ConfigurationError):
        evaluate_tasks(tasks, factories, executor="process")
    with pytest.raises(ConfigurationError):
        evaluate_tasks(tasks, factories, executor="persistent")


@pytest.mark.parametrize("bogus", ["threads", "thread", "PROCESS", "async", ""])
def test_unknown_executor_name_raises_value_error(grid_tasks, bogus):
    """Unknown executor names fail at the single choice point, listing backends."""
    tasks, factories = grid_tasks
    with pytest.raises(ValueError, match="'serial', 'process', 'persistent'"):
        resolve_executor(bogus, 2)
    with pytest.raises(ValueError, match="'serial', 'process', 'persistent'"):
        evaluate_tasks(tasks, factories, n_shards=2, executor=bogus)


def test_runner_rejects_unknown_executor_before_running():
    """--executor goes through the same choice point, before any experiment."""
    from repro.experiments import runner

    with pytest.raises(ValueError, match="'serial', 'process', 'persistent'"):
        runner.main(["--executor", "threads", "--list"])


def test_unknown_shipment_raises_value_error(grid_tasks):
    tasks, factories = grid_tasks
    with pytest.raises(ValueError, match="shipment"):
        evaluate_tasks(tasks, factories, n_shards=2, executor="serial", shipment="carrier-pigeon")


def test_run_shard_preserves_shard_order(grid_tasks):
    """Worker-side records come back in shard task order."""
    tasks, factories = grid_tasks
    payload = build_payloads(plan_shards(len(tasks), 1), tasks, factories)[0]
    records = run_shard(payload)
    assert [record.group for record in records] == [task.group for task in tasks]


def test_payload_requires_every_factory(grid_tasks):
    tasks, factories = grid_tasks
    with pytest.raises(ConfigurationError):
        ShardPayload(
            shard_index=0,
            task_indices=(0,),
            tasks=(tasks[0],),
            factories={},
        )


# -- environment level --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_environment() -> ScalabilityEnvironment:
    """A seconds-scale substrate: 5 groups over a 260-item catalogue."""
    return ScalabilityEnvironment(
        ScalabilityConfig(
            n_users=60,
            n_items=260,
            n_ratings=3_000,
            n_participants=16,
            n_groups=5,
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def tiny_groups(tiny_environment):
    return tiny_environment.random_groups()


@pytest.mark.parametrize("n_workers", SHARD_COUNTS)
def test_environment_average_percent_sa_is_shard_count_invariant(
    tiny_environment, tiny_groups, n_workers
):
    """The headline %SA statistic is exact for every required shard count."""
    serial = tiny_environment.average_percent_sa(tiny_groups)
    sharded = tiny_environment.average_percent_sa(tiny_groups, n_workers=n_workers)
    assert sharded == serial  # mean, std error and n_runs, all exact


def test_environment_sweep_points_match_serial(tiny_environment, tiny_groups):
    """Period, item-restriction and consensus sweeps through real workers."""
    period = tiny_environment.timeline[2]
    for knobs in (
        dict(period=period),
        dict(n_items=120),
        dict(consensus="PD V2", k=4),
        dict(period=period, n_items=60, consensus="MO"),
    ):
        serial = tiny_environment.run_records(tiny_groups, **knobs)
        sharded = tiny_environment.run_records(tiny_groups, n_workers=2, **knobs)
        assert_records_identical(sharded, serial)


def test_environment_serial_executor_backend_matches_serial(
    tiny_environment, tiny_groups
):
    """The in-process backend exercises sharding/merging without processes."""
    serial = tiny_environment.run_records(tiny_groups)
    sharded = tiny_environment.run_records(tiny_groups, n_workers=3, executor="serial")
    assert_records_identical(sharded, serial)


@pytest.mark.parametrize("n_workers", SHARD_COUNTS)
def test_environment_persistent_executor_is_shard_count_invariant(
    tiny_environment, tiny_groups, n_workers
):
    """The persistent backend (warm pool + env-owned shm registry) is exact."""
    serial = tiny_environment.average_percent_sa(tiny_groups)
    sharded = tiny_environment.average_percent_sa(
        tiny_groups, n_workers=n_workers, executor="persistent"
    )
    assert sharded == serial
    # The environment memoised a warm pool for this worker count...
    assert tiny_environment._persistent_pools[n_workers].warm
    # ...and its shm registry owns the shipped segments.
    registry = tiny_environment._registries.get("shm")
    assert registry is not None and not registry.closed


def test_environment_persistent_pool_is_reused_across_calls(
    tiny_environment, tiny_groups
):
    """Same worker count → same pool object and same warm ProcessPoolExecutor."""
    first = tiny_environment.run_records(tiny_groups, n_workers=2, executor="persistent")
    pool = tiny_environment._persistent_pools[2]
    inner = pool._pool
    second = tiny_environment.run_records(tiny_groups, n_workers=2, executor="persistent")
    assert tiny_environment._persistent_pools[2] is pool and pool._pool is inner
    assert_records_identical(second, first)


def test_environment_close_releases_and_recreates_lazily(tiny_environment, tiny_groups):
    """close() shuts pools down and unlinks segments; later calls just work."""
    serial = tiny_environment.run_records(tiny_groups)
    tiny_environment.run_records(tiny_groups, n_workers=2, executor="persistent")
    registry = tiny_environment._registries["shm"]
    names = registry.segment_names
    assert names  # shm shipment actually happened
    tiny_environment.close()
    assert registry.closed and not tiny_environment._persistent_pools
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    # The environment recovers transparently: the next dispatch recreates
    # its pool and registry and still matches serial bit-for-bit.
    again = tiny_environment.run_records(tiny_groups, n_workers=2, executor="persistent")
    assert_records_identical(again, serial)
    tiny_environment.close()


def test_environment_persistent_requires_worker_count(tiny_environment, tiny_groups):
    with pytest.raises(ConfigurationError):
        tiny_environment.run_records(tiny_groups, executor="persistent")


def test_quick_smoke_sharded_statistics_match_serial():
    """run_quick_smoke reports identical statistics under the sharded path."""
    config = ScalabilityConfig(
        n_users=60, n_items=260, n_ratings=3_000, n_participants=16, n_groups=5, seed=11
    )
    serial = run_quick_smoke(config=config)
    sharded = run_quick_smoke(config=config, n_workers=2)
    assert sharded.stats == serial.stats
    assert sharded.n_workers == 2
    persistent = run_quick_smoke(config=config, n_workers=2, executor="persistent")
    assert persistent.stats == serial.stats


def test_figure_drivers_sharded_match_serial(tiny_environment, tiny_groups):
    """Figure 6 and Figure 8 produce identical result objects with workers.

    Groups are pinned explicitly because the drivers draw fresh random
    groups per call; the comparison is about the execution path, not the
    draw.
    """
    serial6 = figure6.run(environment=tiny_environment, groups=tiny_groups)
    sharded6 = figure6.run(environment=tiny_environment, groups=tiny_groups, n_workers=2)
    assert sharded6 == serial6

    serial8 = figure8.run(environment=tiny_environment, groups=tiny_groups)
    sharded8 = figure8.run(environment=tiny_environment, groups=tiny_groups, n_workers=2)
    assert sharded8 == serial8


# -- columnar affinity shipment + batched dispatch ----------------------------------------------


def _columnar_grid_tasks(tasks):
    """The grid tasks with their affinity dictionaries swapped for columns.

    Every grid case uses contiguous period indices, so the conversion always
    succeeds; the dict fields are emptied and the full column set rides as
    ``affinity_ref`` with an explicit full prefix.
    """
    from dataclasses import replace

    from repro.core.affinity import AffinityColumns

    converted = []
    for task in tasks:
        columns = AffinityColumns.from_components(task.static, task.periodic, task.averages)
        converted.append(
            replace(
                task,
                static={},
                periodic={},
                averages={},
                affinity_ref=columns,
                n_periods=columns.n_periods,
            )
        )
    return converted


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_columnar_affinity_inprocess_shm_matches_serial(
    grid_tasks, grid_serial, n_shards
):
    """Columnar affinity tasks, forced shm shipment, attached in-process.

    Exercises export_affinity → descriptor → reattach →
    ``GrecaIndexFactory.build_columns`` without any process in between, so a
    divergence here is an affinity-shipment bug, not a scheduling one.
    """
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        _columnar_grid_tasks(tasks),
        factories,
        n_shards=n_shards,
        executor=SerialShardExecutor(),
        shipment="shm",
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_columnar_affinity_process_shm_matches_serial(
    grid_tasks, grid_serial, n_shards
):
    """Columnar affinity tasks through real process workers, {1, 2, 3, 7}."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        _columnar_grid_tasks(tasks), factories, n_shards=n_shards, executor="process"
    )
    assert_records_identical(records, grid_serial)


def test_grid_columnar_affinity_pickle_shipment_matches_serial(grid_tasks, grid_serial):
    """Columnar tasks still work when the columns themselves pickle by value."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        _columnar_grid_tasks(tasks),
        factories,
        n_shards=3,
        executor="process",
        shipment="pickle",
    )
    assert_records_identical(records, grid_serial)


def test_columnar_task_rejects_mixed_affinity_inputs(grid_tasks):
    """A task may carry dictionaries or a columnar reference, never both."""
    from dataclasses import replace

    from repro.core.affinity import AffinityColumns

    tasks, _ = grid_tasks
    task = tasks[0]
    columns = AffinityColumns.from_components(task.static, task.periodic, task.averages)
    with pytest.raises(ConfigurationError):
        replace(task, affinity_ref=columns, n_periods=columns.n_periods)


def test_environment_columnar_task_facade_matches_dict_task(tiny_environment, tiny_groups):
    """task_for's columnar and dict shapes produce bit-identical records."""
    from repro.parallel.worker import run_task

    group = tiny_groups[0]
    factory = tiny_environment.index_factory(group)
    period = tiny_environment.timeline[2]
    for knobs in (
        dict(),
        dict(period=period),
        dict(period=period, n_items=120, k=4),
        dict(affinity="continuous", period=period),
        dict(affinity="time-agnostic"),
        dict(affinity="none", consensus="MO"),
    ):
        columnar = tiny_environment.task_for(group, **knobs)
        as_dicts = tiny_environment.task_for(group, columnar=False, **knobs)
        assert columnar.affinity_ref is not None and as_dicts.affinity_ref is None
        assert run_task(columnar, factory) == run_task(as_dicts, factory)


@pytest.mark.parametrize("n_workers", SHARD_COUNTS)
def test_environment_batched_sweep_matches_serial(tiny_environment, tiny_groups, n_workers):
    """One batched dispatch over a mixed sweep is exact at {1, 2, 3, 7} shards."""
    from repro.experiments.scalability import SweepPoint

    points = [
        SweepPoint(groups=tiny_groups, period=period)
        for period in tiny_environment.timeline
    ] + [
        SweepPoint(groups=tiny_groups, k=4),
        SweepPoint(groups=tiny_groups, consensus="MO"),
        SweepPoint(groups=tiny_groups, n_items=120),
    ]
    serial = tiny_environment.run_sweep(points)
    batched = tiny_environment.run_sweep(points, n_workers=n_workers)
    assert batched == serial


def test_batched_sweep_dispatches_once_group_major(tiny_environment, tiny_groups):
    """run_sweep issues exactly one dispatch, with group-major payloads.

    One payload per (shard, factory): a factory may only appear in a second
    payload when a contiguous shard boundary happens to split its task run —
    never once per sweep point, which is what the pre-batching drivers paid.
    """
    from collections import Counter

    from repro.experiments.scalability import SweepPoint

    dispatches = []

    class RecordingSerialExecutor(SerialShardExecutor):
        n_workers = 3

        def run(self, payloads):
            dispatches.append(payloads)
            return super().run(payloads)

    points = [
        SweepPoint(groups=tiny_groups, period=period)
        for period in tiny_environment.timeline
    ]
    serial = tiny_environment.run_sweep(points)
    batched = tiny_environment.run_sweep(points, executor=RecordingSerialExecutor())
    assert batched == serial
    assert len(dispatches) == 1  # the whole figure sweep crossed the pool once
    (payloads,) = dispatches
    shipments = Counter()
    for payload in payloads:
        for group in payload.factories:
            shipments[group] += 1
    # Each factory ships to at most two shards (a boundary split), and the
    # total is far below the one-per-(point, shard) of per-point dispatching.
    assert all(count <= 2 for count in shipments.values())
    assert sum(shipments.values()) <= len(tiny_groups) + len(payloads) - 1


@pytest.mark.parametrize("n_workers", SHARD_COUNTS)
def test_figure6_batched_process_dispatch_is_shard_count_invariant(
    tiny_environment, tiny_groups, n_workers
):
    """Figure 6's single-dispatch parallel path stays exact at every shard count."""
    serial = figure6.run(environment=tiny_environment, groups=tiny_groups)
    sharded = figure6.run(
        environment=tiny_environment, groups=tiny_groups, n_workers=n_workers
    )
    assert sharded == serial


# -- storage backends: mmap spool files behind the same descriptor seam -------------------------


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_mmap_process_matches_serial(grid_tasks, grid_serial, n_shards):
    """Golden grid, real process workers over file-backed columns, {1, 2, 3, 7}.

    The mmap backend must be observationally invisible exactly like shm: the
    workers attach spool files instead of ``/dev/shm`` segments, but every
    record — %SA, SA/RA counts, top-k, stopping reasons — is bit-identical.
    """
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        tasks, factories, n_shards=n_shards, executor="process", storage="mmap"
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_mmap_inprocess_attach_matches_serial(grid_tasks, grid_serial, n_shards):
    """Forced descriptor shipment attached in-process, file-backed columns.

    Exercises export → spool file → reattach → ``GrecaIndexFactory
    .from_columns`` without any process in between, so a divergence here is a
    storage-backend bug, not a scheduling one.
    """
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=n_shards,
        executor=SerialShardExecutor(),
        shipment="shm",
        storage="mmap",
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_grid_columnar_mmap_process_matches_serial(grid_tasks, grid_serial, n_shards):
    """Columnar affinity tasks through process workers over spool files."""
    tasks, factories = grid_tasks
    records = evaluate_tasks(
        _columnar_grid_tasks(tasks),
        factories,
        n_shards=n_shards,
        executor="process",
        storage="mmap",
    )
    assert_records_identical(records, grid_serial)


def test_grid_mmap_registry_descriptors_are_spool_files(grid_tasks, grid_serial):
    """A caller-owned mmap registry exports absolute spool paths, all deleted on close."""
    tasks, factories = grid_tasks
    with SharedArrayRegistry(storage="mmap") as registry:
        records = evaluate_tasks(
            tasks,
            factories,
            n_shards=3,
            executor=SerialShardExecutor(),
            shipment="shm",
            registry=registry,
        )
        assert_records_identical(records, grid_serial)
        names = registry.segment_names
        assert names and all(os.path.isabs(name) for name in names)
        assert all(os.path.exists(name) for name in names)
        assert all(name.startswith(registry.spool_path) for name in names)
    assert registry.closed
    assert all(not os.path.exists(name) for name in names)
    assert not os.path.exists(registry.spool_path)


def test_grid_mmap_supervised_fault_recovery_matches_serial(grid_tasks, grid_serial):
    """The chaos path over file-backed columns: recovery is still bit-identical.

    One clean worker exception plus one hard crash; the supervisor retries,
    rebuilds the pool, re-ships the spool-file descriptors, and the merged
    records equal the serial reference exactly.
    """
    from repro.parallel import FaultPlan, FaultSpec, SupervisionPolicy

    tasks, factories = grid_tasks
    plan = FaultPlan(
        (
            FaultSpec(shard=0, position=1, mode="raise", fires=1),
            FaultSpec(shard=1, position=0, mode="crash", fires=1),
        )
    )
    records = evaluate_tasks(
        tasks,
        factories,
        n_shards=3,
        executor="supervised",
        storage="mmap",
        supervision=SupervisionPolicy(max_retries=2, backoff_base=0.001),
        fault_plan=plan,
    )
    assert_records_identical(records, grid_serial)


@pytest.mark.parametrize("bogus", ["disk", "file", "MMAP", "tape", ""])
def test_unknown_storage_raises_value_error(grid_tasks, bogus):
    """Unknown storage names fail at the single choice point, listing backends."""
    from repro.parallel import validate_storage_name

    tasks, factories = grid_tasks
    with pytest.raises(ValueError, match="'shm', 'mmap'"):
        validate_storage_name(bogus)
    with pytest.raises(ValueError, match="'shm', 'mmap'"):
        evaluate_tasks(
            tasks, factories, n_shards=2, executor=SerialShardExecutor(), storage=bogus
        )
    with pytest.raises(ValueError, match="'shm', 'mmap'"):
        ExecutionPolicy(storage=bogus)


def test_storage_conflicts_with_caller_owned_registry(grid_tasks):
    """storage= must agree with a caller-owned registry's backend."""
    tasks, factories = grid_tasks
    with SharedArrayRegistry() as registry:
        with pytest.raises(ConfigurationError, match="storage"):
            evaluate_tasks(
                tasks,
                factories,
                n_shards=2,
                executor=SerialShardExecutor(),
                shipment="shm",
                registry=registry,
                storage="mmap",
            )


def test_runner_rejects_unknown_storage_before_running():
    """--storage goes through the same choice point, before any experiment."""
    from repro.experiments import runner

    with pytest.raises(ValueError, match="'shm', 'mmap'"):
        runner.main(["--storage", "tape", "--list"])


@pytest.mark.parametrize("n_workers", SHARD_COUNTS)
def test_environment_mmap_storage_is_shard_count_invariant(
    tiny_environment, tiny_groups, n_workers
):
    """run_records over the mmap backend is exact for every required shard count."""
    serial = tiny_environment.run_records(tiny_groups)
    sharded = tiny_environment.run_records(
        tiny_groups, n_workers=n_workers, executor="persistent", storage="mmap"
    )
    assert_records_identical(sharded, serial)
    # The environment keeps one registry per storage backend; the mmap one
    # holds absolute spool paths, never shm names.
    registry = tiny_environment._registries.get("mmap")
    assert registry is not None and not registry.closed
    assert registry.storage == "mmap"
    assert all(os.path.isabs(name) for name in registry.segment_names)


def test_environment_average_percent_sa_mmap_matches_serial(
    tiny_environment, tiny_groups
):
    """The headline statistic is exact over file-backed columns too."""
    serial = tiny_environment.average_percent_sa(tiny_groups)
    sharded = tiny_environment.average_percent_sa(
        tiny_groups, n_workers=2, storage="mmap"
    )
    assert sharded == serial


# -- ExecutionPolicy: one bundle for the knob sprawl --------------------------------------------


@pytest.mark.parametrize(
    "knobs",
    [
        dict(n_workers=2),
        dict(n_workers=3, executor="serial"),
        dict(n_workers=2, executor="persistent"),
        dict(n_workers=2, executor="persistent", storage="mmap"),
        dict(n_workers=2, executor="process", shipment="pickle"),
        dict(n_workers=2, executor="supervised"),
    ],
)
def test_policy_spelling_round_trips_legacy_knobs(tiny_environment, tiny_groups, knobs):
    """policy=ExecutionPolicy(**knobs) reproduces the loose-keyword records exactly."""
    serial = tiny_environment.run_records(tiny_groups)
    legacy = tiny_environment.run_records(tiny_groups, **knobs)
    bundled = tiny_environment.run_records(tiny_groups, policy=ExecutionPolicy(**knobs))
    assert_records_identical(bundled, legacy)
    assert_records_identical(bundled, serial)


def test_policy_default_is_the_serial_reference(tiny_environment, tiny_groups):
    """An all-defaults policy selects the serial path, same as no knobs at all."""
    assert ExecutionPolicy().is_serial
    assert ExecutionPolicy().storage_name == "shm"
    assert not ExecutionPolicy(n_workers=2).is_serial
    serial = tiny_environment.run_records(tiny_groups)
    bundled = tiny_environment.run_records(tiny_groups, policy=ExecutionPolicy())
    assert_records_identical(bundled, serial)


def test_policy_and_legacy_spellings_cannot_mix(tiny_environment, tiny_groups):
    """Mixing policy= with any loose keyword raises at every entry point."""
    from repro.experiments.scalability import SweepPoint

    policy = ExecutionPolicy(n_workers=2)
    with pytest.raises(ConfigurationError, match="not both"):
        resolve_policy(policy, n_workers=2)
    with pytest.raises(ConfigurationError, match="not both"):
        resolve_policy(policy, storage="mmap")
    with pytest.raises(ConfigurationError, match="not both"):
        tiny_environment.run_records(tiny_groups, n_workers=2, policy=policy)
    with pytest.raises(ConfigurationError, match="not both"):
        tiny_environment.average_percent_sa(
            tiny_groups, executor="persistent", policy=policy
        )
    with pytest.raises(ConfigurationError, match="not both"):
        tiny_environment.run_sweep(
            [SweepPoint(groups=tiny_groups)], storage="mmap", policy=policy
        )


def test_execution_policy_validates_on_construction():
    """The bundle fails exactly where the loose knobs failed, at build time."""
    with pytest.raises(ConfigurationError):
        ExecutionPolicy(n_workers=0)
    with pytest.raises(ValueError, match="'serial', 'process', 'persistent'"):
        ExecutionPolicy(n_workers=2, executor="threads")
    with pytest.raises(ValueError, match="shipment"):
        ExecutionPolicy(shipment="carrier-pigeon")
    with pytest.raises(ValueError, match="'shm', 'mmap'"):
        ExecutionPolicy(storage="tape")
    with pytest.raises(ConfigurationError):
        resolve_policy("persistent")  # a bare string is not a policy


def test_figure_drivers_accept_a_bundled_policy(tiny_environment, tiny_groups):
    """Figure 6 under policy=(2 workers, mmap) equals its serial rendering."""
    serial = figure6.run(environment=tiny_environment, groups=tiny_groups)
    bundled = figure6.run(
        environment=tiny_environment,
        groups=tiny_groups,
        policy=ExecutionPolicy(n_workers=2, storage="mmap"),
    )
    assert bundled == serial
    with pytest.raises(ConfigurationError, match="not both"):
        figure6.run(
            environment=tiny_environment,
            groups=tiny_groups,
            n_workers=2,
            policy=ExecutionPolicy(n_workers=2),
        )
