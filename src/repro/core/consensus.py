"""Group consensus functions (Section 2.3 of the paper).

A consensus function ``F(G, i, p)`` aggregates the (affinity-aware, time-
aware) member preferences for an item into a single group score.  It combines
two aspects:

* **Group preference** ``gpref(G, i, p)`` — how much the members like the
  item overall.  Two aggregation strategies are supported: *Average
  Preference* and *Least-Misery Preference* (minimum).
* **Group disagreement** ``dis(G, i, p)`` — how much the members disagree.
  Two variants: *average pairwise disagreement* (mean absolute difference of
  member preferences) and *disagreement variance*.

They are combined as ``F = w1 * gpref + w2 * (1 - dis)`` with
``w1 + w2 = 1`` (Section 2.3).  The evaluation uses three named functions:

* **AP** — Average Preference only (``w1 = 1``).
* **MO** — Least-Misery Only (``w1 = 1`` with the minimum aggregation).
* **PD** — Pairwise Disagreement: average preference combined with pairwise
  disagreement.  The scalability study additionally uses *PD V1*
  (``w1 = 0.8``) and *PD V2* (``w1 = 0.2``) — Figure 8.

Scores are computed on preferences normalised by a ``scale`` factor (the
maximum possible member preference) so that both ``gpref`` and ``dis`` live
in [0, 1] and the weighted combination is meaningful.  The same functions are
provided on intervals for GRECA's bound computations; all of them are
monotone in the member preferences (Lemma 1), which the test-suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.bounds import (
    Interval,
    interval_abs_difference,
    interval_mean,
    interval_min,
    interval_variance,
)
from repro.exceptions import ConsensusError

#: Aggregation strategy names for the group-preference part.
AGGREGATION_AVERAGE = "average"
AGGREGATION_LEAST_MISERY = "least-misery"

#: Disagreement computation names.
DISAGREEMENT_NONE = "none"
DISAGREEMENT_PAIRWISE = "pairwise"
DISAGREEMENT_VARIANCE = "variance"


def average_preference(prefs: Sequence[float]) -> float:
    """``gpref`` as the mean of member preferences."""
    if not prefs:
        raise ConsensusError("cannot aggregate an empty preference list")
    return sum(prefs) / len(prefs)


def least_misery_preference(prefs: Sequence[float]) -> float:
    """``gpref`` as the minimum member preference."""
    if not prefs:
        raise ConsensusError("cannot aggregate an empty preference list")
    return min(prefs)


def pairwise_disagreement(prefs: Sequence[float]) -> float:
    """Average pairwise absolute difference of member preferences.

    ``dis(G, i, p) = 2 / (|G| (|G| - 1)) * sum_{u != v} |pref(u) - pref(v)|``
    (0 for singleton groups).
    """
    n = len(prefs)
    if n == 0:
        raise ConsensusError("cannot compute disagreement of an empty group")
    if n == 1:
        return 0.0
    total = 0.0
    for index, left in enumerate(prefs):
        for right in prefs[index + 1 :]:
            total += abs(left - right)
    return 2.0 * total / (n * (n - 1))


def variance_disagreement(prefs: Sequence[float]) -> float:
    """Population variance of member preferences (the paper's second variant)."""
    n = len(prefs)
    if n == 0:
        raise ConsensusError("cannot compute disagreement of an empty group")
    mean = sum(prefs) / n
    return sum((value - mean) ** 2 for value in prefs) / n


@dataclass(frozen=True)
class ConsensusFunction:
    """A named, weighted combination of group preference and disagreement.

    Parameters
    ----------
    name:
        Display name (``"AP"``, ``"MO"``, ``"PD"``...).
    aggregation:
        ``"average"`` or ``"least-misery"``.
    disagreement:
        ``"none"``, ``"pairwise"`` or ``"variance"``.
    w1, w2:
        Relative weights of preference and (1 - disagreement); must sum to 1.
    """

    name: str
    aggregation: str = AGGREGATION_AVERAGE
    disagreement: str = DISAGREEMENT_NONE
    w1: float = 1.0
    w2: float = 0.0

    def __post_init__(self) -> None:
        if self.aggregation not in (AGGREGATION_AVERAGE, AGGREGATION_LEAST_MISERY):
            raise ConsensusError(f"unknown aggregation strategy {self.aggregation!r}")
        if self.disagreement not in (
            DISAGREEMENT_NONE,
            DISAGREEMENT_PAIRWISE,
            DISAGREEMENT_VARIANCE,
        ):
            raise ConsensusError(f"unknown disagreement strategy {self.disagreement!r}")
        if not (0.0 <= self.w1 <= 1.0 and 0.0 <= self.w2 <= 1.0):
            raise ConsensusError("weights must lie in [0, 1]")
        if abs(self.w1 + self.w2 - 1.0) > 1e-9:
            raise ConsensusError(f"weights must sum to 1, got w1={self.w1}, w2={self.w2}")
        if self.disagreement == DISAGREEMENT_NONE and self.w2 not in (0.0,):
            raise ConsensusError("w2 must be 0 when no disagreement component is used")

    # -- exact scoring ---------------------------------------------------------------

    def group_preference(self, prefs: Sequence[float]) -> float:
        """The ``gpref`` part on already-normalised member preferences."""
        if self.aggregation == AGGREGATION_AVERAGE:
            return average_preference(prefs)
        return least_misery_preference(prefs)

    def group_disagreement(self, prefs: Sequence[float]) -> float:
        """The ``dis`` part on already-normalised member preferences."""
        if self.disagreement == DISAGREEMENT_PAIRWISE:
            return pairwise_disagreement(prefs)
        if self.disagreement == DISAGREEMENT_VARIANCE:
            return variance_disagreement(prefs)
        return 0.0

    def score(self, member_prefs: Mapping[int, float] | Sequence[float], scale: float = 1.0) -> float:
        """The consensus score ``F`` for one item.

        Parameters
        ----------
        member_prefs:
            Either a mapping ``{user: pref}`` or a plain sequence of member
            preferences.
        scale:
            Normalisation constant (the maximum possible member preference);
            preferences are divided by it before aggregation so that
            ``gpref`` and ``dis`` are on the same [0, 1] scale.
        """
        prefs = list(member_prefs.values()) if isinstance(member_prefs, Mapping) else list(member_prefs)
        if not prefs:
            raise ConsensusError("cannot score an item for an empty group")
        if scale <= 0:
            raise ConsensusError("scale must be positive")
        normalised = [value / scale for value in prefs]
        preference_part = self.group_preference(normalised)
        if self.w2 == 0.0:
            return self.w1 * preference_part
        disagreement_part = self.group_disagreement(normalised)
        return self.w1 * preference_part + self.w2 * (1.0 - disagreement_part)

    # -- interval scoring (GRECA bounds) -----------------------------------------------

    def score_bounds(
        self, member_intervals: Sequence[Interval], scale: float = 1.0
    ) -> Interval:
        """Sound bounds on ``F`` when member preferences are only known as intervals."""
        if not member_intervals:
            raise ConsensusError("cannot bound an item score for an empty group")
        if scale <= 0:
            raise ConsensusError("scale must be positive")
        normalised = [interval.scale(1.0 / scale) for interval in member_intervals]

        if self.aggregation == AGGREGATION_AVERAGE:
            preference_part = interval_mean(normalised)
        else:
            preference_part = interval_min(normalised)

        if self.w2 == 0.0:
            return preference_part.scale(self.w1)

        if self.disagreement == DISAGREEMENT_PAIRWISE:
            n = len(normalised)
            if n == 1:
                disagreement_part = Interval.exact(0.0)
            else:
                pair_intervals = []
                for index, left in enumerate(normalised):
                    for right in normalised[index + 1 :]:
                        pair_intervals.append(interval_abs_difference(left, right))
                total_low = sum(interval.low for interval in pair_intervals)
                total_high = sum(interval.high for interval in pair_intervals)
                factor = 2.0 / (n * (n - 1))
                disagreement_part = Interval(total_low * factor, total_high * factor)
        else:
            disagreement_part = interval_variance(normalised)

        low = self.w1 * preference_part.low + self.w2 * (1.0 - disagreement_part.high)
        high = self.w1 * preference_part.high + self.w2 * (1.0 - disagreement_part.low)
        return Interval(low, high)


#: The three consensus functions used throughout the paper's evaluation.
AVERAGE_PREFERENCE = ConsensusFunction(name="AP", aggregation=AGGREGATION_AVERAGE)
LEAST_MISERY = ConsensusFunction(name="MO", aggregation=AGGREGATION_LEAST_MISERY)
PAIRWISE_DISAGREEMENT = ConsensusFunction(
    name="PD", aggregation=AGGREGATION_AVERAGE, disagreement=DISAGREEMENT_PAIRWISE, w1=0.5, w2=0.5
)
#: Figure 8 variants: PD with a high preference weight (V1) / high disagreement weight (V2).
PD_V1 = ConsensusFunction(
    name="PD V1", aggregation=AGGREGATION_AVERAGE, disagreement=DISAGREEMENT_PAIRWISE, w1=0.8, w2=0.2
)
PD_V2 = ConsensusFunction(
    name="PD V2", aggregation=AGGREGATION_AVERAGE, disagreement=DISAGREEMENT_PAIRWISE, w1=0.2, w2=0.8
)

_NAMED_FUNCTIONS = {
    "AP": AVERAGE_PREFERENCE,
    "AR": AVERAGE_PREFERENCE,  # the paper's Figure 8 labels AP as "AR" (average rating)
    "MO": LEAST_MISERY,
    "PD": PAIRWISE_DISAGREEMENT,
    "PD V1": PD_V1,
    "PD_V1": PD_V1,
    "PD V2": PD_V2,
    "PD_V2": PD_V2,
}


def make_consensus(name: str, w1: float | None = None, disagreement: str | None = None) -> ConsensusFunction:
    """Build a consensus function by name, optionally overriding its weights.

    Parameters
    ----------
    name:
        ``"AP"`` (or ``"AR"``), ``"MO"``, ``"PD"``, ``"PD V1"`` or ``"PD V2"``.
    w1:
        Optional preference weight override for PD-style functions
        (``w2 = 1 - w1``).
    disagreement:
        Optional disagreement strategy override (``"pairwise"`` / ``"variance"``).
    """
    key = name.strip().upper()
    if key not in _NAMED_FUNCTIONS:
        raise ConsensusError(
            f"unknown consensus function {name!r}; expected one of {sorted(set(_NAMED_FUNCTIONS))}"
        )
    base = _NAMED_FUNCTIONS[key]
    if w1 is None and disagreement is None:
        return base
    if base.disagreement == DISAGREEMENT_NONE and (w1 is not None or disagreement is not None):
        # Adding a disagreement component turns AP/MO into a PD-style function.
        disagreement = disagreement or DISAGREEMENT_PAIRWISE
        w1 = w1 if w1 is not None else 0.5
        return ConsensusFunction(
            name=f"{base.name}+{disagreement}",
            aggregation=base.aggregation,
            disagreement=disagreement,
            w1=w1,
            w2=1.0 - w1,
        )
    w1 = w1 if w1 is not None else base.w1
    return ConsensusFunction(
        name=base.name,
        aggregation=base.aggregation,
        disagreement=disagreement or base.disagreement,
        w1=w1,
        w2=1.0 - w1,
    )
