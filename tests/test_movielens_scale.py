"""Paper-scale MovieLens-1M substrate: Table 5 headline statistics.

The paper's scalability study runs over MovieLens 1M — 6,040 users, 3,952
movies, 1,000,209 whole-star ratings on a 1-5 scale (Table 5).  The synthetic
generator must reproduce those headline numbers (and the familiar J-shaped
rating distribution that drives GRECA's pruning behaviour) at full scale, not
just on the laptop-friendly slices the fast tests use.

Generating one million ratings takes tens of seconds, so the whole module is
``slow``-marked and skipped unless ``REPRO_RUN_SLOW=1`` (``make test-slow``).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.data.movielens import (
    MOVIELENS_1M_MOVIES,
    MOVIELENS_1M_RATINGS,
    MOVIELENS_1M_USERS,
    generate_movielens_like,
    movielens_1m_config,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def paper_scale_dataset():
    """The full 6,040 × 3,952 × 1,000,209 synthetic substrate (built once)."""
    return generate_movielens_like(movielens_1m_config())


def test_table5_headline_counts(paper_scale_dataset):
    """User/item/rating counts match Table 5.

    User and rating counts are exact by construction (every user is reserved
    at least one rating; exactly ``n_ratings`` distinct pairs are drawn).
    The item count may in principle fall short if some movie is never
    sampled, so it gets a 1% tolerance — in practice the long-tailed
    popularity weights cover the catalogue at one million draws.
    """
    stats = paper_scale_dataset.stats()
    assert stats.n_users == MOVIELENS_1M_USERS
    assert stats.n_ratings == MOVIELENS_1M_RATINGS
    assert stats.n_items <= MOVIELENS_1M_MOVIES
    assert stats.n_items >= int(0.99 * MOVIELENS_1M_MOVIES)


def test_table5_rating_distribution_shape(paper_scale_dataset):
    """Whole-star 1-5 ratings with the MovieLens J-shape around 3.5.

    MovieLens 1M has mean rating ≈ 3.58 with 4 the modal star and the low
    stars rare (1-star ≈ 5.6%, 2-star ≈ 10.7%).  The synthetic latent-factor
    generator is only required to match the *shape*: a mean in the mid-3s,
    mode at 4, monotone-increasing mass from 1 through 4 and a clear
    high-star majority.
    """
    values = [rating.value for rating in paper_scale_dataset]
    assert all(value == int(value) and 1.0 <= value <= 5.0 for value in values)

    stats = paper_scale_dataset.stats()
    assert 3.2 <= stats.mean_rating <= 3.9

    share = {
        star: count / len(values)
        for star, count in Counter(int(value) for value in values).items()
    }
    assert set(share) == {1, 2, 3, 4, 5}
    assert max(share, key=share.get) == 4
    assert share[1] < share[2] < share[3] < share[4]
    assert share[4] + share[5] + share[3] >= 0.75  # the J-shape's body
    assert share[1] <= 0.12  # 1-star stays rare


def test_paper_scale_history_spans_one_year(paper_scale_dataset):
    """Timestamps cover (and stay inside) the configured one-year window."""
    config = movielens_1m_config()
    stats = paper_scale_dataset.stats()
    span = config.history_seconds
    assert stats.min_timestamp >= config.start_timestamp
    assert stats.max_timestamp < config.start_timestamp + span
    # The draws are uniform over the window: demand 99% coverage of the span.
    assert stats.max_timestamp - stats.min_timestamp >= int(0.99 * span)


def test_paper_scale_activity_skew(paper_scale_dataset):
    """Long-tailed user activity: the top decile dominates, nobody is empty.

    MovieLens 1M's most active decile contributes roughly half the ratings;
    the zipf-weighted generator must reproduce a comparable skew (and the
    per-user floor of one rating must hold everywhere).
    """
    counts = sorted(
        (len(paper_scale_dataset.user_vector(user)) for user in paper_scale_dataset.users),
        reverse=True,
    )
    assert counts[-1] >= 1
    top_decile = sum(counts[: len(counts) // 10])
    assert top_decile / sum(counts) >= 0.35
