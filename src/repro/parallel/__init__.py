"""Sharded parallel group-evaluation layer.

The paper's scalability study evaluates many independent groups over one
shared, read-only index substrate — an embarrassingly parallel workload.
This package partitions those evaluations across process workers while
keeping the serial semantics bit-exact:

* :mod:`repro.parallel.sharding` — deterministic shard planning (any
  partition of the task indices is a valid plan);
* :mod:`repro.parallel.worker` — picklable task/record/payload types and the
  worker-side loop (``factory.build`` + ``Greca.run`` per task);
* :mod:`repro.parallel.shm` — zero-copy shared-memory shipment: the factory
  substrate's large arrays live in ``multiprocessing.shared_memory``
  segments owned by a context-managed :class:`SharedArrayRegistry`
  (unlink-on-exit guaranteed), and payloads carry only
  ``(segment, shape, dtype, offset)`` descriptors that workers reattach;
* :mod:`repro.parallel.pool` — the ``serial`` (in-process), ``process``
  (pool-per-call) and ``persistent`` (warm pool reused across dispatches)
  shard executors, plus the single :class:`ValueError` choice point for
  ``executor=`` strings;
* :mod:`repro.parallel.merge` — order-restoring merge of per-shard records;
* :mod:`repro.parallel.evaluation` — the :func:`evaluate_tasks` pipeline
  gluing them together (shm shipment by default whenever payloads cross a
  process boundary);
* :mod:`repro.parallel.resilience` — the ``supervised`` fault-tolerant
  dispatch tier: :class:`SupervisedDispatch` wraps any executor with
  per-shard timeouts, bounded deterministic retries, pool self-healing and
  serial degradation, reports every recovery in a :class:`DispatchReport`,
  and ships a deterministic :class:`FaultPlan` chaos harness for the
  fault-tolerance suite;
* :mod:`repro.parallel.storage` — the storage tier behind the descriptor
  seam: spool-backed memory-mapped file segments (``storage="mmap"``) as
  the out-of-core alternative to ``/dev/shm``, selected per registry and
  spilled to automatically past a configurable shm budget;
* :mod:`repro.parallel.policy` — :class:`ExecutionPolicy`, the one frozen
  bundle of every dispatch knob (``n_workers`` / ``executor`` /
  ``shipment`` / ``supervision`` / ``columnar`` / ``storage`` /
  ``kernel``), resolved against the legacy keyword spellings at a single
  choice point (:func:`resolve_policy`).  The ``kernel`` knob selects the
  GRECA round-kernel tier (:mod:`repro.core.kernels`) each worker runs;
  :func:`repro.core.kernels.validate_kernel_name` is re-exported here
  beside its executor/storage siblings.

Serial execution remains the reference semantics everywhere: the sharded
path must (and, per ``tests/test_parallel_equivalence.py``, does) reproduce
the serial records — access counts, %SA values, top-k items, stopping
reasons — bit-for-bit for every shard count, every partition, every backend
and both shipment modes.
"""

from repro.core.kernels import (
    KERNEL_FUSED,
    KERNEL_NUMBA,
    KERNEL_REFERENCE,
    kernel_names,
    validate_kernel_name,
)
from repro.parallel.evaluation import build_payloads, evaluate_tasks
from repro.parallel.merge import merge_shard_records
from repro.parallel.pool import (
    EXECUTOR_PERSISTENT,
    EXECUTOR_PROCESS,
    EXECUTOR_SERIAL,
    PersistentPool,
    PersistentShardExecutor,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    available_cpus,
    executor_names,
    register_executor,
    resolve_executor,
    validate_executor_name,
)
from repro.parallel.resilience import (
    EXECUTOR_SUPERVISED,
    VALID_FAULT_MODES,
    DispatchReport,
    FaultPlan,
    FaultSpec,
    ShardAttempt,
    SupervisedDispatch,
    SupervisionPolicy,
    fault_plan_from_env,
    summarise_reports,
)
from repro.parallel.policy import ExecutionPolicy, resolve_policy
from repro.parallel.sharding import ShardPlan, plan_shards
from repro.parallel.shm import (
    SHIPMENT_PICKLE,
    SHIPMENT_SHM,
    VALID_SHIPMENTS,
    SharedArrayRegistry,
    SharedArraySpec,
    ShmAffinityHandle,
    ShmFactoryHandle,
    attach_array,
    materialise_affinity,
    materialise_factory,
    resolve_affinity_columns,
    resolve_factory,
)
from repro.parallel.storage import (
    STORAGE_MMAP,
    STORAGE_SHM,
    VALID_STORAGES,
    MappedFileSegment,
    SpoolDirectory,
    validate_storage_name,
)
from repro.parallel.worker import (
    GroupEvalTask,
    GroupRunRecord,
    ShardPayload,
    group_key,
    record_from_result,
    run_shard,
    run_task,
)

__all__ = [
    "DispatchReport",
    "EXECUTOR_PERSISTENT",
    "EXECUTOR_PROCESS",
    "EXECUTOR_SERIAL",
    "EXECUTOR_SUPERVISED",
    "ExecutionPolicy",
    "FaultPlan",
    "FaultSpec",
    "GroupEvalTask",
    "GroupRunRecord",
    "KERNEL_FUSED",
    "KERNEL_NUMBA",
    "KERNEL_REFERENCE",
    "MappedFileSegment",
    "PersistentPool",
    "PersistentShardExecutor",
    "ProcessShardExecutor",
    "SHIPMENT_PICKLE",
    "SHIPMENT_SHM",
    "STORAGE_MMAP",
    "STORAGE_SHM",
    "SerialShardExecutor",
    "ShardAttempt",
    "ShardExecutor",
    "ShardPayload",
    "ShardPlan",
    "SharedArrayRegistry",
    "SharedArraySpec",
    "ShmAffinityHandle",
    "ShmFactoryHandle",
    "SpoolDirectory",
    "SupervisedDispatch",
    "SupervisionPolicy",
    "VALID_EXECUTORS",
    "VALID_FAULT_MODES",
    "VALID_KERNELS",
    "VALID_SHIPMENTS",
    "VALID_STORAGES",
    "attach_array",
    "available_cpus",
    "build_payloads",
    "evaluate_tasks",
    "executor_names",
    "fault_plan_from_env",
    "group_key",
    "kernel_names",
    "materialise_affinity",
    "materialise_factory",
    "merge_shard_records",
    "plan_shards",
    "record_from_result",
    "register_executor",
    "resolve_executor",
    "resolve_factory",
    "resolve_policy",
    "run_shard",
    "run_task",
    "summarise_reports",
    "validate_executor_name",
    "validate_kernel_name",
    "validate_storage_name",
]


def __getattr__(name: str):
    # ``VALID_EXECUTORS``/``VALID_KERNELS`` are registry-derived; resolving
    # them lazily means they always reflect every registered backend,
    # including ones registered after this package was imported.
    if name == "VALID_EXECUTORS":
        return executor_names()
    if name == "VALID_KERNELS":
        return kernel_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
