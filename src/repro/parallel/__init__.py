"""Sharded parallel group-evaluation layer.

The paper's scalability study evaluates many independent groups over one
shared, read-only index substrate — an embarrassingly parallel workload.
This package partitions those evaluations across process workers while
keeping the serial semantics bit-exact:

* :mod:`repro.parallel.sharding` — deterministic shard planning (any
  partition of the task indices is a valid plan);
* :mod:`repro.parallel.worker` — picklable task/record/payload types and the
  worker-side loop (``factory.build`` + ``Greca.run`` per task);
* :mod:`repro.parallel.shm` — zero-copy shared-memory shipment: the factory
  substrate's large arrays live in ``multiprocessing.shared_memory``
  segments owned by a context-managed :class:`SharedArrayRegistry`
  (unlink-on-exit guaranteed), and payloads carry only
  ``(segment, shape, dtype, offset)`` descriptors that workers reattach;
* :mod:`repro.parallel.pool` — the ``serial`` (in-process), ``process``
  (pool-per-call) and ``persistent`` (warm pool reused across dispatches)
  shard executors, plus the single :class:`ValueError` choice point for
  ``executor=`` strings;
* :mod:`repro.parallel.merge` — order-restoring merge of per-shard records;
* :mod:`repro.parallel.evaluation` — the :func:`evaluate_tasks` pipeline
  gluing them together (shm shipment by default whenever payloads cross a
  process boundary).

Serial execution remains the reference semantics everywhere: the sharded
path must (and, per ``tests/test_parallel_equivalence.py``, does) reproduce
the serial records — access counts, %SA values, top-k items, stopping
reasons — bit-for-bit for every shard count, every partition, every backend
and both shipment modes.
"""

from repro.parallel.evaluation import build_payloads, evaluate_tasks
from repro.parallel.merge import merge_shard_records
from repro.parallel.pool import (
    EXECUTOR_PERSISTENT,
    EXECUTOR_PROCESS,
    EXECUTOR_SERIAL,
    VALID_EXECUTORS,
    PersistentPool,
    PersistentShardExecutor,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    available_cpus,
    resolve_executor,
    validate_executor_name,
)
from repro.parallel.sharding import ShardPlan, plan_shards
from repro.parallel.shm import (
    SHIPMENT_PICKLE,
    SHIPMENT_SHM,
    VALID_SHIPMENTS,
    SharedArrayRegistry,
    SharedArraySpec,
    ShmAffinityHandle,
    ShmFactoryHandle,
    attach_array,
    materialise_affinity,
    materialise_factory,
    resolve_affinity_columns,
    resolve_factory,
)
from repro.parallel.worker import (
    GroupEvalTask,
    GroupRunRecord,
    ShardPayload,
    group_key,
    record_from_result,
    run_shard,
    run_task,
)

__all__ = [
    "EXECUTOR_PERSISTENT",
    "EXECUTOR_PROCESS",
    "EXECUTOR_SERIAL",
    "GroupEvalTask",
    "GroupRunRecord",
    "PersistentPool",
    "PersistentShardExecutor",
    "ProcessShardExecutor",
    "SHIPMENT_PICKLE",
    "SHIPMENT_SHM",
    "SerialShardExecutor",
    "ShardExecutor",
    "ShardPayload",
    "ShardPlan",
    "SharedArrayRegistry",
    "SharedArraySpec",
    "ShmAffinityHandle",
    "ShmFactoryHandle",
    "VALID_EXECUTORS",
    "VALID_SHIPMENTS",
    "attach_array",
    "available_cpus",
    "build_payloads",
    "evaluate_tasks",
    "group_key",
    "materialise_affinity",
    "materialise_factory",
    "merge_shard_records",
    "plan_shards",
    "record_from_result",
    "resolve_executor",
    "resolve_factory",
    "run_shard",
    "run_task",
    "validate_executor_name",
]
