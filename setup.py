"""Packaging entry point for the GRECA reproduction.

The project is deliberately light on packaging machinery (it is a paper
reproduction developed from a source checkout with ``PYTHONPATH=src``), so
all metadata lives here rather than in a pyproject.toml.  The one
interesting knob is the ``kernels`` extra: the fused numpy round kernel
works everywhere, while ``pip install -e '.[kernels]'`` additionally pulls
in numba for the opt-in njit tier (``ExecutionPolicy(kernel="numba")``).
Everything degrades cleanly when the extra is absent — the numba tier
raises a gated RuntimeError at construction and its tests skip.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.10.0",
    description=(
        "Reproduction of GRECA group recommendation (Amer-Yahia et al., "
        "EDBT 2015): threshold-style group evaluation with parallel, "
        "out-of-core and serving layers"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # Optional njit round-kernel tier.  The pin mirrors the numpy
        # versions the suite runs on; without this extra installed,
        # kernel="numba" raises a clear RuntimeError and the numba-tier
        # tests skip (see tests/test_kernels.py and `make test-kernels`).
        "kernels": ["numba>=0.59"],
        "test": ["pytest", "hypothesis"],
    },
)
