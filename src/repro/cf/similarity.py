"""User/item similarity measures for collaborative filtering.

The paper computes individual user preferences with collaborative filtering
"where user similarity is computed with cosine similarity over vec(u), i.e.,
the ratings of u for each movie" (Section 4).  Cosine similarity is therefore
the default; Pearson correlation and Jaccard overlap are provided as
alternatives commonly used in the recommender-systems literature.
"""

from __future__ import annotations

import numpy as np

from repro.cf.matrix import RatingMatrix
from repro.exceptions import ConfigurationError


class CosineState:
    """Row norms and normalised rows — the incrementally maintainable half of
    the cosine computation.

    The gemm (``normalised @ normalised.T``) is *not* incrementally
    maintainable bit-for-bit: BLAS accumulates a full row product in a
    different order than a row-subset product, so updating only affected
    rows/columns of the similarity matrix would drift from a fresh
    computation in the last ulp.  Per-row norms and the row-wise division
    *are* bit-stable under subsetting (``np.linalg.norm(v[rows], axis=1)``
    equals the corresponding rows of ``np.linalg.norm(v, axis=1)``, and
    likewise for the division), so a delta refresh recomputes those only for
    touched rows and then redoes the full gemm — which is the cheap part to
    keep identical and the expensive part to verify.
    """

    def __init__(self, vectors: np.ndarray) -> None:
        self.vectors = vectors
        self.norms = np.linalg.norm(vectors, axis=1)
        safe_norms = np.where(self.norms == 0, 1.0, self.norms)
        self.normalised = vectors / safe_norms[:, None]

    def refresh_rows(self, rows) -> None:
        """Recompute norms and normalised vectors for ``rows`` only.

        Bit-identical to rebuilding the state from scratch as long as
        ``self.vectors`` already holds the new values for those rows (and
        unchanged values everywhere else).
        """
        rows = np.asarray(sorted(set(int(row) for row in rows)), dtype=np.intp)
        if rows.size == 0:
            return
        changed = self.vectors[rows]
        norms = np.linalg.norm(changed, axis=1)
        safe_norms = np.where(norms == 0, 1.0, norms)
        self.norms[rows] = norms
        self.normalised[rows] = changed / safe_norms[:, None]

    def similarity(self) -> np.ndarray:
        """The full cosine similarity matrix from the current state."""
        similarity = self.normalised @ self.normalised.T
        zero_rows = self.norms == 0
        similarity[zero_rows, :] = 0.0
        similarity[:, zero_rows] = 0.0
        np.clip(similarity, -1.0, 1.0, out=similarity)
        return similarity


def cosine_similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity between the rows of ``vectors``.

    Rows with zero norm (users with no ratings) get similarity 0 with every
    other row, including themselves.
    """
    return CosineState(vectors).similarity()


def pearson_similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlation computed on co-rated cells only.

    For rating vectors, Pearson is cosine similarity of the mean-centred
    vectors restricted to the items both users rated.  Pairs with fewer than
    two co-rated items get similarity 0.
    """
    n = vectors.shape[0]
    mask = vectors > 0
    similarity = np.zeros((n, n))
    for left in range(n):
        for right in range(left, n):
            common = mask[left] & mask[right]
            if common.sum() < 2:
                value = 0.0
            else:
                a = vectors[left, common]
                b = vectors[right, common]
                a = a - a.mean()
                b = b - b.mean()
                denom = np.linalg.norm(a) * np.linalg.norm(b)
                value = float(a @ b / denom) if denom > 0 else 0.0
            similarity[left, right] = value
            similarity[right, left] = value
    np.clip(similarity, -1.0, 1.0, out=similarity)
    return similarity


def jaccard_similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise Jaccard overlap of the *sets* of rated items."""
    mask = (vectors > 0).astype(float)
    intersection = mask @ mask.T
    counts = mask.sum(axis=1)
    union = counts[:, None] + counts[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        similarity = np.where(union > 0, intersection / union, 0.0)
    return similarity


SIMILARITY_FUNCTIONS = {
    "cosine": cosine_similarity_matrix,
    "pearson": pearson_similarity_matrix,
    "jaccard": jaccard_similarity_matrix,
}


def similarity_matrix(matrix: RatingMatrix, metric: str = "cosine", axis: str = "user") -> np.ndarray:
    """Similarity matrix between users (``axis='user'``) or items (``axis='item'``)."""
    if metric not in SIMILARITY_FUNCTIONS:
        raise ConfigurationError(
            f"unknown similarity metric {metric!r}; expected one of {sorted(SIMILARITY_FUNCTIONS)}"
        )
    if axis not in ("user", "item"):
        raise ConfigurationError("axis must be 'user' or 'item'")
    vectors = matrix.values if axis == "user" else matrix.values.T
    return SIMILARITY_FUNCTIONS[metric](vectors)


def pairwise_user_similarity(
    matrix: RatingMatrix, left: int, right: int, metric: str = "cosine"
) -> float:
    """Similarity between two users by id (convenience for group formation)."""
    if metric not in SIMILARITY_FUNCTIONS:
        raise ConfigurationError(
            f"unknown similarity metric {metric!r}; expected one of {sorted(SIMILARITY_FUNCTIONS)}"
        )
    vectors = np.vstack([matrix.user_row(left), matrix.user_row(right)])
    return float(SIMILARITY_FUNCTIONS[metric](vectors)[0, 1])
