"""Dense rating-matrix view of a :class:`~repro.data.ratings.RatingsDataset`.

Collaborative filtering needs fast vector access to user and item rating
profiles.  :class:`RatingMatrix` materialises the dataset as a dense numpy
matrix (users x items) with 0 marking "unrated", plus the index mappings
between external ids and matrix rows/columns.

For the dataset sizes used in this reproduction (hundreds to a few thousand
users/items) the dense representation is both the simplest and the fastest
option in pure Python + numpy.
"""

from __future__ import annotations

import numpy as np

from repro.data.ratings import RatingsDataset
from repro.exceptions import UnknownItemError, UnknownUserError


class RatingMatrix:
    """Dense users-by-items rating matrix with id <-> index mappings."""

    def __init__(self, dataset: RatingsDataset) -> None:
        self._user_index = {user: index for index, user in enumerate(dataset.users)}
        self._item_index = {item: index for index, item in enumerate(dataset.items)}
        self._users = dataset.users
        self._items = dataset.items
        self._matrix = np.zeros((len(self._users), len(self._items)), dtype=float)
        for rating in dataset:
            row = self._user_index[rating.user_id]
            col = self._item_index[rating.item_id]
            self._matrix[row, col] = rating.value

    # -- accessors ----------------------------------------------------------------

    @property
    def users(self) -> tuple[int, ...]:
        """User ids in row order."""
        return self._users

    @property
    def items(self) -> tuple[int, ...]:
        """Item ids in column order."""
        return self._items

    @property
    def values(self) -> np.ndarray:
        """The underlying (n_users, n_items) matrix; 0 means unrated."""
        return self._matrix

    @property
    def shape(self) -> tuple[int, int]:
        """(n_users, n_items)."""
        return self._matrix.shape

    def user_row(self, user_id: int) -> np.ndarray:
        """The rating vector of ``user_id`` over all items (0 = unrated)."""
        if user_id not in self._user_index:
            raise UnknownUserError(user_id)
        return self._matrix[self._user_index[user_id]]

    def item_column(self, item_id: int) -> np.ndarray:
        """The rating vector of ``item_id`` over all users (0 = unrated)."""
        if item_id not in self._item_index:
            raise UnknownItemError(item_id)
        return self._matrix[:, self._item_index[item_id]]

    def user_position(self, user_id: int) -> int:
        """Row index of a user."""
        if user_id not in self._user_index:
            raise UnknownUserError(user_id)
        return self._user_index[user_id]

    def item_position(self, item_id: int) -> int:
        """Column index of an item."""
        if item_id not in self._item_index:
            raise UnknownItemError(item_id)
        return self._item_index[item_id]

    def rating(self, user_id: int, item_id: int) -> float:
        """The stored rating or 0.0 when unrated."""
        return float(self._matrix[self.user_position(user_id), self.item_position(item_id)])

    def set_rating(self, user_id: int, item_id: int, value: float) -> None:
        """Write one cell in place — the delta-ingestion path.

        Both ids must already exist in the matrix (a delta introducing a new
        user or item changes the matrix shape and forces a full rebuild
        upstream).  Views handed out earlier — ``values``, ``user_row`` — see
        the new value immediately; model state derived from the matrix (norms,
        similarities, means) must be refreshed by the caller.
        """
        self._matrix[self.user_position(user_id), self.item_position(item_id)] = value

    def rated_mask(self) -> np.ndarray:
        """Boolean mask of rated cells."""
        return self._matrix > 0

    def user_means(self) -> np.ndarray:
        """Per-user mean over *rated* items only (0 for users with no rating)."""
        mask = self.rated_mask()
        counts = mask.sum(axis=1)
        sums = self._matrix.sum(axis=1)
        means = np.zeros(len(self._users))
        nonzero = counts > 0
        means[nonzero] = sums[nonzero] / counts[nonzero]
        return means

    def item_means(self) -> np.ndarray:
        """Per-item mean over users who rated it (0 for unrated items)."""
        mask = self.rated_mask()
        counts = mask.sum(axis=0)
        sums = self._matrix.sum(axis=0)
        means = np.zeros(len(self._items))
        nonzero = counts > 0
        means[nonzero] = sums[nonzero] / counts[nonzero]
        return means
