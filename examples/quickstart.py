"""Quickstart: recommend movies to an ad-hoc group with temporal affinities.

Builds a small synthetic MovieLens-like dataset plus a social network,
fits the group recommender and asks for a top-5 recommendation for a group
of four friends, comparing the affinity-aware result with the classic
affinity-agnostic one.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import GroupRecommender, one_year_timeline
from repro.data import MovieLensConfig, SocialNetworkGenerator, generate_movielens_like


def main() -> None:
    # 1. A collaborative rating dataset (substitute for MovieLens 1M).
    ratings = generate_movielens_like(
        MovieLensConfig(n_users=200, n_items=600, n_ratings=12_000, seed=42)
    )
    print(f"dataset: {ratings.stats().n_users} users, {ratings.stats().n_items} items, "
          f"{ratings.stats().n_ratings} ratings")

    # 2. A one-year observation window discretised into two-month periods
    #    (the granularity the paper selects in Figure 4) and a social network
    #    providing friendships (static affinity) and page likes (dynamic affinity).
    timeline = one_year_timeline(granularity="two-month")
    members_pool = list(ratings.users[:40])
    social = SocialNetworkGenerator().generate(members_pool, timeline)

    # 3. Fit the recommender: user-based collaborative filtering for absolute
    #    preferences plus pre-computed pairwise affinities.
    recommender = GroupRecommender(
        ratings, social, timeline, affinity_universe=members_pool
    ).fit()

    # 4. Ask for recommendations for an ad-hoc group of four users.
    group = members_pool[:4]
    affinity_aware = recommender.recommend(
        group, k=5, consensus="AP", affinity="discrete", exclude_rated=False
    )
    affinity_agnostic = recommender.recommend(
        group, k=5, consensus="AP", affinity="none", exclude_rated=False
    )

    print(f"\ngroup: {group}")
    print("\ntop-5 with temporal affinities (discrete model):")
    for item, score in affinity_aware.ranked():
        print(f"  item {item:>5}  consensus score {score:.3f}")
    print(f"  GRECA read {affinity_aware.percent_sequential_accesses:.1f}% of the index "
          f"(saved {affinity_aware.saveup:.1f}% of accesses, stopped by {affinity_aware.stopping})")

    print("\ntop-5 without affinities (classic group recommendation):")
    for item, score in affinity_agnostic.ranked():
        print(f"  item {item:>5}  consensus score {score:.3f}")

    overlap = set(affinity_aware.items) & set(affinity_agnostic.items)
    print(f"\nthe two lists share {len(overlap)} of 5 items; any difference is what "
          f"accounting for who is in the room changes (cohesive groups often agree).")


if __name__ == "__main__":
    main()
