"""Figure 3 — comparative evaluation of the temporal-affinity ingredients.

Three pairwise forced-choice comparisons per group characteristic:

* **A** — affinity-aware vs affinity-agnostic: the paper reports ~75% overall
  preference for affinity-aware lists, strongest for small and high-affinity
  groups.
* **B** — time-aware vs time-agnostic: temporal recommendations win in over
  80% of the cases for most groups.
* **C** — continuous vs discrete time model: the discrete model is preferred
  by strongly connected groups (high affinity, high similarity) while the
  continuous one wins for dissimilar and large groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.study.comparative import FIGURE3_COMPARISONS, ComparativeChart, ComparativeEvaluation
from repro.study.environment import CHARACTERISTICS, StudyEnvironment, build_study_environment

#: The paper's qualitative claims per chart.
PAPER_REFERENCE = {
    "A (Affinity-aware vs Affinity-agnostic)": {"overall_about": 75.0, "strongest": ("Small", "High Aff")},
    "B (Time-aware vs Time-agnostic)": {"overall_at_least": 80.0},
    "C (Continuous vs Discrete)": {
        "continuous_preferred_for": ("Diss", "Large"),
        "discrete_preferred_for": ("High Aff", "Sim"),
    },
}


@dataclass(frozen=True)
class Figure3Result:
    """The three charts of Figure 3."""

    charts: Mapping[str, ComparativeChart]

    def rows(self) -> list[dict[str, object]]:
        """Flat rows: chart, characteristic, win % of the first configuration."""
        rows = []
        for label, chart in self.charts.items():
            for characteristic in CHARACTERISTICS:
                rows.append(
                    {
                        "chart": label,
                        "characteristic": characteristic,
                        "preference_percent": round(chart.preference_percent[characteristic], 2),
                    }
                )
        return rows

    def format_table(self) -> str:
        """Human-readable rendering."""
        lines = ["Figure 3 — comparative evaluation (preference % for the first list)"]
        lines.append(f"{'chart':<42}" + "".join(f"{c:>10}" for c in CHARACTERISTICS))
        for label, chart in self.charts.items():
            values = "".join(f"{chart.preference_percent[c]:>10.1f}" for c in CHARACTERISTICS)
            lines.append(f"{label:<42}{values}")
        return "\n".join(lines)


def run(
    environment: StudyEnvironment | None = None,
    k: int = 5,
) -> Figure3Result:
    """Regenerate Figure 3 (all three charts)."""
    environment = environment or build_study_environment()
    evaluation = ComparativeEvaluation(environment, k=k)
    return Figure3Result(charts=evaluation.run_figure3())
