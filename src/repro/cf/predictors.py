"""Single-user rating predictors (the ``apref(u, i)`` substrate).

The paper's group model takes *absolute preferences* ``apref(u, i)`` from any
single-user recommendation algorithm; its experiments use user-based
collaborative filtering with cosine similarity.  This module implements:

* :class:`UserBasedCF` — k-nearest-neighbour user-based CF (the paper's
  choice), with mean-centred weighted aggregation.
* :class:`ItemBasedCF` — the classic item-based variant, useful as an
  alternative ``apref`` source.
* :class:`MeanPredictor` — a trivial baseline (item mean, falling back to
  user mean / global mean), handy in tests.

Every predictor exposes the same interface: ``fit(dataset)`` and
``predict(user_id, item_id) -> float`` in the original 1-5 rating scale, plus
``predict_all(user_id)`` returning predictions for every item.  Predictions
for items a user already rated return the observed rating, as is customary
when the predictor feeds a recommender that excludes already-rated items at a
later stage.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cf.matrix import RatingMatrix
from repro.cf.similarity import CosineState, similarity_matrix
from repro.data.ratings import MAX_RATING, MIN_RATING, RatingsDataset
from repro.exceptions import AlgorithmError, ConfigurationError


class RatingPredictor(abc.ABC):
    """Interface of all ``apref`` providers."""

    def __init__(self) -> None:
        self._matrix: RatingMatrix | None = None

    @property
    def matrix(self) -> RatingMatrix:
        """The fitted rating matrix."""
        if self._matrix is None:
            raise AlgorithmError("predictor is not fitted; call fit() first")
        return self._matrix

    @property
    def is_fitted(self) -> bool:
        """``True`` once :meth:`fit` has been called."""
        return self._matrix is not None

    def fit(self, dataset: RatingsDataset) -> "RatingPredictor":
        """Fit the predictor on a ratings dataset and return ``self``."""
        self._matrix = RatingMatrix(dataset)
        self._fit(self._matrix)
        return self

    @abc.abstractmethod
    def _fit(self, matrix: RatingMatrix) -> None:
        """Model-specific fitting using the dense matrix."""

    @abc.abstractmethod
    def predict(self, user_id: int, item_id: int) -> float:
        """Predicted rating of ``user_id`` for ``item_id`` in [1, 5]."""

    def predict_all(self, user_id: int) -> dict[int, float]:
        """Predictions for every item in the dataset."""
        return {item: self.predict(user_id, item) for item in self.matrix.items}

    def predict_for_items(self, user_id: int, items) -> dict[int, float]:
        """Predictions for a subset of items.

        The default delegates to :meth:`predict`, which every subclass keeps
        consistent with :meth:`predict_all`; :class:`UserBasedCF` overrides
        this with the shared vectorised per-item path so partial apref-cache
        patching is bit-identical to the full recomputation.
        """
        return {item: self.predict(user_id, item) for item in items}

    def partial_refit(self, touched_users) -> None:
        """Refresh model state after in-place cell updates on the fitted matrix.

        ``touched_users`` are the ids whose rating rows changed.  The default
        simply re-runs :meth:`_fit` on the (already updated) matrix — always
        correct; subclasses override to skip work that is bit-stable under a
        row-subset refresh.
        """
        self._fit(self.matrix)

    def stale_prediction_items(self, touched_users) -> tuple[int, ...]:
        """Items whose predictions may have changed for *untouched* users.

        The conservative default declares every item stale.  Subclasses with
        a provably narrower footprint (see :class:`UserBasedCF`) override.
        """
        return self.matrix.items

    def patchable_users(self, users) -> set[int]:
        """Subset of ``users`` whose cached predictions can be patched item-wise.

        A user is patchable when refreshing only :meth:`stale_prediction_items`
        reproduces a full :meth:`predict_all` bit-for-bit.  The conservative
        default patches no one (callers fall back to a full recomputation per
        user); :class:`UserBasedCF` overrides.
        """
        return set()

    @staticmethod
    def _clip(value: float) -> float:
        """Clip a raw prediction into the valid rating range."""
        return float(min(MAX_RATING, max(MIN_RATING, value)))


class MeanPredictor(RatingPredictor):
    """Predict the item mean, falling back to the user mean then to 3.0."""

    def _fit(self, matrix: RatingMatrix) -> None:
        self._item_means = matrix.item_means()
        self._user_means = matrix.user_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def predict(self, user_id: int, item_id: int) -> float:
        matrix = self.matrix
        observed = matrix.rating(user_id, item_id)
        if observed > 0:
            return observed
        item_mean = self._item_means[matrix.item_position(item_id)]
        if item_mean > 0:
            return self._clip(item_mean)
        user_mean = self._user_means[matrix.user_position(user_id)]
        if user_mean > 0:
            return self._clip(user_mean)
        return self._clip(self._global_mean)


class UserBasedCF(RatingPredictor):
    """k-NN user-based collaborative filtering with cosine similarity.

    Prediction follows the standard mean-centred formulation:

    ``apref(u, i) = mean(u) + sum_v sim(u, v) * (r(v, i) - mean(v)) / sum_v |sim(u, v)|``

    where the sum ranges over the ``k`` most similar users who rated ``i``.

    Parameters
    ----------
    k_neighbors:
        Neighbourhood size (``None`` means all users).
    metric:
        Similarity metric name (``cosine``, ``pearson`` or ``jaccard``).
    min_similarity:
        Neighbours with similarity below this threshold are ignored.
    """

    def __init__(
        self,
        k_neighbors: int | None = 40,
        metric: str = "cosine",
        min_similarity: float = 0.0,
    ) -> None:
        super().__init__()
        if k_neighbors is not None and k_neighbors <= 0:
            raise ConfigurationError("k_neighbors must be positive or None")
        self.k_neighbors = k_neighbors
        self.metric = metric
        self.min_similarity = min_similarity

    def _fit(self, matrix: RatingMatrix) -> None:
        if self.metric == "cosine":
            # Keep the cosine state (row norms + normalised rows) so a delta
            # can refresh only the touched rows; the gemm itself is redone in
            # full each time because a row-subset product is not bit-stable.
            self._cosine_state = CosineState(matrix.values)
            self._similarity = self._cosine_state.similarity()
        else:
            self._cosine_state = None
            self._similarity = similarity_matrix(matrix, metric=self.metric, axis="user")
        np.fill_diagonal(self._similarity, 0.0)
        self._user_means = matrix.user_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def partial_refit(self, touched_users) -> None:
        """Refresh after in-place row updates, reusing untouched cosine rows.

        Bit-identical to a fresh :meth:`_fit` on the updated matrix: per-row
        norms and the row-wise division are bit-stable under subsetting, and
        the similarity gemm, means and global mean are recomputed through the
        exact full-fit code paths.
        """
        matrix = self.matrix
        state = getattr(self, "_cosine_state", None)
        if state is None or state.vectors is not matrix.values:
            self._fit(matrix)
            return
        state.refresh_rows(matrix.user_position(user) for user in touched_users)
        self._similarity = state.similarity()
        np.fill_diagonal(self._similarity, 0.0)
        self._user_means = matrix.user_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def stale_prediction_items(self, touched_users) -> tuple[int, ...]:
        """Items whose predictions may differ for users *not* in ``touched_users``.

        For an untouched user ``u`` with a positive mean, ``predict(u, i)``
        reads: ``u``'s similarity to the raters of ``i``, those raters'
        ratings of ``i`` and their means.  Unless a touched user rates ``i``
        (post-update), every one of those inputs is bit-unchanged — unchanged
        pairs of the recomputed similarity gemm are bit-stable — so only the
        items rated by a touched user can move.
        """
        matrix = self.matrix
        stale: set[int] = set()
        for user in touched_users:
            row = matrix.values[matrix.user_position(user)]
            for col in np.flatnonzero(row > 0):
                stale.add(matrix.items[int(col)])
        return tuple(sorted(stale))

    def patchable_users(self, users) -> set[int]:
        """Users with a positive (post-update) mean: their baseline is their
        own mean, not the global mean that moves with every delta, so only
        the stale items can change for them."""
        matrix = self.matrix
        return {
            user
            for user in users
            if self._user_means[matrix.user_position(user)] > 0
        }

    def predict(self, user_id: int, item_id: int) -> float:
        matrix = self.matrix
        observed = matrix.rating(user_id, item_id)
        if observed > 0:
            return observed

        row = matrix.user_position(user_id)
        col = matrix.item_position(item_id)
        raters = np.flatnonzero(matrix.values[:, col] > 0)
        if raters.size == 0:
            baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
            return self._clip(baseline)

        similarities = self._similarity[row, raters]
        keep = similarities > self.min_similarity
        raters = raters[keep]
        similarities = similarities[keep]
        if raters.size == 0:
            baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
            return self._clip(baseline)

        if self.k_neighbors is not None and raters.size > self.k_neighbors:
            order = np.argsort(-similarities)[: self.k_neighbors]
            raters = raters[order]
            similarities = similarities[order]

        neighbour_ratings = matrix.values[raters, col]
        neighbour_means = self._user_means[raters]
        numerator = float(np.sum(similarities * (neighbour_ratings - neighbour_means)))
        denominator = float(np.sum(np.abs(similarities)))
        baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
        if denominator == 0:
            return self._clip(baseline)
        return self._clip(baseline + numerator / denominator)

    def _prediction_inputs(self, user_id: int):
        """Per-user state shared by :meth:`predict_all` and :meth:`predict_for_items`."""
        matrix = self.matrix
        row = matrix.user_position(user_id)
        values = matrix.values
        baseline = self._user_means[row] if self._user_means[row] > 0 else self._global_mean
        similarities = self._similarity[row].copy()
        similarities[similarities <= self.min_similarity] = 0.0
        return matrix, row, values, baseline, similarities

    def _raw_prediction(self, row, col, values, rated_mask, similarities, baseline) -> float:
        """Unclipped prediction for one cell — the single per-item code path.

        Both the full sweep and the item-subset patcher call this, which is
        what makes partial apref-cache refreshes bit-identical to a full
        recomputation (same argsort, same summation order, same fallbacks).
        """
        observed = values[row, col]
        if observed > 0:
            return float(observed)
        raters = np.flatnonzero(rated_mask[:, col])
        sims = similarities[raters]
        keep = sims > 0
        raters = raters[keep]
        sims = sims[keep]
        if raters.size == 0:
            return float(baseline)
        if self.k_neighbors is not None and raters.size > self.k_neighbors:
            order = np.argsort(-sims)[: self.k_neighbors]
            raters = raters[order]
            sims = sims[order]
        centred = values[raters, col] - self._user_means[raters]
        denominator = float(np.sum(np.abs(sims)))
        if denominator > 0:
            return float(baseline) + float(np.sum(sims * centred)) / denominator
        return float(baseline)

    def predict_all(self, user_id: int) -> dict[int, float]:
        """Vectorised prediction of every item for one user."""
        matrix, row, values, baseline, similarities = self._prediction_inputs(user_id)
        n_items = values.shape[1]
        rated_mask = values > 0
        predictions = np.full(n_items, baseline)
        for col in range(n_items):
            predictions[col] = self._raw_prediction(
                row, col, values, rated_mask, similarities, baseline
            )
        predictions = np.clip(predictions, MIN_RATING, MAX_RATING)
        return {item: float(predictions[index]) for index, item in enumerate(matrix.items)}

    def predict_for_items(self, user_id: int, items) -> dict[int, float]:
        """Predictions for a subset of items, bit-identical to the same
        entries of :meth:`predict_all` (shared per-item path; the scalar clip
        equals the vector clip elementwise)."""
        matrix, row, values, baseline, similarities = self._prediction_inputs(user_id)
        rated_mask = values > 0
        predictions = {}
        for item in items:
            col = matrix.item_position(item)
            raw = self._raw_prediction(row, col, values, rated_mask, similarities, baseline)
            predictions[item] = float(np.clip(raw, MIN_RATING, MAX_RATING))
        return predictions


class ItemBasedCF(RatingPredictor):
    """k-NN item-based collaborative filtering.

    ``apref(u, i)`` is the similarity-weighted average of the user's ratings
    on the items most similar to ``i``.
    """

    def __init__(self, k_neighbors: int | None = 40, metric: str = "cosine") -> None:
        super().__init__()
        if k_neighbors is not None and k_neighbors <= 0:
            raise ConfigurationError("k_neighbors must be positive or None")
        self.k_neighbors = k_neighbors
        self.metric = metric

    def _fit(self, matrix: RatingMatrix) -> None:
        self._similarity = similarity_matrix(matrix, metric=self.metric, axis="item")
        np.fill_diagonal(self._similarity, 0.0)
        self._item_means = matrix.item_means()
        rated = matrix.values[matrix.rated_mask()]
        self._global_mean = float(rated.mean()) if rated.size else 3.0

    def predict(self, user_id: int, item_id: int) -> float:
        matrix = self.matrix
        observed = matrix.rating(user_id, item_id)
        if observed > 0:
            return observed

        row = matrix.user_position(user_id)
        col = matrix.item_position(item_id)
        rated_cols = np.flatnonzero(matrix.values[row] > 0)
        if rated_cols.size == 0:
            fallback = self._item_means[col] if self._item_means[col] > 0 else self._global_mean
            return self._clip(fallback)

        similarities = self._similarity[col, rated_cols]
        keep = similarities > 0
        rated_cols = rated_cols[keep]
        similarities = similarities[keep]
        if rated_cols.size == 0:
            fallback = self._item_means[col] if self._item_means[col] > 0 else self._global_mean
            return self._clip(fallback)

        if self.k_neighbors is not None and rated_cols.size > self.k_neighbors:
            order = np.argsort(-similarities)[: self.k_neighbors]
            rated_cols = rated_cols[order]
            similarities = similarities[order]

        ratings = matrix.values[row, rated_cols]
        denominator = float(np.sum(np.abs(similarities)))
        if denominator == 0:
            fallback = self._item_means[col] if self._item_means[col] > 0 else self._global_mean
            return self._clip(fallback)
        return self._clip(float(np.sum(similarities * ratings)) / denominator)
