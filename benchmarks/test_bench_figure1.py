"""Benchmark regenerating Figure 1 (independent quality evaluation)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure1


def test_figure1_independent_evaluation(benchmark, study_env):
    """Score the six recommendation configurations per group characteristic."""
    result = run_once(benchmark, figure1.run, environment=study_env)
    print()
    print(result.format_table())
    assert len(result.charts) == 6
    default = result.charts["A (Default)"]
    agnostic = result.charts["B (Affinity-agnostic)"]
    # The default temporal-affinity configuration scores reasonably high overall
    # and is never much worse than the affinity-agnostic ablation.
    assert default.overall() > 60.0
    assert default.overall() >= agnostic.overall() - 5.0
