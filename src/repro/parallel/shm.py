"""Zero-copy shared-memory shipment of the factory substrate.

PR 3 measured the sharded path's dominant overhead on shipment: every shard
re-pickles its :class:`~repro.core.greca.GrecaIndexFactory`, and the dense
float64 arrays inside (the ``(members × items)`` apref matrix, the columnar
tie-break ranking, the item-id column) dominate that payload.  This module
deletes the copy: the large arrays are placed in
:mod:`multiprocessing.shared_memory` segments *once per environment*, and
shards ship only :class:`SharedArraySpec` descriptors — ``(segment_name,
shape, dtype, offset)`` tuples a few hundred bytes long — which workers
reattach zero-copy.

Three layers:

* :class:`SharedArraySpec` + :func:`attach_array` — a picklable descriptor
  of one ndarray inside a segment, and the worker-side reattachment (a
  read-only ``np.frombuffer`` view over the mapped segment, no copy).
* :class:`SharedArrayRegistry` — the context-managed owner of every segment
  a parent process creates.  ``export(factory)`` packs a factory's substrate
  arrays into one segment (memoised per factory, so repeated dispatches of
  the same memoised factory ship the *same* segment) and returns the
  picklable :class:`ShmFactoryHandle`.  ``close()`` — reached via ``with``,
  an explicit call, or the ``weakref.finalize`` backstop at garbage
  collection / interpreter exit — unlinks every segment, so ``/dev/shm``
  entries cannot outlive the registry even when a worker raised or the run
  was interrupted.  (POSIX semantics: workers that already mapped a segment
  keep their mapping after the unlink; only *new* attaches fail.)
* :class:`ShmFactoryHandle` + :func:`materialise_factory` — the worker side.
  ``materialise_factory`` rebuilds a :class:`GrecaIndexFactory` around the
  attached arrays through :meth:`GrecaIndexFactory.from_columns` — sharing
  the mapped matrix, never copying it — and memoises the result per process,
  so a persistent worker pool re-serves every later shard of the same
  factory from its warm cache (including the factory's own memo of
  column-sliced substrates).
* :class:`ShmAffinityHandle` + :func:`materialise_affinity` — the same
  treatment for the per-(group, period) affinity inputs: one
  :class:`~repro.core.affinity.AffinityColumns` set per (group, affinity
  model) covers the full timeline, tasks reference a period prefix, and the
  dictionaries that used to pickle into every task become three descriptors.

All worker-side memos (factories, affinity columns, and the finished
indexes of :func:`cached_index`/:func:`store_index`) are LRU-bounded —
``FACTORY_CACHE_MAX`` / ``AFFINITY_CACHE_MAX`` / ``INDEX_CACHE_MAX`` — so
arbitrarily long sweeps on a warm persistent pool hold worker memory flat;
eviction is transparent (the next use reattaches zero-copy).

Bit-identity: the shared matrix holds the exact bytes of the parent's
matrix, the tie-break ranking ships alongside it, and ``max_apref`` ships
resolved — so a materialised factory builds indexes bit-identical to the
pickled factory (enforced by ``tests/test_parallel_equivalence.py``'s shm
axes).

Sizing caveat: segments live in ``/dev/shm`` (a tmpfs typically capped at
half the host's RAM).  The registry keeps one float64 copy of each exported
substrate for the lifetime of the environment — the same order of memory the
pickle path peaked at per dispatch, but held flat instead of re-allocated
per shard.

Storage tier (PR 9): every descriptor carries a ``storage`` discriminator —
:data:`~repro.parallel.storage.STORAGE_SHM` (a ``/dev/shm`` segment) or
:data:`~repro.parallel.storage.STORAGE_MMAP` (a memory-mapped spool file,
see :mod:`repro.parallel.storage`) — and the registry packs exports into
either backend (``storage=`` at construction, or automatically when a
projected shm export would blow a configured ``/dev/shm`` budget).  Workers
attach both the same way: one read-only mapping per segment, numpy views at
descriptor offsets, identical unlink-while-mapped drain semantics.  The
``storage`` field participates in descriptor (and therefore handle)
equality, so an shm export and an mmap export of the same logical column
can never alias one worker-cache entry.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro.core.affinity import AffinityColumns
from repro.core.greca import GrecaIndex, GrecaIndexFactory
from repro.exceptions import ConfigurationError
from repro.parallel.storage import (
    STORAGE_MMAP,
    STORAGE_SHM,
    MappedFileSegment,
    SpoolDirectory,
    default_shm_budget_bytes,
    validate_storage_name,
)

#: Either backend's mapped-segment object: both expose ``name``/``size``/
#: ``buf``/``close()``/``unlink()`` with identical semantics.
Segment = shared_memory.SharedMemory | MappedFileSegment

#: Shipment spellings accepted by :func:`repro.parallel.evaluate_tasks`.
SHIPMENT_PICKLE = "pickle"
SHIPMENT_SHM = "shm"
VALID_SHIPMENTS = (SHIPMENT_PICKLE, SHIPMENT_SHM)

#: Byte alignment of arrays packed into one segment.
_ALIGNMENT = 16

#: Process-wide export generation counter.  Every export (and every healing
#: re-export) stamps its handle with the next value, so two exports can
#: never produce equal handles even when the OS recycles a segment name for
#: a same-shape layout — which is guaranteed to happen once epochs re-export
#: refreshed substrates over identical shapes.  Worker-side caches key on
#: handles, so the token versions every cache entry for free.
_GENERATION_LOCK = threading.Lock()
_GENERATION_COUNTER = 0


def next_generation() -> int:
    """The next process-wide export generation (monotonic, never reused)."""
    global _GENERATION_COUNTER
    with _GENERATION_LOCK:
        _GENERATION_COUNTER += 1
        return _GENERATION_COUNTER

#: Segment names created by *this* process (fork children inherit a copy,
#: which is exactly right: with a fork-inherited resource tracker the extra
#: attach-registration is an idempotent no-op, while spawn children start
#: empty and unregister their attachments so a child's tracker never unlinks
#: a segment the parent still owns).
_OWNED_NAMES: set[str] = set()

#: Process-local cache of attached segments (name → mapped segment, either
#: backend).  Entries stay mapped for the life of the process so numpy views
#: handed out by :func:`attach_array` never lose their buffer.  Spool-file
#: names are absolute paths and shm names contain no separator, so the two
#: backends' names can never collide in this map.
_ATTACHED: dict[str, Segment] = {}

#: Newest export generation observed per attached segment name.  A mapping
#: attached for generation g is stale the moment a handle for the same name
#: arrives with generation > g: the name was unlinked and recycled in the
#: meantime, and the old mapping still shows the dead segment's bytes.
_ATTACHED_GENERATIONS: dict[str, int] = {}

#: Process-local memo of materialised factories (handle → factory), the
#: warm-cache that makes persistent pools pay shipment once per factory.
#: Bounded LRU: long sweeps over many groups on a warm persistent pool must
#: not grow worker memory without limit, so the least-recently-served
#: factory is evicted past the cap (re-materialising later is just a new
#: zero-copy attach).
_FACTORY_CACHE: OrderedDict["ShmFactoryHandle", GrecaIndexFactory] = OrderedDict()
FACTORY_CACHE_MAX = 32

#: Process-local memo of attached affinity columns (handle → columns); same
#: LRU bound rationale as the factory cache.
_AFFINITY_CACHE: OrderedDict["ShmAffinityHandle", AffinityColumns] = OrderedDict()
AFFINITY_CACHE_MAX = 256

#: Process-local memo of fully built worker-side indexes, keyed by the
#: content-stable shipment handles (factory handle, affinity handle,
#: period-prefix length, item restriction, time model).  This is what lets a
#: batched multi-query payload — and a warm persistent pool across payloads
#: — evaluate a k/consensus sweep against one memoised index instead of
#: rebuilding it per task.  Bounded LRU: restricted-item indexes hold sliced
#: matrix copies, so the cap also bounds worker memory.
_INDEX_CACHE: OrderedDict[tuple, GrecaIndex] = OrderedDict()
INDEX_CACHE_MAX = 64


def _cache_get(cache: OrderedDict, key):
    """LRU lookup: a hit is moved to the most-recently-used end."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _cache_put(cache: OrderedDict, key, value, max_entries: int) -> None:
    """LRU insert: evict from the least-recently-used end past the cap."""
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > max_entries:
        cache.popitem(last=False)

#: Forgotten-but-still-mapped segments: entries whose numpy views were still
#: alive when their registry unlinked.  Kept referenced so the mapping (and
#: the views into it) stay valid and ``SharedMemory.__del__`` never fires
#: mid-run with exported buffers; the OS reclaims everything at process exit.
_ZOMBIES: list[Segment] = []


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable descriptor of one ndarray inside a mapped segment.

    ``storage`` names the backend the segment lives in — a ``/dev/shm``
    shared-memory segment (``"shm"``, with ``segment`` the POSIX name) or a
    memory-mapped spool file (``"mmap"``, with ``segment`` the absolute
    path).  It participates in equality, so descriptors (and the handles
    built from them) for the same logical column in different backends can
    never compare equal — worker caches keyed on handles cannot alias
    across storage tiers.
    """

    segment: str
    shape: tuple[int, ...]
    dtype: str
    offset: int = 0
    storage: str = STORAGE_SHM

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


def _attached_segment(name: str, storage: str = STORAGE_SHM) -> Segment:
    """Attach (once per process) to a named segment and keep it mapped."""
    segment = _ATTACHED.get(name)
    if segment is None:
        if storage == STORAGE_MMAP:
            # Spool files never touch the resource tracker: attaching maps
            # the file read-only, and only the owning registry unlinks it.
            # A vanished file raises FileNotFoundError like an shm attach.
            segment = MappedFileSegment(name)
            _ATTACHED[name] = segment
            return segment
        segment = shared_memory.SharedMemory(name=name)
        if name not in _OWNED_NAMES:
            # Python < 3.13 registers *attachments* with the resource
            # tracker too; under the spawn start method a worker's tracker
            # would then unlink the parent's segment when the worker exits.
            # Attachments are not ownership — undo the registration.
            try:  # pragma: no cover - depends on interpreter internals
                resource_tracker.unregister(
                    getattr(segment, "_name", segment.name), "shared_memory"
                )
            except Exception:
                pass
        _ATTACHED[name] = segment
    return segment


def _refresh_attachments(names: set[str], generation: int) -> None:
    """Drop attached mappings that predate a handle's export generation.

    A persistent worker keeps segments mapped for the life of the process;
    if the parent unlinked one and the OS later recycled its name for a new
    export, the stale mapping would silently serve the dead segment's bytes.
    A handle stamped with a newer generation than the mapping's recorded one
    proves exactly that happened — re-attach before serving.  Mappings with
    live numpy views cannot be closed; they are parked in ``_ZOMBIES``.
    """
    if generation <= 0:
        return
    for name in names:
        if _ATTACHED_GENERATIONS.get(name, 0) >= generation:
            continue
        segment = _ATTACHED.pop(name, None)
        _ATTACHED_GENERATIONS.pop(name, None)
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # live views — keep the mapping alive
                _ZOMBIES.append(segment)


def _record_attachment_generation(names: set[str], generation: int) -> None:
    """Remember the newest export generation served through these names."""
    for name in names:
        if generation > _ATTACHED_GENERATIONS.get(name, 0):
            _ATTACHED_GENERATIONS[name] = generation


def attach_array(spec: SharedArraySpec) -> np.ndarray:
    """A read-only ndarray view over the described segment region (no copy)."""
    segment = _attached_segment(spec.segment, spec.storage)
    count = 1
    for extent in spec.shape:
        count *= extent
    array = np.frombuffer(
        segment.buf, dtype=np.dtype(spec.dtype), count=count, offset=spec.offset
    ).reshape(spec.shape)
    array.flags.writeable = False
    return array


def _forget_segments(names: Sequence[str]) -> None:
    """Drop process-local caches referencing the given (unlinked) segments.

    Mappings whose numpy views are still alive cannot be closed (that would
    invalidate live arrays); they are parked in ``_ZOMBIES`` so the views
    stay valid and no destructor fires against an exported buffer.
    """
    names = set(names)
    for handle in [h for h in _FACTORY_CACHE if h.segment_names() & names]:
        _FACTORY_CACHE.pop(handle, None)
    for handle in [h for h in _AFFINITY_CACHE if h.segment_names() & names]:
        _AFFINITY_CACHE.pop(handle, None)
    for key in [
        k
        for k in _INDEX_CACHE
        if (k[0].segment_names() | k[1].segment_names()) & names
    ]:
        _INDEX_CACHE.pop(key, None)
    for name in names:
        _OWNED_NAMES.discard(name)
        _ATTACHED_GENERATIONS.pop(name, None)
        segment = _ATTACHED.pop(name, None)
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # live views — keep the mapping alive
                _ZOMBIES.append(segment)


def _release_segments(segments: list[Segment], names: list[str]) -> None:
    """Unlink every created segment (idempotent; the finalizer backstop)."""
    _forget_segments(names)
    while segments:
        segment = segments.pop()
        try:
            segment.unlink()
        except FileNotFoundError:  # already unlinked
            pass
        try:
            segment.close()
        except BufferError:
            # A live numpy view still maps the creator's handle; park it so
            # the view stays valid.  The /dev/shm entry is gone either way.
            _ZOMBIES.append(segment)


@dataclass(frozen=True)
class ShmFactoryHandle:
    """Picklable zero-copy stand-in for one memoised :class:`GrecaIndexFactory`.

    Ships descriptors instead of arrays: the apref matrix, the ``repr``
    tie-break ranking and (when the item ids are plain ints, which is the
    int64-roundtrip-exact case) the item-id column.  ``items`` carries the
    literal tuple only in the fallback case of non-integer item ids.

    ``generation`` versions the handle: segment names + shapes alone do not
    identify content, because an unlinked name can be recycled by the OS for
    a later export of the same layout.  The export generation is part of
    dataclass equality, so worker-side caches keyed on handles can never
    alias a recycled name to a stale cached object.
    """

    members: tuple[int, ...]
    matrix: SharedArraySpec
    repr_rank: SharedArraySpec
    max_apref: float
    items_spec: SharedArraySpec | None = None
    items: tuple | None = None
    generation: int = 0

    def __post_init__(self) -> None:
        if (self.items_spec is None) == (self.items is None):
            raise ConfigurationError(
                "exactly one of items_spec / items must describe the item universe"
            )

    def segment_names(self) -> set[str]:
        """Every segment this handle references."""
        names = {self.matrix.segment, self.repr_rank.segment}
        if self.items_spec is not None:
            names.add(self.items_spec.segment)
        return names

    def payload_bytes(self) -> int:
        """Bytes of array data this handle references (not ships)."""
        total = self.matrix.nbytes + self.repr_rank.nbytes
        if self.items_spec is not None:
            total += self.items_spec.nbytes
        return total


def materialise_factory(handle: ShmFactoryHandle) -> GrecaIndexFactory:
    """Rebuild (once per process, LRU-bounded) the factory around the attached arrays."""
    factory = _cache_get(_FACTORY_CACHE, handle)
    if factory is None:
        _refresh_attachments(handle.segment_names(), handle.generation)
        matrix = attach_array(handle.matrix)
        repr_rank = attach_array(handle.repr_rank)
        if handle.items_spec is not None:
            items = tuple(int(value) for value in attach_array(handle.items_spec))
        else:
            items = handle.items
        factory = GrecaIndexFactory.from_columns(
            handle.members, items, matrix, handle.max_apref, repr_rank=repr_rank
        )
        _record_attachment_generation(handle.segment_names(), handle.generation)
        _cache_put(_FACTORY_CACHE, handle, factory, FACTORY_CACHE_MAX)
    return factory


def resolve_factory(factory: GrecaIndexFactory | ShmFactoryHandle) -> GrecaIndexFactory:
    """Worker-side: a usable factory, whether shipped by value or by handle."""
    if isinstance(factory, ShmFactoryHandle):
        return materialise_factory(factory)
    return factory


@dataclass(frozen=True)
class ShmAffinityHandle:
    """Picklable zero-copy stand-in for one :class:`AffinityColumns` set.

    Ships the ``(n_pairs,)`` static column, the ``(n_periods, n_pairs)``
    periodic matrix and the ``(n_periods,)`` averages vector as segment
    descriptors; only the small canonical pair tuple travels by value.  One
    handle covers a group's *full* timeline — tasks select their query
    period's prefix via :attr:`~repro.parallel.worker.GroupEvalTask
    .n_periods` — so a whole period sweep references a single export.

    ``generation`` versions the handle exactly as on
    :class:`ShmFactoryHandle`: recycled segment names must never alias a
    stale cached columns object.
    """

    pairs: tuple[tuple[int, int], ...]
    static: SharedArraySpec
    periodic: SharedArraySpec
    averages: SharedArraySpec
    generation: int = 0

    def segment_names(self) -> set[str]:
        """Every segment this handle references."""
        return {self.static.segment, self.periodic.segment, self.averages.segment}

    def payload_bytes(self) -> int:
        """Bytes of array data this handle references (not ships)."""
        return self.static.nbytes + self.periodic.nbytes + self.averages.nbytes


def materialise_affinity(handle: ShmAffinityHandle) -> AffinityColumns:
    """Reattach (once per process, LRU-bounded) the columns behind a handle."""
    columns = _cache_get(_AFFINITY_CACHE, handle)
    if columns is None:
        _refresh_attachments(handle.segment_names(), handle.generation)
        columns = AffinityColumns(
            pairs=handle.pairs,
            static=attach_array(handle.static),
            periodic=attach_array(handle.periodic),
            averages=attach_array(handle.averages),
        )
        _record_attachment_generation(handle.segment_names(), handle.generation)
        _cache_put(_AFFINITY_CACHE, handle, columns, AFFINITY_CACHE_MAX)
    return columns


def resolve_affinity_columns(
    columns: AffinityColumns | ShmAffinityHandle,
) -> AffinityColumns:
    """Worker-side: usable columns, whether shipped by value or by handle."""
    if isinstance(columns, ShmAffinityHandle):
        return materialise_affinity(columns)
    if isinstance(columns, AffinityColumns):
        return columns
    raise ConfigurationError(
        f"expected AffinityColumns or ShmAffinityHandle, got {type(columns).__name__}"
    )


def rewrite_spec(spec: SharedArraySpec, mapping: "dict[str, str]") -> SharedArraySpec:
    """The same descriptor pointed at a (possibly) re-exported segment."""
    new_name = mapping.get(spec.segment)
    if new_name is None:
        return spec
    return replace(spec, segment=new_name)


def rewrite_factory_handle(
    handle: ShmFactoryHandle, mapping: "dict[str, str]"
) -> ShmFactoryHandle:
    """A factory handle with every segment reference passed through ``mapping``.

    Used by the supervisor's self-healing path: when the registry re-exports
    a vanished segment under a fresh name, pending retry payloads must ship
    handles that reference the replacement.
    """
    if not mapping or not (handle.segment_names() & mapping.keys()):
        return handle
    return replace(
        handle,
        matrix=rewrite_spec(handle.matrix, mapping),
        repr_rank=rewrite_spec(handle.repr_rank, mapping),
        items_spec=(
            None if handle.items_spec is None else rewrite_spec(handle.items_spec, mapping)
        ),
    )


def rewrite_affinity_handle(
    handle: ShmAffinityHandle, mapping: "dict[str, str]"
) -> ShmAffinityHandle:
    """An affinity handle with every segment reference passed through ``mapping``."""
    if not mapping or not (handle.segment_names() & mapping.keys()):
        return handle
    return replace(
        handle,
        static=rewrite_spec(handle.static, mapping),
        periodic=rewrite_spec(handle.periodic, mapping),
        averages=rewrite_spec(handle.averages, mapping),
    )


def purge_stale(min_generation: int) -> int:
    """Drop worker-side cache entries from exports older than ``min_generation``.

    The epoch-adoption contract: when the parent retires an epoch's exports
    (unlinking their segments), warm persistent workers are *not* restarted —
    they learn about the retirement from the ``min_generation`` stamped on
    the next payload they run.  Everything below the floor — materialised
    factories, affinity columns, finished indexes, and the attached mappings
    behind them — is provably dead for the stamping registry, so it is
    dropped here before any task of the new dispatch runs.  Returns the
    number of cache entries removed (attachments not counted).
    """
    if min_generation <= 0:
        return 0
    stale_factories = [h for h in _FACTORY_CACHE if h.generation < min_generation]
    stale_affinities = [h for h in _AFFINITY_CACHE if h.generation < min_generation]
    stale_keys = [
        k
        for k in _INDEX_CACHE
        if k[0].generation < min_generation or k[1].generation < min_generation
    ]
    stale_names: set[str] = set()
    for handle in stale_factories:
        stale_names |= handle.segment_names()
        _FACTORY_CACHE.pop(handle, None)
    for handle in stale_affinities:
        stale_names |= handle.segment_names()
        _AFFINITY_CACHE.pop(handle, None)
    for key in stale_keys:
        stale_names |= key[0].segment_names() | key[1].segment_names()
        _INDEX_CACHE.pop(key, None)
    # Keep mappings that a still-live (>= floor) cached handle references:
    # a recycled name can be shared between a stale entry and a live one.
    live_names: set[str] = set()
    for handle in _FACTORY_CACHE:
        live_names |= handle.segment_names()
    for handle in _AFFINITY_CACHE:
        live_names |= handle.segment_names()
    for name in stale_names - live_names:
        if _ATTACHED_GENERATIONS.get(name, 0) >= min_generation:
            continue
        _ATTACHED_GENERATIONS.pop(name, None)
        segment = _ATTACHED.pop(name, None)
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # live views — keep the mapping alive
                _ZOMBIES.append(segment)
    return len(stale_factories) + len(stale_affinities) + len(stale_keys)


def cached_index(key: tuple) -> GrecaIndex | None:
    """The per-process memoised index for a content-stable shipment key."""
    return _cache_get(_INDEX_CACHE, key)


def store_index(key: tuple, index: GrecaIndex) -> None:
    """Memoise a worker-built index (LRU-bounded)."""
    _cache_put(_INDEX_CACHE, key, index, INDEX_CACHE_MAX)


class SharedArrayRegistry:
    """Context-managed owner of the shared-memory segments a parent creates.

    ``export`` is memoised per factory object, so every dispatch of the same
    memoised factory — across shards, figure drivers and persistent-pool
    calls — references one segment.  Unlink-on-exit is guaranteed three ways:
    the ``with`` block, an explicit :meth:`close`, and a ``weakref.finalize``
    backstop that fires at garbage collection or interpreter shutdown even
    after an exception or a ``KeyboardInterrupt``.

    ``storage=`` selects the backend exports are packed into: ``"shm"``
    (default) places arrays in ``/dev/shm`` segments, ``"mmap"`` in
    memory-mapped files under a private spool directory (created lazily,
    removed with the registry).  An shm registry additionally *spills* to
    the spool when a projected export would push its live shm bytes past
    ``shm_budget_bytes`` (default: the ``REPRO_SHM_BUDGET_BYTES`` env var),
    so catalogues that outgrow ``/dev/shm`` degrade to the page cache
    instead of failing.  Both backends honour identical unlink/close/retire
    semantics, so every lifecycle guarantee above covers spool files too.
    """

    def __init__(
        self,
        storage: str = STORAGE_SHM,
        spool_dir: str | None = None,
        shm_budget_bytes: int | None = None,
    ) -> None:
        self.storage = validate_storage_name(storage)
        self._spool_root = spool_dir
        self._spool: SpoolDirectory | None = None
        self._shm_budget = (
            default_shm_budget_bytes() if shm_budget_bytes is None else shm_budget_bytes
        )
        self._shm_bytes = 0
        self._spill_count = 0
        self._segments: list[Segment] = []
        self._names: list[str] = []
        self._handles: dict[int, tuple[GrecaIndexFactory, ShmFactoryHandle]] = {}
        self._affinity_handles: dict[int, tuple[AffinityColumns, ShmAffinityHandle]] = {}
        self._closed = False
        # Reentrant: export() calls share_arrays() under the same lock.  The
        # serving layer exports from concurrent dispatch threads; without
        # serialisation, two threads racing the id()-memo check both pack the
        # same factory into segments, and the loser's segment lingers as an
        # unmemoised duplicate until close().
        self._lock = threading.RLock()
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments, self._names
        )

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """``True`` once the registry's segments have been unlinked."""
        return self._closed

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Names of every segment created (and owned) by this registry."""
        return tuple(self._names)

    @property
    def spool_path(self) -> str | None:
        """The spool directory path, once any mmap export created it."""
        return None if self._spool is None else self._spool.path

    @property
    def spill_count(self) -> int:
        """How many shm exports the /dev/shm budget redirected to the spool."""
        return self._spill_count

    def close(self) -> None:
        """Unlink every owned segment (and spool file); idempotent, thread-safe."""
        with self._lock:
            self._closed = True
            self._handles.clear()
            self._affinity_handles.clear()
            self._finalizer()
            if self._spool is not None:
                self._spool.close()

    def __enter__(self) -> "SharedArrayRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- self-healing --------------------------------------------------------------------

    def reexport_missing(self) -> dict[str, str]:
        """Recreate any owned segment whose system entry has vanished.

        A segment can disappear from under a live registry — a foreign
        unlink, an over-eager resource tracker on an abnormal worker death —
        while the registry's own mapping (and its byte content) stays valid.
        This probes every owned name, copies the bytes of each vanished
        segment into a fresh one, rewrites the memoised export handles, and
        returns ``{old_name: new_name}`` so the caller (the dispatch
        supervisor's self-healing rebuild) can rewrite pending payloads via
        :func:`rewrite_factory_handle` / :func:`rewrite_affinity_handle`.
        An empty mapping means every segment is still attachable — the
        normal case, and the cheap one (one probe attach per segment).
        """
        with self._lock:
            return self._reexport_missing_locked()

    def _reexport_missing_locked(self) -> dict[str, str]:
        if self._closed:
            return {}
        mapping: dict[str, str] = {}
        for position, name in enumerate(list(self._names)):
            old = self._segments[position]
            if isinstance(old, MappedFileSegment):
                # Spool files probe by path; a vanished file is re-spooled
                # under a fresh (never-recycled) name from the old mapping's
                # still-valid bytes.
                if os.path.exists(name):
                    continue
                fresh: Segment = self._spool_store().create_segment(old.size)
            else:
                try:
                    probe = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    fresh = shared_memory.SharedMemory(create=True, size=old.size)
                else:
                    # Still attachable — just drop the probe mapping.  No
                    # tracker unregister here: the name is *owned* by this
                    # process, so the probe's attach-registration was an
                    # idempotent no-op on the already-tracked name, and
                    # unregistering would strip the ownership registration
                    # the eventual unlink pairs with.
                    probe.close()
                    continue
            fresh.buf[: old.size] = old.buf[: old.size]
            # The OS may hand back a *recycled* name — one an earlier
            # (since unlinked) segment used while this process cached
            # attachments or indexes derived from it.  Purge those stale
            # entries before anything can alias the recycled name to the
            # dead segment's content.  Must run before the ownership
            # registration below (_forget_segments drops owned names).
            _forget_segments([fresh.name])
            if not isinstance(fresh, MappedFileSegment):
                _OWNED_NAMES.add(fresh.name)
            # In-place index assignment: the finalizer backstop holds
            # references to these exact list objects.
            self._segments[position] = fresh
            self._names[position] = fresh.name
            mapping[name] = fresh.name
            # Forget parent-side caches of the dead name.  No tracker
            # unregister: every unlink path (a foreign unlink, a tracker
            # cleanup) already unregistered the name when it removed the
            # file, so the registration is gone along with the segment.
            _forget_segments([name])
            try:
                old.close()
            except BufferError:  # live views — keep the mapping alive
                _ZOMBIES.append(old)
        if mapping:
            self._handles = {
                key: (factory, rewrite_factory_handle(handle, mapping))
                for key, (factory, handle) in self._handles.items()
            }
            self._affinity_handles = {
                key: (columns, rewrite_affinity_handle(handle, mapping))
                for key, (columns, handle) in self._affinity_handles.items()
            }
        return mapping

    # -- epoch retirement ----------------------------------------------------------------

    @property
    def generation_floor(self) -> int:
        """The smallest export generation still live in this registry.

        Every handle below the floor belongs to a retired (or never-made)
        export of this registry; :func:`repro.parallel.evaluate_tasks` stamps
        the floor onto payloads so warm workers can purge retired-epoch cache
        entries (:func:`purge_stale`) without a pool restart.  ``0`` while
        nothing has been exported (no purge).
        """
        with self._lock:
            generations = [handle.generation for _, handle in self._handles.values()]
            generations += [
                handle.generation for _, handle in self._affinity_handles.values()
            ]
            return min(generations, default=0)

    def retire_stale(
        self,
        live_factories: Sequence[object] = (),
        live_columns: Sequence[object] = (),
    ) -> tuple[str, ...]:
        """Unlink segments backing exports absent from the caller's live sets.

        The epoch-adoption primitive: after an incremental update replaces
        some of the environment's memoised factories / affinity columns, the
        old objects' exports are dead weight — their segments hold the
        retired epoch's bytes.  The caller passes the objects it still
        serves; every memoised export whose object is not among them is
        dropped and its segment unlinked (raising :attr:`generation_floor`).
        POSIX semantics keep in-flight attachments valid: workers that
        already mapped a retired segment finish their current dispatch on
        it, and only new attaches fail (healed by the supervisor if ever
        raced).  Returns the unlinked segment names.
        """
        with self._lock:
            return self._retire_stale_locked(live_factories, live_columns)

    def _retire_stale_locked(
        self, live_factories: Sequence[object], live_columns: Sequence[object]
    ) -> tuple[str, ...]:
        if self._closed:
            return ()
        live_factory_ids = {id(factory) for factory in live_factories}
        live_column_ids = {id(columns) for columns in live_columns}
        victim_names: set[str] = set()
        for key in [k for k in self._handles if k not in live_factory_ids]:
            _, handle = self._handles.pop(key)
            victim_names |= handle.segment_names()
        for key in [k for k in self._affinity_handles if k not in live_column_ids]:
            _, handle = self._affinity_handles.pop(key)
            victim_names |= handle.segment_names()
        retired = []
        for name in sorted(victim_names):
            if name not in self._names:
                continue
            # In-place removal: the finalizer backstop holds references to
            # these exact list objects.
            position = self._names.index(name)
            segment = self._segments.pop(position)
            del self._names[position]
            if not isinstance(segment, MappedFileSegment):
                # Retired shm bytes stop counting against the spill budget.
                self._shm_bytes -= segment.size
            _forget_segments([name])
            try:
                segment.unlink()
            except FileNotFoundError:  # already unlinked
                pass
            try:
                segment.close()
            except BufferError:  # live views — keep the mapping alive
                _ZOMBIES.append(segment)
            retired.append(name)
        return tuple(retired)

    # -- export --------------------------------------------------------------------------

    def share_arrays(self, arrays: Sequence[np.ndarray]) -> list[SharedArraySpec]:
        """Pack arrays into one fresh segment; one descriptor per array."""
        with self._lock:
            return self._share_arrays_locked(arrays)

    def _spool_store(self) -> SpoolDirectory:
        """The registry's spool directory, created lazily (caller holds the lock)."""
        if self._spool is None or self._spool.closed:
            self._spool = SpoolDirectory(self._spool_root)
        return self._spool

    def _share_arrays_locked(self, arrays: Sequence[np.ndarray]) -> list[SharedArraySpec]:
        if self._closed:
            raise ConfigurationError("the shared-array registry is closed")
        arrays = [np.ascontiguousarray(array) for array in arrays]
        offsets = []
        total = 0
        for array in arrays:
            total = (total + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
            offsets.append(total)
            total += array.nbytes
        size = max(total, 1)
        storage = self.storage
        if (
            storage == STORAGE_SHM
            and self._shm_budget is not None
            and self._shm_bytes + size > self._shm_budget
        ):
            # Spill guard: this export would blow the /dev/shm budget — back
            # it with a spool file instead and let the page cache absorb it.
            storage = STORAGE_MMAP
            self._spill_count += 1
        if storage == STORAGE_MMAP:
            segment: Segment = self._spool_store().create_segment(size)
        else:
            segment = shared_memory.SharedMemory(create=True, size=size)
            self._shm_bytes += size
        # A fresh shm segment can land on a recycled name (one a
        # since-unlinked segment used while this process cached attachments
        # or indexes for it) — drop any such stale process-local state before
        # the name can alias.  Spool names are never recycled, but the purge
        # is an idempotent no-op there.  Ordering matters: _forget_segments
        # drops owned names, so the shm ownership registration follows it.
        _forget_segments([segment.name])
        if storage == STORAGE_SHM:
            _OWNED_NAMES.add(segment.name)
        self._segments.append(segment)
        self._names.append(segment.name)
        specs = []
        for array, offset in zip(arrays, offsets):
            if array.size:
                view = np.frombuffer(
                    segment.buf, dtype=array.dtype, count=array.size, offset=offset
                ).reshape(array.shape)
                view[...] = array
            specs.append(
                SharedArraySpec(
                    segment=segment.name,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                    offset=offset,
                    storage=storage,
                )
            )
        return specs

    def export(
        self, factory: GrecaIndexFactory | ShmFactoryHandle
    ) -> ShmFactoryHandle:
        """A picklable handle for a factory, its arrays placed in shared memory.

        Memoised per factory object: exporting the same memoised factory
        twice (the normal case — one environment, many dispatches) returns
        the same handle over the same segment.
        """
        if isinstance(factory, ShmFactoryHandle):
            return factory
        with self._lock:
            return self._export_locked(factory)

    def _export_locked(self, factory: GrecaIndexFactory) -> ShmFactoryHandle:
        cached = self._handles.get(id(factory))
        if cached is not None:
            return cached[1]
        members, items, matrix, repr_rank, max_apref = factory.columnar_substrate()
        items_array = None
        if all(type(item) is int for item in items):
            candidate = np.asarray(items, dtype=np.int64)
            if tuple(int(value) for value in candidate) == tuple(items):
                items_array = candidate
        arrays = [matrix, repr_rank] + ([items_array] if items_array is not None else [])
        specs = self.share_arrays(arrays)
        handle = ShmFactoryHandle(
            members=tuple(members),
            matrix=specs[0],
            repr_rank=specs[1],
            max_apref=float(max_apref),
            items_spec=specs[2] if items_array is not None else None,
            items=None if items_array is not None else tuple(items),
            generation=next_generation(),
        )
        # The strong factory reference keeps id(factory) stable for the memo.
        self._handles[id(factory)] = (factory, handle)
        return handle

    def export_affinity(
        self, columns: AffinityColumns | ShmAffinityHandle
    ) -> ShmAffinityHandle:
        """A picklable handle for one affinity-column set, arrays in shared memory.

        Memoised per columns object: the environment holds one full-timeline
        :class:`AffinityColumns` per (group, affinity model), so every sweep
        point of every dispatch references the same segment.
        """
        if isinstance(columns, ShmAffinityHandle):
            return columns
        with self._lock:
            return self._export_affinity_locked(columns)

    def _export_affinity_locked(self, columns: AffinityColumns) -> ShmAffinityHandle:
        cached = self._affinity_handles.get(id(columns))
        if cached is not None:
            return cached[1]
        specs = self.share_arrays([columns.static, columns.periodic, columns.averages])
        handle = ShmAffinityHandle(
            pairs=tuple(columns.pairs),
            static=specs[0],
            periodic=specs[1],
            averages=specs[2],
            generation=next_generation(),
        )
        # The strong columns reference keeps id(columns) stable for the memo.
        self._affinity_handles[id(columns)] = (columns, handle)
        return handle
