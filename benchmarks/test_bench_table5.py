"""Benchmark regenerating Table 5 (dataset statistics)."""

from __future__ import annotations

from conftest import run_once

from repro.data.movielens import MovieLensConfig
from repro.experiments import table5


def test_table5_dataset_statistics(benchmark):
    """Generate a MovieLens-like dataset and report its Table 5 statistics."""
    result = run_once(
        benchmark,
        table5.run,
        config=MovieLensConfig(n_users=1_500, n_items=1_200, n_ratings=120_000, seed=7),
    )
    print()
    print(result.format_table())
    rows = {row["statistic"]: row for row in result.rows()}
    assert rows["# users"]["measured"] == 1_500
    assert rows["# ratings"]["measured"] == 120_000
